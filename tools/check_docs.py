#!/usr/bin/env python
"""Documentation checker: snippets must compile, local links must resolve.

Run from the repository root (the CI ``docs`` job does)::

    python tools/check_docs.py

Two checks over ``README.md`` and every ``docs/*.md``:

* every fenced ```` ```python ```` code block must compile (``compile(...)``
  — syntax only, nothing is executed, so snippets may reference files or
  servers that don't exist here);
* every relative markdown link target (``[text](path)`` where ``path`` is
  not an URL or a bare ``#anchor``) must exist on disk, and an in-repo
  ``#anchor`` into a markdown file must match one of its headings.

Exit code 0 when clean; 1 with one line per finding otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Callable, List

REPO_ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```(\w*)\s*$")
# [text](target) — excluding images handled the same way; ignore URLs later.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _rel(path: Path) -> str:
    """Repo-relative display path; foreign paths (tests) print as-is."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def doc_files() -> List[Path]:
    """README.md plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _heading_anchor(line: str) -> str:
    """GitHub-style anchor for a markdown heading line."""
    text = line.lstrip("#").strip().lower()
    text = re.sub(r"[`*]", "", text)  # formatting only; underscores survive
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text).strip("-")


def check_python_snippets(path: Path) -> List[str]:
    """Compile every ```python fenced block of ``path``; return findings."""
    findings = []
    lines = path.read_text().splitlines()
    block: List[str] = []
    block_start = 0
    language = None
    for lineno, line in enumerate(lines, start=1):
        fence = FENCE_RE.match(line.strip())
        if fence and language is None:
            language = fence.group(1).lower()
            block, block_start = [], lineno + 1
            continue
        if line.strip() == "```" and language is not None:
            if language == "python" and block:
                source = "\n".join(block)
                try:
                    compile(source, f"{path.name}:{block_start}", "exec")
                except SyntaxError as exc:
                    findings.append(
                        f"{_rel(path)}:{block_start}: "
                        f"python snippet does not compile: {exc.msg} "
                        f"(line {block_start + (exc.lineno or 1) - 1})")
            language = None
            continue
        if language is not None:
            block.append(line)
    if language is not None:
        findings.append(f"{_rel(path)}: unclosed code fence")
    return findings


def check_links(path: Path) -> List[str]:
    """Resolve every relative link of ``path``; return findings."""
    findings = []
    text = path.read_text()
    anchors_cache = {}

    def anchors_of(markdown: Path) -> set:
        if markdown not in anchors_cache:
            anchors = set()
            in_fence = False
            for line in markdown.read_text().splitlines():
                if line.strip().startswith("```"):
                    in_fence = not in_fence
                    continue
                # '#' inside a code fence is a comment, not a heading.
                if not in_fence and line.startswith("#"):
                    anchors.add(_heading_anchor(line))
            anchors_cache[markdown] = anchors
        return anchors_cache[markdown]

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        rel = _rel(path)
        base, _, fragment = target.partition("#")
        if not base:  # same-file anchor
            if fragment and fragment not in anchors_of(path):
                findings.append(f"{rel}: broken anchor #{fragment}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            findings.append(f"{rel}: broken link {target!r} "
                            f"({_rel(resolved)} missing)")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                findings.append(
                    f"{rel}: link {target!r} points at missing anchor "
                    f"#{fragment} in {base}")
    return findings


def run_checks(out: Callable[[str], None] = print) -> int:
    """Run both checks over every doc file; return the number of findings."""
    findings: List[str] = []
    for path in doc_files():
        findings.extend(check_python_snippets(path))
        findings.extend(check_links(path))
    for finding in findings:
        out(finding)
    if not findings:
        out(f"docs OK: {len(doc_files())} files checked")
    return len(findings)


if __name__ == "__main__":
    sys.exit(1 if run_checks() else 0)
