#!/usr/bin/env python
"""Documentation checker: snippets compile, links resolve, examples *run*.

Run from the repository root (the CI ``docs`` job does)::

    python tools/check_docs.py            # static checks only
    python tools/check_docs.py --execute  # also run the console examples

Checks over ``README.md`` and every ``docs/*.md``:

* every fenced ```` ```python ```` code block must compile (``compile(...)``
  — syntax only, nothing is executed, so snippets may reference files or
  servers that don't exist here);
* every relative markdown link target (``[text](path)`` where ``path`` is
  not an URL or a bare ``#anchor``) must exist on disk, and an in-repo
  ``#anchor`` into a markdown file must match one of its headings;
* every fenced ```` ```ndjson ```` block must hold one JSON object per
  line, and each object must round-trip losslessly through the event wire
  schema (``event_from_wire`` → ``event_to_wire``) — so documented log/
  stream payloads cannot drift from the code;
* every ``$``-prefixed command in a ```` ```console ```` block must be one
  the checker knows how to run (``python ...`` or ``kill ...``), and with
  ``--execute`` each block **actually runs**, top to bottom, in a throwaway
  sandbox: its own working directory and SQLite file, an importable
  ``ops_demo`` helper module, and port 8123 remapped to a free one.  A
  command ending in ``&`` becomes a managed background process (a ``serve``
  is waited on until ``/v1/health`` answers); ``kill -9 $SERVER_PID`` /
  ``kill $SERVER_PID`` signal the most recent background process.  Any
  non-zero exit fails the check — drift between the runbook and the CLI is
  a CI failure, not a stale doc.

Exit code 0 when clean; 1 with one line per finding otherwise.
"""

from __future__ import annotations

import json
import os
import re
import shlex
import signal
import socket
import subprocess
import sys
import tempfile
import textwrap
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

FENCE_RE = re.compile(r"^```(\w*)\s*$")
# [text](target) — excluding images handled the same way; ignore URLs later.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")

#: The documented ports runbook examples bind; --execute remaps each to its
#: own free port.  8123 is "the server" (or the fleet router), 8124 a second
#: process (a fleet backend) in multi-server examples.
DOC_PORT = "8123"
DOC_PORT_2 = "8124"

#: The helper module runbook commands import refs from (written into the
#: sandbox by the executor, so `ops_demo:SPACE` resolves there).
HELPER_MODULE = "ops_demo"
HELPER_SOURCE = textwrap.dedent("""
    \"\"\"Throwaway search space + objectives for executable doc examples.\"\"\"
    import time

    from repro.automl.search_space import SearchSpace, Uniform

    SPACE = SearchSpace({"x": Uniform(0.0, 1.0)})

    def objective(trial):
        for step in range(3):
            trial.report(trial.params["x"] * (step + 1))
        return trial.params["x"]

    def slow(trial):
        for step in range(60):
            trial.report(float(step))
            time.sleep(0.05)
        return trial.params["x"]
""")


def _rel(path: Path) -> str:
    """Repo-relative display path; foreign paths (tests) print as-is."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def doc_files() -> List[Path]:
    """README.md plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def fenced_blocks(path: Path) -> List[Tuple[str, int, List[str]]]:
    """Every fenced code block of ``path`` as (language, start_line, lines)."""
    blocks = []
    lines = path.read_text().splitlines()
    block: List[str] = []
    block_start = 0
    language: Optional[str] = None
    for lineno, line in enumerate(lines, start=1):
        fence = FENCE_RE.match(line.strip())
        if fence and language is None:
            language = fence.group(1).lower()
            block, block_start = [], lineno + 1
            continue
        if line.strip() == "```" and language is not None:
            blocks.append((language, block_start, block))
            language = None
            continue
        if language is not None:
            block.append(line)
    if language is not None:
        blocks.append(("!unclosed", block_start, block))
    return blocks


def _heading_anchor(line: str) -> str:
    """GitHub-style anchor for a markdown heading line."""
    text = line.lstrip("#").strip().lower()
    text = re.sub(r"[`*]", "", text)  # formatting only; underscores survive
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text).strip("-")


def check_python_snippets(path: Path) -> List[str]:
    """Compile every ```python fenced block of ``path``; return findings."""
    findings = []
    for language, start, block in fenced_blocks(path):
        if language == "!unclosed":
            findings.append(f"{_rel(path)}: unclosed code fence")
        elif language == "python" and block:
            source = "\n".join(block)
            try:
                compile(source, f"{path.name}:{start}", "exec")
            except SyntaxError as exc:
                findings.append(
                    f"{_rel(path)}:{start}: "
                    f"python snippet does not compile: {exc.msg} "
                    f"(line {start + (exc.lineno or 1) - 1})")
    return findings


def check_links(path: Path) -> List[str]:
    """Resolve every relative link of ``path``; return findings."""
    findings = []
    text = path.read_text()
    anchors_cache = {}

    def anchors_of(markdown: Path) -> set:
        if markdown not in anchors_cache:
            anchors = set()
            in_fence = False
            for line in markdown.read_text().splitlines():
                if line.strip().startswith("```"):
                    in_fence = not in_fence
                    continue
                # '#' inside a code fence is a comment, not a heading.
                if not in_fence and line.startswith("#"):
                    anchors.add(_heading_anchor(line))
            anchors_cache[markdown] = anchors
        return anchors_cache[markdown]

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        rel = _rel(path)
        base, _, fragment = target.partition("#")
        if not base:  # same-file anchor
            if fragment and fragment not in anchors_of(path):
                findings.append(f"{rel}: broken anchor #{fragment}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            findings.append(f"{rel}: broken link {target!r} "
                            f"({_rel(resolved)} missing)")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                findings.append(
                    f"{rel}: link {target!r} points at missing anchor "
                    f"#{fragment} in {base}")
    return findings


# --------------------------------------------------------------------- #
# NDJSON fences: documented wire payloads must round-trip through code.
# --------------------------------------------------------------------- #

def check_ndjson_snippets(path: Path) -> List[str]:
    """Validate every ```ndjson fence line against the event wire schema."""
    findings = []
    blocks = [(start, block) for language, start, block in fenced_blocks(path)
              if language == "ndjson"]
    if not blocks:
        return findings
    if str(SRC_ROOT) not in sys.path:
        sys.path.insert(0, str(SRC_ROOT))
    from repro.automl.events import event_from_wire, event_to_wire

    for start, block in blocks:
        for offset, line in enumerate(block):
            if not line.strip():
                continue  # stream heartbeat: a blank keep-alive line
            where = f"{_rel(path)}:{start + offset}"
            try:
                payload = json.loads(line)
            except ValueError as exc:
                findings.append(f"{where}: ndjson line is not JSON: {exc}")
                continue
            try:
                event = event_from_wire(payload)
            except Exception as exc:  # noqa: BLE001 - any schema rejection
                findings.append(
                    f"{where}: ndjson payload rejected by event_from_wire: "
                    f"{exc}")
                continue
            if event_to_wire(event) != payload:
                findings.append(
                    f"{where}: ndjson payload drifted from the wire schema "
                    f"(event_to_wire(event_from_wire(line)) differs — stale "
                    f"keys or values?)")
    return findings


# --------------------------------------------------------------------- #
# Console fences: the runbook's commands, parsed and (optionally) run.
# --------------------------------------------------------------------- #

def console_commands(path: Path) -> List[Tuple[int, str]]:
    """Every ``$``-command of ``path``'s console fences as (line, command).

    A command line starts with ``$ ``; a trailing ``\\`` continues it onto
    the next line (shell style).  Other lines are illustrative output.
    """
    commands = []
    for language, start, block in fenced_blocks(path):
        if language != "console":
            continue
        current: Optional[str] = None
        current_line = 0
        for offset, line in enumerate(block):
            if current is not None:
                part = line.strip()
                if part.endswith("\\"):
                    current += " " + part[:-1].strip()
                else:
                    commands.append((current_line, current + " " + part))
                    current = None
                continue
            stripped = line.strip()
            if stripped.startswith("$ "):
                body = stripped[2:].strip()
                if body.endswith("\\"):
                    current, current_line = body[:-1].strip(), start + offset
                else:
                    commands.append((start + offset, body))
        if current is not None:
            commands.append((current_line, current))
    return commands


def check_console_conventions(path: Path) -> List[str]:
    """Every console command must be one ``--execute`` can run."""
    findings = []
    for lineno, command in console_commands(path):
        head = command.split(None, 1)[0] if command.split() else ""
        if head not in ("python", "kill"):
            findings.append(
                f"{_rel(path)}:{lineno}: console command {head!r} is not "
                f"executable by tools/check_docs.py (use `python ...` or "
                f"`kill [-9] $SERVER_PID`)")
    return findings


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for_health(port: int, proc: subprocess.Popen,
                     deadline: float = 30.0) -> Optional[str]:
    """Block until the served /v1/health answers; return an error or None."""
    url = f"http://127.0.0.1:{port}/v1/health"
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            out = (proc.stdout.read().decode("utf-8", "replace")
                   if proc.stdout else "")
            return (f"server exited with code {proc.returncode} before "
                    f"serving: {out.strip()[-500:]}")
        try:
            with urllib.request.urlopen(url, timeout=2.0):
                return None
        except urllib.error.HTTPError:
            return None  # an HTTP answer (e.g. 401 on a --token server)
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.1)
    return f"server never answered {url}"


class ConsoleSession:
    """A sandbox that runs one document's console commands in order.

    Each document gets a fresh working directory (so relative paths like
    ``anttune.db`` are isolated), the ``ops_demo`` helper module on
    ``PYTHONPATH``, and the documented port remapped to a free one.
    Background commands (trailing ``&``) are tracked; ``kill`` commands
    signal the most recent one.  Every foreground command must exit 0.
    """

    def __init__(self, workdir: str) -> None:
        self.workdir = workdir
        self.port = _free_port()
        self.ports = {DOC_PORT: self.port, DOC_PORT_2: _free_port()}
        (Path(workdir) / f"{HELPER_MODULE}.py").write_text(HELPER_SOURCE)
        self.env = dict(os.environ)
        self.env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC_ROOT), workdir]
            + [p for p in self.env.get("PYTHONPATH", "").split(os.pathsep)
               if p])
        self.background: List[subprocess.Popen] = []

    def _substitute(self, command: str) -> str:
        for documented, actual in self.ports.items():
            command = command.replace(documented, str(actual))
        return command

    def _bound_port(self, original: str) -> int:
        """The remapped port a server command binds (its ``--port``)."""
        match = re.search(r"--port\s+(\d+)", original)
        if match:
            return self.ports.get(match.group(1), int(match.group(1)))
        return self.port  # both serve and route default to 8123

    def run(self, command: str) -> Optional[str]:
        """Execute one command; return an error string or None."""
        original = command
        command = self._substitute(command)
        background = command.rstrip().endswith("&")
        if background:
            command = command.rstrip().rstrip("&").strip()
        argv = shlex.split(command)
        if not argv:
            return "empty command"
        if argv[0] == "kill":
            return self._kill(argv)
        if argv[0] != "python":
            return f"cannot execute {argv[0]!r}"
        argv[0] = sys.executable
        if background:
            proc = subprocess.Popen(argv, cwd=self.workdir, env=self.env,
                                    stdout=subprocess.PIPE,
                                    stderr=subprocess.STDOUT)
            self.background.append(proc)
            if any(f" {verb}" in command for verb in ("serve", "route")):
                return _wait_for_health(self._bound_port(original), proc)
            return None
        try:
            done = subprocess.run(argv, cwd=self.workdir, env=self.env,
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT, timeout=180.0)
        except subprocess.TimeoutExpired:
            return "command timed out after 180s"
        if done.returncode != 0:
            tail = done.stdout.decode("utf-8", "replace").strip()[-500:]
            return f"exit code {done.returncode}: {tail}"
        return None

    def _kill(self, argv: List[str]) -> Optional[str]:
        hard = "-9" in argv
        alive = [p for p in self.background if p.poll() is None]
        if not alive:
            return "kill: no background process is running"
        victim = alive[-1]
        victim.send_signal(signal.SIGKILL if hard else signal.SIGTERM)
        try:
            victim.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            victim.kill()
            victim.wait(timeout=10.0)
        return None

    def close(self) -> None:
        for proc in self.background:
            if proc.poll() is None:
                proc.kill()
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass


def execute_console_blocks(path: Path) -> List[str]:
    """Run every console command of ``path`` in a throwaway sandbox."""
    commands = console_commands(path)
    if not commands:
        return []
    findings = []
    with tempfile.TemporaryDirectory(prefix="check_docs_") as workdir:
        session = ConsoleSession(workdir)
        try:
            for lineno, command in commands:
                error = session.run(command)
                if error is not None:
                    findings.append(
                        f"{_rel(path)}:{lineno}: console command failed "
                        f"({command.split()[0]} ...): {error}")
                    break  # later commands depend on this one's state
        finally:
            session.close()
    return findings


def run_checks(out: Callable[[str], None] = print,
               execute: bool = False) -> int:
    """Run every check over every doc file; return the number of findings."""
    findings: List[str] = []
    for path in doc_files():
        findings.extend(check_python_snippets(path))
        findings.extend(check_links(path))
        findings.extend(check_ndjson_snippets(path))
        findings.extend(check_console_conventions(path))
    if execute and not findings:
        # Static problems first: no point running a runbook that already
        # fails its conventions.
        for path in doc_files():
            findings.extend(execute_console_blocks(path))
    for finding in findings:
        out(finding)
    if not findings:
        mode = "checked and executed" if execute else "checked"
        out(f"docs OK: {len(doc_files())} files {mode}")
    return len(findings)


if __name__ == "__main__":
    sys.exit(1 if run_checks(execute="--execute" in sys.argv[1:]) else 0)
