"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so editable installs work in fully offline
environments that lack the ``wheel`` package (legacy ``setup.py develop``
path via ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
