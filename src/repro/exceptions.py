"""Exception hierarchy for the ALT reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SearchSpaceError",
    "TrialError",
    "BudgetExceededError",
    "ScenarioNotFoundError",
    "ModelNotDeployedError",
    "FeatureNotFoundError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class SearchSpaceError(ReproError):
    """A hyper-parameter or architecture search space was malformed."""


class TrialError(ReproError):
    """A hyper-parameter optimisation trial failed."""


class BudgetExceededError(ReproError):
    """No architecture satisfying the FLOPs budget could be derived."""


class ScenarioNotFoundError(ReproError):
    """A scenario id was requested that is not registered."""


class ModelNotDeployedError(ReproError):
    """Online prediction was requested for a scenario without a deployed model."""


class FeatureNotFoundError(ReproError):
    """A feature name was requested that the feature factory does not hold."""
