"""Training loops shared by the strategies, meta-learning and NAS modules."""

from repro.training.trainer import TrainingConfig, TrainingHistory, evaluate_auc, train_supervised

__all__ = ["TrainingConfig", "TrainingHistory", "train_supervised", "evaluate_auc"]
