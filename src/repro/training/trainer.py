"""Supervised training loop for ALT models.

All models in the paper are optimised with Adam on the cross-entropy loss
(Sec. V-A3); when a teacher model is provided the distillation objective of
Eq. 5 is used instead, with the teacher's predictions as soft labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.metrics.classification import auc_score
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import binary_cross_entropy_with_logits, distillation_loss
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.utils.rng import new_rng

__all__ = ["TrainingConfig", "TrainingHistory", "train_supervised", "evaluate_auc"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one supervised training run.

    Attributes:
        epochs: number of passes over the data (paper: 5).
        learning_rate: Adam learning rate (paper: 0.001).
        batch_size: mini-batch size (paper: 512).
        max_batches_per_epoch: optional cap for fast benchmark runs.
        grad_clip: max global gradient norm (0 disables clipping).
        distill_delta: weight of the soft-label term in Eq. 5.
    """

    epochs: int = 5
    learning_rate: float = 0.001
    batch_size: int = 512
    max_batches_per_epoch: Optional[int] = None
    grad_clip: float = 5.0
    distill_delta: float = 1.0


@dataclass
class TrainingHistory:
    """Per-epoch mean training loss (and optional validation AUC)."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_auc: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def train_supervised(model: Module, dataset: ArrayDataset, config: TrainingConfig,
                     rng: Optional[np.random.Generator] = None,
                     teacher: Optional[Module] = None,
                     validation: Optional[ArrayDataset] = None) -> TrainingHistory:
    """Train ``model`` on ``dataset``; distil from ``teacher`` when provided.

    The model must expose ``forward(batch) -> Tensor`` of per-sample logits and
    (for the teacher) ``predict_logits(batch) -> np.ndarray``.
    """
    rng = new_rng(rng if rng is not None else 0)
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
    history = TrainingHistory()
    model.train()
    for _ in range(config.epochs):
        losses: List[float] = []
        for batch_index, batch in enumerate(loader):
            if config.max_batches_per_epoch is not None and batch_index >= config.max_batches_per_epoch:
                break
            optimizer.zero_grad()
            logits = model(batch)
            if teacher is not None:
                teacher_logits = teacher.predict_logits(batch)
                loss = distillation_loss(logits, batch.labels, teacher_logits,
                                         delta=config.distill_delta)
            else:
                loss = binary_cross_entropy_with_logits(logits, batch.labels)
            loss.backward()
            if config.grad_clip > 0:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        history.epoch_losses.append(float(np.mean(losses)) if losses else float("nan"))
        if validation is not None and len(validation) > 0:
            history.validation_auc.append(evaluate_auc(model, validation))
    model.eval()
    return history


def evaluate_auc(model: Module, dataset: ArrayDataset, batch_size: int = 1024) -> float:
    """AUC of ``model`` on ``dataset`` (inference mode, batched)."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    scores: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    for batch in loader:
        scores.append(model.predict_proba(batch))
        labels.append(batch.labels)
    return auc_score(np.concatenate(labels), np.concatenate(scores))
