"""ASCII table formatting for benchmark output (Tables III-VIII style)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_comparison_table", "format_average_row"]


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None,
                 float_digits: int = 3, title: Optional[str] = None) -> str:
    """Render a list of dict rows as a fixed-width ASCII table."""
    if not rows:
        return title or "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison_table(comparison, float_digits: int = 3, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.strategies.results.ComparisonResult` like Table III/IV."""
    strategies = comparison.strategies()
    rows: List[Dict[str, object]] = []
    for scenario_id in comparison.scenario_ids():
        row: Dict[str, object] = {"scenario": scenario_id}
        for name in strategies:
            row[name] = comparison.results[name].per_scenario_auc.get(scenario_id, float("nan"))
        rows.append(row)
    average: Dict[str, object] = {"scenario": "AVG"}
    for name in strategies:
        average[name] = comparison.results[name].average_auc
    rows.append(average)
    return format_table(rows, columns=["scenario", *strategies], float_digits=float_digits,
                        title=title)


def format_average_row(comparison, float_digits: int = 3) -> str:
    """One-line summary of the average AUC per strategy."""
    parts = [f"{name}={result.average_auc:.{float_digits}f}"
             for name, result in comparison.results.items()]
    return f"[{comparison.dataset} / {comparison.encoder_type}] " + "  ".join(parts)
