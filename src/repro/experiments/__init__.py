"""Experiment harness helpers shared by the benchmarks."""

from repro.experiments.tables import format_average_row, format_comparison_table, format_table

__all__ = ["format_table", "format_comparison_table", "format_average_row"]
