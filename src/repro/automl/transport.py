"""Shared-memory telemetry transport between process workers and the parent.

The process backend used to move control traffic over two expensive channels:
reports went up through a ``multiprocessing.Queue`` (a pipe write + feeder
thread per message) and kill signals down through a ``multiprocessing.Manager``
dict — one proxy RPC round trip *per report* just to check "am I killed?".
:class:`TelemetryTransport` replaces both with plain shared memory:

* **Report ring.**  A fixed-capacity ring of ``(ticket, step, value)`` records
  in a shared ctypes array, guarded by one shared lock.  Workers
  :meth:`push`; the parent :meth:`drain`\\ s everything available on each
  scheduler tick.  When a burst outruns the parent, the *oldest* records are
  dropped (telemetry is advisory — the final trial record is authoritative)
  and counted in :attr:`dropped`.
* **Doorbell.**  A shared event set by every push, so a parent that wants to
  block between ticks can :meth:`wait` instead of polling.
* **Kill flags.**  A fixed table of per-submission reason codes.  The parent
  assigns each submission a *kill slot* (:meth:`allocate_kill_slot`) shipped
  to the worker with the task; the worker's per-report kill check is then a
  single shared-array read — no lock, no RPC.  Slots are recycled via
  :meth:`release_kill_slot` once the submission's record merged back.

The transport is built from ``multiprocessing`` shared ctypes primitives, so
it crosses the process boundary the same way the executor's worker-counter
``Value`` always has: passed once through the pool initializer, never through
a proxy.  Parent-only state (the slot free-list and its lock) is excluded
from pickling and rebuilt empty on the worker side.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Dict, List, Optional, Tuple

from repro.automl.trial import KILLED_STATES

__all__ = ["TelemetryTransport", "REASON_CODES", "CODE_REASONS"]

# Kill reasons wire-encoded as small positive ints; 0 means "alive".
REASON_CODES: Dict[str, int] = {
    reason: code for code, reason in enumerate(sorted(KILLED_STATES), start=1)
}
CODE_REASONS: Dict[int, str] = {code: reason
                                for reason, code in REASON_CODES.items()}

_FIELDS = 3  # (ticket, step, value) per ring record


class TelemetryTransport:
    """Lock-guarded shared-memory ring + doorbell + kill-flag table.

    Args:
        ctx: the ``multiprocessing`` context the worker pool uses (shared
            primitives must come from the same context).
        capacity: ring size in records; a burst larger than this between two
            parent drains sheds its oldest records.
        kill_slots: size of the kill-flag table — an upper bound on
            concurrently in-flight submissions (far above any real pool).
    """

    def __init__(self, ctx=None, capacity: int = 4096,
                 kill_slots: int = 1024) -> None:
        if capacity < 1 or kill_slots < 1:
            raise ValueError("capacity and kill_slots must be >= 1")
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        self.capacity = int(capacity)
        self.kill_slots = int(kill_slots)
        # Raw (lock-free) shared arrays; every multi-field access goes through
        # self._lock.  Tickets/steps ride as float64 — exact up to 2**53,
        # far beyond any ticket counter's lifetime.
        self._ring = ctx.RawArray("d", _FIELDS * self.capacity)
        self._head = ctx.RawValue("q", 0)   # next write index (monotonic)
        self._tail = ctx.RawValue("q", 0)   # next read index (monotonic)
        self._dropped = ctx.RawValue("q", 0)
        self._lock = ctx.Lock()
        self._doorbell = ctx.Event()
        self._kills = ctx.RawArray("q", self.kill_slots)
        # Parent-only slot bookkeeping (never pickled to workers).
        self._slot_lock: Optional[threading.Lock] = threading.Lock()
        self._free_slots: Optional[List[int]] = list(
            range(self.kill_slots - 1, -1, -1))

    # ------------------------------------------------------------------ #
    # Pickling (pool initializer hands the transport to each worker)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        state["_slot_lock"] = None
        state["_free_slots"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # Report ring
    # ------------------------------------------------------------------ #
    def push(self, ticket: int, step: int, value: float) -> None:
        """Worker-side: append one ``(ticket, step, value)`` report record."""
        with self._lock:
            head = self._head.value
            if head - self._tail.value >= self.capacity:
                # Full: shed the oldest record so fresh telemetry wins.
                self._tail.value += 1
                self._dropped.value += 1
            base = (head % self.capacity) * _FIELDS
            self._ring[base] = float(ticket)
            self._ring[base + 1] = float(step)
            self._ring[base + 2] = float(value)
            self._head.value = head + 1
        self._doorbell.set()

    def drain(self) -> List[Tuple[int, int, float]]:
        """Parent-side: pop every available report record, in push order.

        Returns:
            ``(ticket, step, value)`` tuples; empty when nothing is pending.
        """
        self._doorbell.clear()
        with self._lock:
            tail, head = self._tail.value, self._head.value
            records = []
            for index in range(tail, head):
                base = (index % self.capacity) * _FIELDS
                records.append((int(self._ring[base]),
                                int(self._ring[base + 1]),
                                self._ring[base + 2]))
            self._tail.value = head
        return records

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the doorbell rings (a worker pushed a report).

        Returns:
            True when a report is (probably) pending, False on timeout.
        """
        return self._doorbell.wait(timeout)

    @property
    def pending(self) -> int:
        """Records currently buffered in the ring (racy snapshot)."""
        return max(0, self._head.value - self._tail.value)

    @property
    def dropped(self) -> int:
        """Total records shed to overflow since the transport was created."""
        return self._dropped.value

    # ------------------------------------------------------------------ #
    # Kill flags
    # ------------------------------------------------------------------ #
    def allocate_kill_slot(self) -> int:
        """Parent-side: reserve a cleared kill slot for one submission.

        Returns:
            The slot index to ship with the task, or -1 when the table is
            exhausted (the submission then has no remote kill fast-path —
            local cooperative kills still apply).
        """
        assert self._slot_lock is not None, "allocate on the parent side only"
        with self._slot_lock:
            if not self._free_slots:
                return -1
            slot = self._free_slots.pop()
        self._kills[slot] = 0
        return slot

    def release_kill_slot(self, slot: int) -> None:
        """Parent-side: clear and recycle a slot once its submission merged."""
        if slot < 0:
            return
        assert self._slot_lock is not None, "release on the parent side only"
        self._kills[slot] = 0
        with self._slot_lock:
            self._free_slots.append(slot)

    def set_kill(self, slot: int, reason: str) -> None:
        """Parent-side: signal the worker running ``slot``'s submission.

        Args:
            slot: the submission's kill slot (no-op for -1).
            reason: a kill reason from :mod:`repro.automl.trial`.
        """
        if slot < 0:
            return
        self._kills[slot] = REASON_CODES[reason]

    def kill_reason(self, slot: int) -> Optional[str]:
        """Worker-side: the kill reason for ``slot``, or None while alive.

        A single aligned shared-array read — this is the per-report check
        that used to be a Manager-dict RPC.
        """
        if slot < 0:
            return None
        return CODE_REASONS.get(self._kills[slot])
