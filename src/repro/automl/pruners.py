"""Early-stopping (pruning) policies for futureless trials (Sec. IV-C).

A pruner judges a *running* trial against the study's history and decides
whether finishing it is worth the remaining compute.  It is consulted from
two directions:

* **Cooperatively** — objectives call ``trial.should_prune()`` between
  training steps and raise :class:`~repro.automl.trial.PrunedTrial`
  themselves (the only option for the inline ``sync`` backend).
* **From the scheduler** — on every refill tick the scheduler feeds newly
  streamed intermediate values (live telemetry, including process-backend
  trials) to the pruner and kills a futureless trial mid-run, so even an
  objective that never checks ``should_prune()`` is stopped early.

Pruners must therefore be safe to call from the scheduling thread while the
trial's worker appends reports; the study serialises calls under its lock.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.automl.trial import Trial, TrialState

__all__ = ["Pruner", "NoPruner", "MedianPruner"]


class Pruner:
    """Decide whether a running trial should be stopped early."""

    def should_prune(self, trial: Trial, history: List[Trial], maximize: bool) -> bool:
        """Judge a running trial against the study history.

        Args:
            trial: the in-flight trial (its ``intermediate_values`` carry
                everything reported so far).
            history: all trials of the study, finished and running.
            maximize: the study's optimisation direction.

        Returns:
            True when the trial should be stopped as futureless.
        """
        raise NotImplementedError


class NoPruner(Pruner):
    """Never prune (the default; telemetry is still streamed for status)."""

    def should_prune(self, trial: Trial, history: List[Trial], maximize: bool) -> bool:
        return False


class MedianPruner(Pruner):
    """Prune a trial whose latest intermediate value is worse than the median
    of completed trials' values at the same step.

    Attributes:
        warmup_steps: number of intermediate reports to wait before pruning.
        min_trials: number of completed trials required before pruning starts.
    """

    def __init__(self, warmup_steps: int = 1, min_trials: int = 3) -> None:
        self.warmup_steps = warmup_steps
        self.min_trials = min_trials

    def should_prune(self, trial: Trial, history: List[Trial], maximize: bool) -> bool:
        """Compare the trial's latest report to the per-step completed median.

        Args:
            trial: the in-flight trial.
            history: all trials of the study; only COMPLETED ones that
                reached the same step form the reference.
            maximize: the study's optimisation direction.

        Returns:
            True once the trial has passed warm-up, enough completed trials
            reached its step, and its latest value falls on the wrong side of
            their median.
        """
        step = len(trial.intermediate_values)
        if step <= self.warmup_steps:
            return False
        completed = [t for t in history
                     if t.state == TrialState.COMPLETED and len(t.intermediate_values) >= step]
        if len(completed) < self.min_trials:
            return False
        reference = np.median([t.intermediate_values[step - 1] for t in completed])
        latest = trial.intermediate_values[-1]
        return latest < reference if maximize else latest > reference
