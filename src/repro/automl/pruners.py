"""Early-stopping (pruning) policies for futureless trials (Sec. IV-C)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.automl.trial import Trial, TrialState

__all__ = ["Pruner", "NoPruner", "MedianPruner"]


class Pruner:
    """Decide whether a running trial should be stopped early."""

    def should_prune(self, trial: Trial, history: List[Trial], maximize: bool) -> bool:
        raise NotImplementedError


class NoPruner(Pruner):
    """Never prune."""

    def should_prune(self, trial: Trial, history: List[Trial], maximize: bool) -> bool:
        return False


class MedianPruner(Pruner):
    """Prune a trial whose latest intermediate value is worse than the median
    of completed trials' values at the same step.

    Attributes:
        warmup_steps: number of intermediate reports to wait before pruning.
        min_trials: number of completed trials required before pruning starts.
    """

    def __init__(self, warmup_steps: int = 1, min_trials: int = 3) -> None:
        self.warmup_steps = warmup_steps
        self.min_trials = min_trials

    def should_prune(self, trial: Trial, history: List[Trial], maximize: bool) -> bool:
        step = len(trial.intermediate_values)
        if step <= self.warmup_steps:
            return False
        completed = [t for t in history
                     if t.state == TrialState.COMPLETED and len(t.intermediate_values) >= step]
        if len(completed) < self.min_trials:
            return False
        reference = np.median([t.intermediate_values[step - 1] for t in completed])
        latest = trial.intermediate_values[-1]
        return latest < reference if maximize else latest > reference
