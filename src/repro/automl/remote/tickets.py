"""Pull-based trial execution: a lease board for remote worker agents.

The in-tree executors *push* work into a local pool; this module inverts
the arrow.  :class:`TicketTrialExecutor` implements the standard
:class:`~repro.automl.executors.TrialExecutor` interface, but ``submit()``
only parks the trial on a board as an open **ticket**.  Worker agents
(:mod:`repro.automl.remote.worker`) on other machines claim tickets over
HTTP (``POST /v1/tickets/claim``), run the objective locally, stream
intermediate values back (``/report`` — mirrored into the local trial
exactly like the process backend's shared-memory ring, so pruners and
``TrialReport`` events work unchanged), and ship the terminal record with
``/complete``.

Leases make worker loss survivable.  A claim grants a lease of
``lease_seconds``; every report or heartbeat renews it.  When a lease
expires — the worker was SIGKILLed, wedged, or partitioned — the board
finalises the trial as ``CANCELLED`` with the ``preempted`` kill reason,
which both schedulers already special-case: the configuration is requeued
**uncharged** (no budget slot, no retry), exactly like fair-share
preemption.  A zombie worker that finishes the stale attempt anyway gets
its ``/complete`` rejected (the ticket is gone), so a trial is never
charged twice.

Kill signals flow the other way on the same channel: ``kill_trial``
records the reason on the ticket, and the next report/heartbeat response
carries it back to the worker, whose local ``trial.report(...)`` then
raises — the cooperative-kill contract every other backend honours.

Objectives cross the wire as ``module:attr`` references only (the wire
rule everywhere in the remote layer): the tune server registers each
job's objective ref on the board via :meth:`register_objective` before
the first submit.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.automl import metrics as _metrics
from repro.automl.executors import TrialExecutor, TrialExecutorClosed
from repro.exceptions import TrialError
from repro.automl.trial import (
    KILL_PREEMPTED,
    KILLED_STATES,
    Trial,
    TrialState,
)

__all__ = ["TicketTrialExecutor", "DEFAULT_LEASE_SECONDS"]

#: Default lease duration.  Renewed on every report/heartbeat, so it only
#: needs to outlive a worker's longest silence, not a whole trial.
DEFAULT_LEASE_SECONDS = 15.0

_TICKETS_CLAIMED = _metrics.REGISTRY.counter(
    "anttune_tickets_claimed_total",
    "Trial tickets leased to pull workers.")
_TICKETS_COMPLETED = _metrics.REGISTRY.counter(
    "anttune_tickets_completed_total",
    "Trial tickets whose worker shipped a terminal record in time.")
_LEASES_LOST = _metrics.REGISTRY.counter(
    "anttune_ticket_leases_lost_total",
    "Leases that expired (dead/wedged worker); the config requeues uncharged.")
_STALE_RESULTS = _metrics.REGISTRY.counter(
    "anttune_ticket_stale_results_total",
    "Late /complete or /report calls rejected after the lease was lost.")

Objective = Callable[[Trial], float]


@dataclass
class _Ticket:
    """One parked submission: everything a worker needs, plus lease state."""

    ticket_id: int
    trial: Trial
    objective_ref: str
    trial_time_limit: Optional[float]
    future: "Future[Trial]"
    lease_seconds: float
    token: Optional[str] = None          # set when leased
    worker: Optional[str] = None
    deadline: float = 0.0                # monotonic; meaningful when leased
    kill_reason: Optional[str] = None    # parked kill, delivered on report
    reported_steps: int = 0

    @property
    def leased(self) -> bool:
        return self.token is not None


class TicketTrialExecutor(TrialExecutor):
    """A :class:`TrialExecutor` whose workers pull trials over HTTP.

    Construction takes no network arguments: the board is plain state, and
    the HTTP surface (``/v1/tickets/...`` in ``remote/http_server.py``)
    calls :meth:`claim` / :meth:`report` / :meth:`heartbeat` /
    :meth:`complete` on it.  Lease expiry is swept from
    :meth:`drain_telemetry`, which both schedulers already call every
    scheduling tick (50 ms) — no extra thread.
    """

    backend_name = "ticket"

    def __init__(self, n_workers: int,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        #: Bounds how many tickets the schedulers keep in flight at once —
        #: the pool width the fair-share governor apportions, not a local
        #: thread count (no trial ever executes in this process).
        self.n_workers = n_workers
        self.lease_seconds = float(lease_seconds)
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self._tickets: Dict[int, _Ticket] = {}
        self._open: List[int] = []                 # claim order (FIFO)
        self._by_trial: Dict[int, int] = {}        # id(trial) -> ticket_id
        # ``module:attr`` refs pinned per objective; the objective is kept
        # as a strong reference so id() keys cannot be recycled while the
        # ref is live.
        self._objective_refs: Dict[int, "tuple[str, Objective]"] = {}
        self._closed = False
        self._mirrored_since_drain = 0
        self._leases_lost = 0

    # ------------------------------------------------------------------ #
    # Objective references (the server registers these per job)
    # ------------------------------------------------------------------ #
    def register_objective(self, objective: Objective,
                           ref: Optional[str] = None) -> str:
        """Pin the ``module:attr`` reference workers import for ``objective``.

        Raises:
            ValueError: the objective has no importable reference (lambda,
                closure, ``__main__`` callable) and none was supplied —
                pull workers run in other processes and can only import.
        """
        if ref is None:
            module = getattr(objective, "__module__", "") or ""
            qualname = getattr(objective, "__qualname__", "") or ""
            ref = f"{module}:{qualname}"
        if (":" not in ref or "<" in ref or not ref.split(":", 1)[0]
                or ref.startswith("__main__:")):
            raise ValueError(
                f"objective {ref!r} is not importable by pull workers; "
                f"submit it as a module:attr reference "
                f"(the remote SDK does this for you)")
        with self._lock:
            self._objective_refs[id(objective)] = (ref, objective)
        return ref

    def _ref_for(self, objective: Objective) -> str:
        with self._lock:
            entry = self._objective_refs.get(id(objective))
        if entry is not None:
            return entry[0]
        return self.register_objective(objective)

    # ------------------------------------------------------------------ #
    # TrialExecutor interface (the scheduler side)
    # ------------------------------------------------------------------ #
    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Park the trial as an open ticket; the future resolves when a
        worker completes it (or its lease is lost and the board finalises
        it as preempted).

        Raises:
            TrialExecutorClosed: the executor was permanently closed.
            ValueError: the objective has no importable reference.
        """
        ref = self._ref_for(objective)
        future: "Future[Trial]" = Future()
        ticket = _Ticket(
            ticket_id=next(self._counter), trial=trial, objective_ref=ref,
            trial_time_limit=trial_time_limit, future=future,
            lease_seconds=self.lease_seconds)
        with self._lock:
            if self._closed:
                raise TrialExecutorClosed("executor has been closed")
            self._tickets[ticket.ticket_id] = ticket
            self._open.append(ticket.ticket_id)
            self._by_trial[id(trial)] = ticket.ticket_id
        self._observe_trial(trial, future)
        return future

    def kill_trial(self, trial: Trial, reason: str) -> None:
        """Kill locally and signal the leasing worker at its next report.

        An **open** (unclaimed) ticket has no worker to deliver to: it is
        finalised on the spot so the scheduler settles it within a tick
        instead of waiting out a lease that never starts.
        """
        trial.kill(reason)
        resolve: List[_Ticket] = []
        with self._lock:
            ticket_id = self._by_trial.get(id(trial))
            ticket = self._tickets.get(ticket_id) if ticket_id is not None else None
            if ticket is None:
                return
            ticket.kill_reason = reason
            if not ticket.leased:
                self._finalise_locked(ticket, reason, resolve)
        self._resolve(resolve)

    def drain_telemetry(self) -> int:
        """Sweep expired leases; report mirroring already happened inline.

        Reports land in the local trials synchronously inside
        :meth:`report` (the HTTP handler's thread), so unlike the process
        backend there is no ring to empty — this tick hook is where dead
        workers are noticed instead.
        """
        now = time.monotonic()
        resolve: List[_Ticket] = []
        with self._lock:
            for ticket in list(self._tickets.values()):
                if ticket.leased and now >= ticket.deadline:
                    reason = ticket.kill_reason or KILL_PREEMPTED
                    self._leases_lost += 1
                    _LEASES_LOST.inc()
                    self._finalise_locked(ticket, reason, resolve)
            mirrored, self._mirrored_since_drain = self._mirrored_since_drain, 0
        self._resolve(resolve)
        return mirrored

    def _finalise_locked(self, ticket: _Ticket, reason: str,
                         resolve: List[_Ticket]) -> None:
        """Finalise a ticket without a worker record (kill or lost lease).

        Caller holds ``self._lock``.  The trial gets the reason's terminal
        state unless something else (deadline expiry, a completed record)
        already finished it — the first writer wins, like every backend.
        The future is resolved by the caller *after* releasing the board
        lock (``_resolve``): done-callbacks run inline on ``set_result``.
        """
        self._pop_locked(ticket)
        trial = ticket.trial
        # Inline kill: Trial.kill() would re-acquire the (non-reentrant)
        # state lock we must hold to make check-and-finalise atomic.
        with trial._state_lock:
            if not trial.is_finished:
                if trial._kill_reason is None:
                    trial._kill_reason = reason
                trial.state = KILLED_STATES.get(
                    trial._kill_reason, TrialState.CANCELLED)
        resolve.append(ticket)

    @staticmethod
    def _resolve(tickets: List[_Ticket]) -> None:
        for ticket in tickets:
            if not ticket.future.done():
                # An open ticket's future may also have been resolved by
                # expire_trial's cancel(); a leased one is running and only
                # resolves here or in complete().
                ticket.future.set_result(ticket.trial)

    def _pop_locked(self, ticket: _Ticket) -> None:
        self._tickets.pop(ticket.ticket_id, None)
        self._by_trial.pop(id(ticket.trial), None)
        try:
            self._open.remove(ticket.ticket_id)
        except ValueError:
            pass

    def shutdown(self) -> None:
        """Requeue open tickets back to the schedulers; leased ones finish."""
        resolve: List[_Ticket] = []
        with self._lock:
            for ticket_id in list(self._open):
                ticket = self._tickets.get(ticket_id)
                if ticket is not None:
                    self._finalise_locked(ticket, KILL_PREEMPTED, resolve)
        self._resolve(resolve)

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self.shutdown()

    # ------------------------------------------------------------------ #
    # The wire side (called by the /v1/tickets HTTP handlers)
    # ------------------------------------------------------------------ #
    def claim(self, worker: Optional[str] = None) -> Optional[dict]:
        """Lease the oldest open ticket to ``worker``; None when idle."""
        now = time.monotonic()
        with self._lock:
            while self._open:
                ticket = self._tickets.get(self._open.pop(0))
                if ticket is None:
                    continue
                if not ticket.future.set_running_or_notify_cancel():
                    # A canceller (expire_trial on a starved batch) beat the
                    # claim: the terminal state is already recorded.
                    self._pop_locked(ticket)
                    continue
                ticket.token = uuid.uuid4().hex
                ticket.worker = worker
                ticket.deadline = now + ticket.lease_seconds
                if worker:
                    ticket.trial.worker = worker
                _TICKETS_CLAIMED.inc()
                return {
                    "ticket": ticket.ticket_id,
                    "token": ticket.token,
                    "trial_id": ticket.trial.trial_id,
                    "params": dict(ticket.trial.params),
                    "objective": ticket.objective_ref,
                    "trial_time_limit": ticket.trial_time_limit,
                    "lease_seconds": ticket.lease_seconds,
                    "kill": ticket.kill_reason,
                }
        return None

    def _leased_ticket_locked(self, ticket_id: int, token: str) -> _Ticket:
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            _STALE_RESULTS.inc()
            # "unknown ..." maps to HTTP 404 in the remote error taxonomy.
            raise TrialError(
                f"unknown ticket {ticket_id} (completed, or its lease was "
                f"lost and the trial requeued)")
        if not ticket.leased or ticket.token != token:
            _STALE_RESULTS.inc()
            # Anything else maps to 409: a conflict the worker must drop.
            raise TrialError(
                f"stale lease token for ticket {ticket_id}: the result of "
                f"this attempt is discarded")
        return ticket

    def report(self, ticket_id: int, token: str, step: int,
               value: float) -> Optional[str]:
        """Record one intermediate value; renew the lease; return any kill.

        Mirrors the value into the local trial with the process backend's
        NaN-padding discipline, so out-of-order or shed reports keep their
        true step index and the next scheduler tick publishes them as
        ``TrialReport`` events.
        """
        with self._lock:
            ticket = self._leased_ticket_locked(ticket_id, token)
            ticket.deadline = time.monotonic() + ticket.lease_seconds
            trial = ticket.trial
            with trial._state_lock:
                if (not trial.is_finished
                        and step >= len(trial.intermediate_values)):
                    values = trial.intermediate_values
                    while len(values) < step:
                        values.append(float("nan"))
                    values.append(float(value))
                    self._mirrored_since_drain += 1
                    ticket.reported_steps += 1
            return ticket.kill_reason or trial.kill_reason

    def heartbeat(self, ticket_id: int, token: str) -> Optional[str]:
        """Renew the lease between reports; return any pending kill."""
        with self._lock:
            ticket = self._leased_ticket_locked(ticket_id, token)
            ticket.deadline = time.monotonic() + ticket.lease_seconds
            return ticket.kill_reason or ticket.trial.kill_reason

    def complete(self, ticket_id: int, token: str, record: dict) -> None:
        """Merge the worker's terminal record and resolve the future.

        A canceller that already recorded a terminal state wins (the
        process backend's merge rule); the record is otherwise
        authoritative — including its ``intermediate_values``, which
        backfill any NaN pads from shed reports.
        """
        try:
            state = TrialState(record["state"])
        except ValueError:
            raise TrialError(
                f"record for ticket {ticket_id} carries an invalid state "
                f"{record['state']!r}") from None
        with self._lock:
            ticket = self._leased_ticket_locked(ticket_id, token)
            self._pop_locked(ticket)
            trial = ticket.trial
        with trial._state_lock:
            if not trial.is_finished:
                trial.state = state
                trial.value = record["value"]
                trial.error = record["error"]
                trial.duration_seconds = float(record["duration_seconds"])
                trial.intermediate_values = [
                    float(v) for v in record["intermediate_values"]]
        _TICKETS_COMPLETED.inc()
        if not ticket.future.done():
            ticket.future.set_result(trial)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def board_status(self) -> dict:
        """Counts for ``server_status()`` and tests."""
        with self._lock:
            leased = sum(1 for t in self._tickets.values() if t.leased)
            return {
                "open": len(self._tickets) - leased,
                "leased": leased,
                "leases_lost": self._leases_lost,
                "lease_seconds": self.lease_seconds,
            }
