"""Pull-based worker agent: claim trial tickets over HTTP and run them.

:class:`TuneWorker` is the far side of the ticket board
(:mod:`repro.automl.remote.tickets`).  It polls one or more tune servers
started with ``backend="ticket"`` (round-robin, so one busy backend never
starves the others), and for each claimed ticket:

1. imports the objective from its ``module:attr`` reference (only state
   crosses the wire, never code — the rule everywhere in the remote
   layer);
2. rebuilds a local :class:`~repro.automl.trial.Trial` whose
   ``report(...)`` hook POSTs each intermediate value back to
   ``/v1/tickets/{id}/report`` — the server mirrors it into the
   scheduler-side trial, renews the lease, and answers with any pending
   kill, which the hook applies so the objective's next ``report`` raises
   (cooperative kills, exactly like every in-tree backend);
3. keeps the lease alive with a background heartbeat (a slow objective
   that reports rarely must not look dead);
4. runs the objective through the standard
   :func:`~repro.automl.executors.execute_trial` lifecycle and ships the
   terminal record with ``/complete``.

Failure discipline: a 404/409 on any ticket call means the lease was lost
(the server already requeued the config, uncharged) — the worker drops
the attempt and moves on; it never retries a stale result.  An
unreachable backend is skipped this round and polled again later, so a
worker survives backend restarts.

Run it from the CLI::

    python -m repro.automl.cli work http://host-a:8123 http://host-b:8123
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

from repro.automl.executors import execute_trial
from repro.automl.remote.api import load_ref
from repro.automl.remote.client import AntTuneClient, _ServerUnreachable
from repro.automl.trial import KILL_CANCELLED, Trial, TrialState
from repro.exceptions import TrialError

__all__ = ["TuneWorker"]

#: Fraction of the lease spent between heartbeats: three beats per lease,
#: so two may be lost to scheduling hiccups before the lease expires.
_HEARTBEAT_FRACTION = 1.0 / 3.0


class TuneWorker:
    """A worker agent pulling trial tickets from ``backend="ticket"`` servers.

    Args:
        servers: base URLs of the tune servers to poll (round-robin).
        name: worker label stamped into claimed trials (and visible in
            ``TrialStarted`` events / trial records).
        token: bearer token shared with the servers.
        poll_interval: sleep between claim sweeps that found no work.
        timeout: per-request HTTP timeout.
    """

    def __init__(self, servers: Sequence[str], name: str = "pull-worker",
                 token: Optional[str] = None, poll_interval: float = 0.2,
                 timeout: float = 10.0) -> None:
        if not servers:
            raise ValueError("at least one server URL is required")
        self.name = name
        self.poll_interval = float(poll_interval)
        self._clients: List[AntTuneClient] = [
            AntTuneClient(url, token=token, timeout=timeout)
            for url in servers]
        self._next_backend = 0
        self._stop = threading.Event()
        #: Counters exposed for harnesses/tests: completed records shipped,
        #: leases observed lost mid-attempt, claim sweeps that found no work.
        self.completed = 0
        self.lost = 0
        self.idle_sweeps = 0

    def stop(self) -> None:
        """Ask :meth:`run` to return after the in-flight ticket (if any)."""
        self._stop.set()

    # ------------------------------------------------------------------ #
    # The claim loop
    # ------------------------------------------------------------------ #
    def run(self, run_seconds: Optional[float] = None,
            max_tickets: Optional[int] = None) -> int:
        """Poll for tickets until stopped; returns tickets completed.

        Args:
            run_seconds: wall-clock bound (None = until :meth:`stop`).
            max_tickets: stop after completing this many tickets.
        """
        deadline = (None if run_seconds is None
                    else time.monotonic() + run_seconds)
        while not self._stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            if max_tickets is not None and self.completed >= max_tickets:
                break
            ticket = self._claim_once()
            if ticket is None:
                self.idle_sweeps += 1
                # Idle: every backend was empty or unreachable.  Bounded
                # nap so stop()/run_seconds stay responsive.
                self._stop.wait(self.poll_interval)
                continue
            client, lease = ticket
            self._run_ticket(client, lease)
        return self.completed

    def _claim_once(self) -> "Optional[tuple[AntTuneClient, dict]]":
        """One round-robin sweep over the backends; the first ticket wins."""
        for offset in range(len(self._clients)):
            client = self._clients[
                (self._next_backend + offset) % len(self._clients)]
            try:
                answer = client._request("POST", "/v1/tickets/claim",
                                         {"worker": self.name})
            except (_ServerUnreachable, TrialError, ValueError):
                # Down, restarting, or not a ticket server (409): skip this
                # backend for now; the next sweep tries it again.
                continue
            lease = answer.get("ticket") if isinstance(answer, dict) else None
            if lease:
                # Resume the *next* sweep one past the backend that fed us,
                # so a busy board doesn't monopolise the worker.
                self._next_backend = (
                    (self._next_backend + offset + 1) % len(self._clients))
                return client, lease
        self._next_backend = (self._next_backend + 1) % len(self._clients)
        return None

    # ------------------------------------------------------------------ #
    # One leased ticket, start to finish
    # ------------------------------------------------------------------ #
    def _run_ticket(self, client: AntTuneClient, lease: dict) -> None:
        ticket_id, token = lease["ticket"], lease["token"]
        path = f"/v1/tickets/{ticket_id}"
        lost = threading.Event()

        def post(action: str, payload: dict) -> Optional[str]:
            """POST one ticket call; returns the pending kill reason.

            Raises TrialError for a lost lease (404/409) after marking it,
            so callers on the objective's thread abort the attempt.
            """
            payload = dict(payload, token=token)
            try:
                answer = client._request("POST", f"{path}/{action}", payload)
            except _ServerUnreachable:
                # Transient: the lease may still be alive server-side; let
                # the next report/heartbeat try again rather than aborting
                # a healthy trial over one blip.
                return None
            except (TrialError, ValueError):
                lost.set()
                raise TrialError(
                    f"lease for ticket {ticket_id} was lost") from None
            return answer.get("kill") if isinstance(answer, dict) else None

        try:
            objective = load_ref(lease["objective"])
        except Exception as exc:  # noqa: BLE001 - unimportable ref
            self._complete_failed(post, lease, f"worker {self.name} could "
                                  f"not import objective: {exc}")
            return

        trial = Trial(trial_id=int(lease["trial_id"]),
                      params=dict(lease["params"]),
                      worker=self.name, state=TrialState.RUNNING)
        trial._report_hook = self._report_hook(post, trial, lost)

        lease_seconds = float(lease.get("lease_seconds") or 15.0)
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(post, trial, lost, lease_seconds * _HEARTBEAT_FRACTION),
            name=f"{self.name}-heartbeat", daemon=True)
        beat.start()
        try:
            if lease.get("kill"):
                trial.kill(lease["kill"])
            execute_trial(objective, trial, lease.get("trial_time_limit"))
        finally:
            lost.set()  # stops the heartbeat loop
            beat.join(timeout=5.0)
        try:
            post("complete", {"record": trial.as_record()})
            self.completed += 1
        except TrialError:
            self.lost += 1  # stale result: the server already requeued it

    def _report_hook(self, post: Callable[[str, dict], Optional[str]],
                     trial: Trial, lost: threading.Event):
        def hook(_: Trial, value: float, step: Optional[int]) -> None:
            if lost.is_set():
                trial.kill(KILL_CANCELLED)
                trial._raise_if_killed()
            index = (step if step is not None
                     else len(trial.intermediate_values) - 1)
            kill = post("report", {"step": int(index), "value": float(value)})
            if kill:
                trial.kill(kill)
                trial._raise_if_killed()
        return hook

    @staticmethod
    def _heartbeat_loop(post: Callable[[str, dict], Optional[str]],
                        trial: Trial, lost: threading.Event,
                        interval: float) -> None:
        while not lost.wait(max(0.05, interval)):
            try:
                kill = post("heartbeat", {})
            except TrialError:
                return  # lease lost; `lost` is set, the hook aborts the trial
            if kill:
                # Deliver the kill; the objective observes it at its next
                # report() (cooperative, like every backend).
                trial.kill(kill)

    @staticmethod
    def _complete_failed(post: Callable[[str, dict], Optional[str]],
                         lease: dict, error: str) -> None:
        """Ship a FAILED record for a ticket the worker cannot even start."""
        record = {
            "trial_id": int(lease["trial_id"]),
            "params": dict(lease["params"]),
            "state": TrialState.FAILED.value,
            "value": None,
            "duration_seconds": 0.0,
            "worker": None,
            "error": error,
            "intermediate_values": [],
        }
        try:
            post("complete", {"record": record})
        except TrialError:
            pass
