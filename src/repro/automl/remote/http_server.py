"""Stdlib-only HTTP/JSON front end for the tune service.

:class:`RemoteTuneServer` exposes an in-process
:class:`~repro.automl.server.AntTuneServer` over the versioned wire schema
of :mod:`repro.automl.remote.api`:

====================================  =========================================
``GET  /v1/health``                   liveness + protocol version
``GET  /v1/status``                   server-wide snapshot (jobs, backpressure)
``GET  /v1/metrics``                  Prometheus text exposition of every
                                      instrumented hot path
``POST /v1/jobs``                     submit (space/objective refs, priority,
                                      preempt, seed) -> ``{"job_id": n}``
``GET  /v1/jobs``                     status snapshots of every job
``GET  /v1/jobs/{id}``                one job's status (incl. telemetry drops)
``GET  /v1/jobs/{id}/wait``           block (bounded) for the result
``POST /v1/jobs/{id}/cancel``         cancel a queued or running job
``GET  /v1/jobs/{id}/events``         NDJSON event stream, resumable via
                                      ``?last_seq=N``
``POST /v1/resume``                   resume a stored study as a new job
====================================  =========================================

The endpoint logic lives in one transport-agnostic core (:class:`_TuneApp`)
served by either of two edges:

* ``edge="async"`` (the default): :class:`~repro.automl.remote.edge.AsyncHTTPEdge`,
  one ``selectors`` event loop multiplexing every socket.  Event streams are
  per-connection write buffers fed by event-bus callbacks (frames batched
  per loop flush, each frame the event's shared pre-serialised wire bytes),
  and ``/wait`` parks as a terminal-event continuation instead of pinning a
  thread per waiter.  This is the edge that holds thousands of concurrent
  streaming clients.
* ``edge="threaded"``: the original ``ThreadingHTTPServer``
  thread-per-connection transport, kept for one release as a fallback
  (``serve --edge threaded``).  Same routes, same taxonomy, same wire bytes.

The default is overridable process-wide with ``ANTTUNE_EDGE=threaded|async``.

The event stream is the server-side half of ``subscribe()``: each line is one
:func:`~repro.automl.events.event_to_wire` payload carrying the job's
monotonic ``seq``.  A client that lost its connection reconnects with
``last_seq=<highest seq it saw>``; the gap backfills from the **durable
event log** first (so replay works even when the in-memory bus ring rotated
or the whole process restarted — see :mod:`repro.automl.eventlog`), then the
live subscription takes over, de-duplicated by seq.  Live delivery keeps the
bus's drop-oldest semantics, with the per-connection queue bound settable
via ``?max_queue=`` (drops are counted in
``anttune_event_queue_dropped_total`` on either edge).  Blank heartbeat
lines are emitted while the stream idles so dead connections are noticed
and their resources released.

Constructed with ``recover=True`` (the CLI's ``serve --recover``), the
wrapper runs :meth:`AntTuneServer.recover
<repro.automl.server.AntTuneServer.recover>` **before** binding the port, so
interrupted jobs are auto-resumed or finalised before the first client
request can observe the restarted server — reconnecting SDKs never race the
reconciliation.

Observability: every request is timed into the
``anttune_http_request_seconds{method,endpoint}`` histogram and counted in
``anttune_http_requests_total{method,endpoint,status}`` (endpoint labels are
the route *templates* — ``/v1/jobs/{id}`` — never raw paths, keeping label
cardinality bounded).  Each request's ``X-Request-Id`` header (generated when
absent) is echoed back on the response and, on submit/resume, becomes the
job's trace id — the correlation id stamped on every event the job publishes,
so one id follows a request from HTTP ingress through the whole trial
lifecycle and across crash-recovered resumes.  The async edge additionally
exposes ``anttune_http_open_connections{kind}``,
``anttune_edge_flush_batch_size`` and ``anttune_edge_loop_lag_seconds``.

Failure handling: schema violations answer 4xx JSON error bodies
(:class:`~repro.automl.remote.api.ProtocolError` carries the status), unknown
jobs/studies answer 404, conflicts (duplicate study names) 409, and anything
unexpected 500 — a bad request never takes the server down.  A ``token``
enables bearer auth (401 without it); override :meth:`RemoteTuneServer.check_auth`
for anything fancier.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Callable, Dict, Optional, Tuple

from repro.automl import metrics as _metrics
from repro.automl.events import JobStateChanged, event_wire_bytes
from repro.automl.remote.api import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_resume,
    parse_submit,
)
from repro.automl.remote.edge import (
    AsyncHTTPEdge,
    Reply,
    _clean_request_id,
    _float_param,
    _int_param,
    _job_id_segment,
    _json_bytes,
    json_reply,
)
from repro.automl.remote.edge import _HTTP_SECONDS, _HTTP_TOTAL  # noqa: F401
from repro.automl.server import AntTuneServer
from repro.exceptions import TrialError
from repro.utils.rng import new_rng

__all__ = ["RemoteTuneServer"]

# How long a single /wait request may block (threaded edge) or stay parked
# (async edge); clients poll.
MAX_WAIT_SECONDS = 60.0
# Idle heartbeat period on event streams (blank NDJSON line): detects dead
# connections and keeps read timeouts from firing on quiet jobs.
HEARTBEAT_SECONDS = 5.0
# Grace for a connected client that stopped *reading*: on the threaded edge
# a socket send timeout, on the async edge the no-progress stall sweep.
STREAM_SEND_TIMEOUT = 30.0
# The Prometheus text exposition content type served by GET /v1/metrics.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _wait_payload(tune: AntTuneServer, job_id: int,
                  timeout: float) -> Dict[str, object]:
    """The ``/wait`` response body after blocking up to ``timeout`` seconds.

    Raises TrialError (propagated as 404) only for unknown job ids; a
    finished-but-failed job is a *successful* wait whose payload carries the
    error, and a still-running one answers ``{"done": false}``.
    """
    try:
        best = tune.wait(job_id, timeout=timeout)
    except TrialError as exc:
        status = tune.status(job_id)  # raises 404 for unknown ids
        if not status["finished"]:
            return {"done": False, "state": status["state"]}
        if status["state"] == "completed":
            # The terminal event publishes *before* the job's done-flag
            # flips, so a zero/short wait can lose that race while status
            # already reads finished; a short bounded re-wait bridges it.
            try:
                best = tune.wait(job_id, timeout=5.0)
            except TrialError as exc2:
                return {"done": True, "state": status["state"],
                        "error": status["error"] or str(exc2), "best": None}
            return {"done": True, "state": "completed", "error": None,
                    "best": best.as_record()}
        return {"done": True, "state": status["state"],
                "error": status["error"] or str(exc), "best": None}
    return {"done": True, "state": "completed", "error": None,
            "best": best.as_record()}


class _WaitParker:
    """A parked ``/wait``: the continuation the async edge completes.

    ``register`` subscribes the fire callback to the job's terminal event on
    the bus — an already-terminal job fires synchronously during
    registration (bus replay), so the park never misses a finish that raced
    the initial "not done yet" check.
    """

    def __init__(self, tune: AntTuneServer, job_id: int,
                 timeout: float) -> None:
        self._tune = tune
        self.job_id = job_id
        self.timeout_seconds = timeout
        self._sub = None

    def register(self, fire: Callable[[], None]) -> None:
        self._sub = self._tune.on_terminal(self.job_id, fire)

    def cancel(self) -> None:
        sub, self._sub = self._sub, None
        if sub is not None:
            sub.close()

    def terminal_payload(self) -> Dict[str, object]:
        # The terminal event publishes *before* the job's done-flag is set;
        # a short bounded wait bridges that ordering without busy-waiting.
        return _wait_payload(self._tune, self.job_id, 10.0)

    def timeout_payload(self) -> Dict[str, object]:
        return _wait_payload(self._tune, self.job_id, 0.0)


class _TuneApp:
    """The tune service's endpoint core, shared by both serving edges.

    Transport-agnostic: route classification, request handling, wait
    semantics and stream setup live here; the async edge drives it through
    the protocol described in :mod:`repro.automl.remote.edge`, the threaded
    handler through the same methods plus the ``*_threaded`` blocking
    variants.
    """

    def __init__(self, remote: "RemoteTuneServer") -> None:
        self.remote = remote

    # -- edge hooks ------------------------------------------------------ #
    def log(self, line: str) -> None:
        self.remote.log(line)

    def check_auth(self, token: Optional[str]) -> bool:
        return self.remote.check_auth(token)

    @property
    def heartbeat_seconds(self) -> float:
        return HEARTBEAT_SECONDS  # read dynamically: tests retune it

    @property
    def stream_send_timeout(self) -> float:
        return STREAM_SEND_TIMEOUT

    # -- routing --------------------------------------------------------- #
    def classify(self, method: str, path: str):
        """``(kind, route_template, args)`` for a request path, or None.

        ``kind`` picks the edge treatment: ``control`` requests answer from
        a worker and return; ``wait`` may park; ``events`` becomes a stream.
        The template doubles as the ``endpoint`` metric label, so per-route
        series never explode in cardinality with job ids.
        """
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            return None
        parts = parts[1:]
        if method == "GET":
            if parts == ["health"]:
                return ("control", "/v1/health", None)
            if parts == ["status"]:
                return ("control", "/v1/status", None)
            if parts == ["metrics"]:
                return ("control", "/v1/metrics", None)
            if parts == ["jobs"]:
                return ("control", "/v1/jobs", None)
            if len(parts) == 2 and parts[0] == "jobs":
                return ("control", "/v1/jobs/{id}", parts[1])
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "wait":
                return ("wait", "/v1/jobs/{id}/wait", parts[1])
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                return ("events", "/v1/jobs/{id}/events", parts[1])
        elif method == "POST":
            if parts == ["jobs"]:
                return ("control", "/v1/jobs", None)
            if parts == ["resume"]:
                return ("control", "/v1/resume", None)
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                return ("control", "/v1/jobs/{id}/cancel", parts[1])
            if parts == ["tickets", "claim"]:
                return ("control", "/v1/tickets/claim", None)
            if (len(parts) == 3 and parts[0] == "tickets"
                    and parts[2] in ("report", "heartbeat", "complete")):
                return ("control", f"/v1/tickets/{{id}}/{parts[2]}",
                        (parts[1], parts[2]))
        return None

    # -- control --------------------------------------------------------- #
    def handle_control(self, method: str, template: str, args: object,
                       params: Dict[str, str],
                       read_body: Callable[[], object],
                       request_id: Optional[str]) -> Reply:
        tune = self.remote.tune_server
        if template == "/v1/health":
            return json_reply(200, {"ok": True, "protocol": PROTOCOL_VERSION})
        if template == "/v1/status":
            payload = tune.server_status()
            payload["protocol"] = PROTOCOL_VERSION
            return json_reply(200, payload)
        if template == "/v1/metrics":
            return Reply(200, _metrics.REGISTRY.render().encode("utf-8"),
                         METRICS_CONTENT_TYPE)
        if template == "/v1/jobs" and method == "GET":
            return json_reply(200, {"jobs": tune.jobs()})
        if template == "/v1/jobs":  # POST: submit
            kwargs = parse_submit(read_body())
            seed = kwargs.pop("seed", None)
            if seed is not None:
                kwargs["rng"] = new_rng(seed)
            # The request's correlation id becomes the job's trace id: every
            # event the job publishes carries it, end to end.
            job_id = tune.submit(trace_id=request_id, **kwargs)
            return json_reply(200, {"job_id": job_id, "trace_id": request_id,
                                    "protocol": PROTOCOL_VERSION})
        if template == "/v1/resume":
            kwargs = parse_resume(read_body())
            job_id = tune.resume(trace_id=request_id, **kwargs)
            return json_reply(200, {"job_id": job_id, "trace_id": request_id,
                                    "protocol": PROTOCOL_VERSION})
        if template == "/v1/jobs/{id}":
            return json_reply(200, tune.status(_job_id_segment(args)))
        if template == "/v1/jobs/{id}/cancel":
            job_id = _job_id_segment(args)
            return json_reply(200, {"job_id": job_id,
                                    "cancelled": tune.cancel(job_id)})
        if template == "/v1/tickets/claim":
            return self._ticket_claim(read_body())
        if template.startswith("/v1/tickets/"):
            segment, action = args
            return self._ticket(segment, action, read_body())
        raise ProtocolError(f"no such endpoint: {method} {template}",
                            status=404)  # pragma: no cover - classify gates

    # -- ticket surface (pull workers; backend="ticket" only) ------------ #
    def _ticket_claim(self, body: object) -> Reply:
        """Lease the oldest open trial ticket to the calling worker.

        Answers ``{"ticket": null}`` when the board is idle — an idle
        board is a poll outcome, not an error, so workers can spin on a
        single status code.
        """
        if not isinstance(body, dict):
            raise ProtocolError("claim body must be a JSON object")
        worker = body.get("worker")
        if worker is not None and not isinstance(worker, str):
            raise ProtocolError("'worker' must be a string")
        board = self.remote.tune_server.ticket_board()
        return json_reply(200, {"ticket": board.claim(worker=worker),
                                "protocol": PROTOCOL_VERSION})

    def _ticket(self, segment: str, action: str, body: object) -> Reply:
        """``report``/``heartbeat``/``complete`` against a leased ticket.

        Every answer carries ``kill`` (a kill reason or null) so the
        worker observes cancellation/pruning/preemption at its next call —
        the same cooperative-kill contract the shared-memory flag table
        gives process workers.  Stale-lease calls get the 404/409 the
        board raises: the worker drops the attempt; the config already
        requeued server-side.
        """
        if not segment.isdigit():
            raise ProtocolError(
                f"ticket id must be an integer, got {segment!r}", status=404)
        ticket_id = int(segment)
        if not isinstance(body, dict):
            raise ProtocolError("ticket body must be a JSON object")
        token = body.get("token")
        if not isinstance(token, str) or not token:
            raise ProtocolError("'token' (the lease token) is required")
        board = self.remote.tune_server.ticket_board()
        if action == "report":
            step, value = body.get("step"), body.get("value")
            if not isinstance(step, int) or isinstance(step, bool) or step < 0:
                raise ProtocolError("'step' must be a non-negative integer")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError("'value' must be a number")
            kill = board.report(ticket_id, token, step, float(value))
        elif action == "heartbeat":
            kill = board.heartbeat(ticket_id, token)
        else:  # complete
            record = body.get("record")
            if not isinstance(record, dict):
                raise ProtocolError("'record' (the trial record) is required")
            required = ("state", "value", "error", "duration_seconds",
                        "intermediate_values")
            missing = [key for key in required if key not in record]
            if missing:
                raise ProtocolError(
                    f"trial record is missing keys: {', '.join(missing)}")
            board.complete(ticket_id, token, record)
            kill = None
        return json_reply(200, {"ok": True, "kill": kill})

    # -- wait ------------------------------------------------------------ #
    def _wait_args(self, args: object,
                   params: Dict[str, str]) -> Tuple[int, float]:
        job_id = _job_id_segment(args)
        timeout = min(_float_param(params, "timeout", 10.0), MAX_WAIT_SECONDS)
        return job_id, max(0.0, timeout)

    def wait_blocking(self, args: object, params: Dict[str, str],
                      request_id: Optional[str]) -> Dict[str, object]:
        """Threaded-edge ``/wait``: block the handler thread (bounded)."""
        job_id, timeout = self._wait_args(args, params)
        return _wait_payload(self.remote.tune_server, job_id, timeout)

    def wait_begin(self, args: object, params: Dict[str, str],
                   request_id: Optional[str]):
        """Async-edge ``/wait``: answer now, or park a continuation.

        A job that is already done (or a zero timeout) answers immediately;
        otherwise no thread blocks — the edge holds the connection and the
        job's terminal bus event (or a loop timer) completes it.
        """
        job_id, timeout = self._wait_args(args, params)
        payload = _wait_payload(self.remote.tune_server, job_id, 0.0)
        if payload["done"] or timeout <= 0.0:
            return ("reply", payload)
        return ("park", _WaitParker(self.remote.tune_server, job_id, timeout))

    # -- event streams --------------------------------------------------- #
    def stream_begin(self, args: object, params: Dict[str, str],
                     request_id: Optional[str], sink) -> None:
        """Async-edge ``/events``: wire one job's feed into a stream sink.

        ``last_seq`` skips everything the client already saw.  The gap
        backfills from the durable event log first, then live bus frames
        take over — the subscription attaches *before* the disk read, both
        sides overlap rather than gap, and the sink de-duplicates by seq.
        Live frames are the event's shared wire bytes
        (:func:`~repro.automl.events.event_wire_bytes`): serialized once,
        reused by every subscriber and the event log.  ``max_queue`` bounds
        this connection's live frame queue (drop-oldest; drops counted in
        ``anttune_event_queue_dropped_total``).
        """
        job_id = _job_id_segment(args)
        last_seq = _int_param(params, "last_seq", -1)
        max_queue = _int_param(params, "max_queue", 1024)
        if max_queue < 1:
            raise ProtocolError("max_queue must be >= 1")
        tune = self.remote.tune_server
        sink.live_bound = max_queue
        sink.drop_hook = lambda count: tune.note_stream_drops(job_id, count)

        def push(event) -> None:
            sink.live(event_wire_bytes(event), event.seq,
                      isinstance(event, JobStateChanged) and event.terminal)

        backfill, subscription = tune.open_event_stream(
            job_id, last_seq=last_seq, max_queue=max_queue, callback=push)
        if subscription is not None:
            sink.on_close(subscription.close)
        if not sink.start():
            return
        sent = last_seq  # highest seq emitted; the de-dup watermark
        for event in backfill:
            if event.seq <= sent:
                continue
            if not sink.emit(event_wire_bytes(event)):
                return  # client gone or stalled out its grace
            sent = event.seq
            if isinstance(event, JobStateChanged) and event.terminal:
                sink.end()  # the log already holds the stream's end
                return
        if subscription is None:
            # Log-only job (finished before a restart): the backfill was the
            # whole story — and it ended terminal above, or the log was
            # compacted down to a tail the client already has.
            sink.end()
            return
        sink.backfill_done(sent)

    def stream_threaded(self, handler: "_Handler", args: object,
                        params: Dict[str, str]) -> None:
        """Threaded-edge ``/events``: stream on the handler's own thread."""
        job_id = _job_id_segment(args)
        last_seq = _int_param(params, "last_seq", -1)
        max_queue = _int_param(params, "max_queue", 1024)
        if max_queue < 1:
            raise ProtocolError("max_queue must be >= 1")
        backfill, subscription = self.remote.tune_server.open_event_stream(
            job_id, last_seq=last_seq, max_queue=max_queue)
        try:
            # A client that stops *reading* must not pin this thread: once
            # the TCP window fills, writes block — bound them so the wedged
            # connection is torn down and the subscription released.
            handler.connection.settimeout(self.stream_send_timeout)
            handler._last_status = 200
            handler.send_response(200)
            handler.send_header("Content-Type", "application/x-ndjson")
            handler.send_header("Cache-Control", "no-store")
            if handler._request_id:
                handler.send_header("X-Request-Id", handler._request_id)
            # Close-delimited stream: its length is unknowable up front.
            handler.send_header("Connection", "close")
            handler.end_headers()
            sent = last_seq  # highest seq written; the de-dup watermark
            for event in backfill:
                if event.seq <= sent:
                    continue
                handler.wfile.write(event_wire_bytes(event))
                handler.wfile.flush()
                sent = event.seq
                if isinstance(event, JobStateChanged) and event.terminal:
                    return  # the log already holds the stream's end
            if subscription is None:
                return  # log-only job: the backfill was the whole story
            while True:
                try:
                    event = subscription.get(timeout=self.heartbeat_seconds)
                except TimeoutError:
                    # Idle heartbeat: keeps client read timeouts quiet and
                    # surfaces a dead connection as a write error here.
                    handler.wfile.write(b"\n")
                    handler.wfile.flush()
                    continue
                if event is None:
                    return  # terminal event already delivered
                if event.seq > sent:
                    handler.wfile.write(event_wire_bytes(event))
                    handler.wfile.flush()
                    sent = event.seq
                if isinstance(event, JobStateChanged) and event.terminal:
                    return
        except OSError:
            # Disconnected or stalled client (reset, broken pipe, send
            # timeout): drop the stream; it can resume with last_seq.
            return
        finally:
            if subscription is not None:
                subscription.close()
            handler.close_connection = True


class _Handler(BaseHTTPRequestHandler):
    """The threaded edge's transport shim around ``self.remote.app``.

    Pure plumbing — parsing, auth, metrics, error taxonomy — with every
    endpoint decision delegated to the app core, so both edges serve
    byte-identical responses.  ``self.remote`` is injected by
    :class:`RemoteTuneServer`.
    """

    remote: "RemoteTuneServer"
    protocol_version = "HTTP/1.1"
    # Per-request observability state, reset by _dispatch: the status code
    # the reply carried and the request's correlation id.
    _last_status: int = 0
    _request_id: Optional[str] = None

    # The default handler logs every request to stderr; route through the
    # remote server's hook so tests/operators control verbosity.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        self.remote.log(f"{self.address_string()} - {format % args}")

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _reply(self, status: int, payload: object,
               close: bool = False) -> None:
        self._reply_bytes(status, _json_bytes(payload), "application/json",
                          close=close)

    def _reply_bytes(self, status: int, body: bytes, content_type: str,
                     close: bool = False) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        # Errors may be answered before the request body was consumed (bad
        # auth, unknown route): closing the connection keeps a keep-alive
        # client's stream from desyncing on the unread bytes.
        self.close_connection = True
        self._reply(status, {"error": message, "protocol": PROTOCOL_VERSION},
                    close=True)

    def _bearer_token(self) -> Optional[str]:
        header = self.headers.get("Authorization", "")
        scheme, _, credentials = header.partition(" ")
        if scheme.lower() == "bearer" and credentials:
            return credentials.strip()
        return None

    def _read_body(self) -> object:
        length = self.headers.get("Content-Length")
        try:
            size = int(length) if length is not None else 0
        except ValueError:
            raise ProtocolError("invalid Content-Length header") from None
        if size <= 0:
            raise ProtocolError("request requires a JSON body")
        if size > 1 << 20:
            raise ProtocolError("request body too large", status=413)
        raw = self.rfile.read(size)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") \
                from None

    def _query(self) -> Tuple[str, Dict[str, str]]:
        split = urllib.parse.urlsplit(self.path)
        params = dict(urllib.parse.parse_qsl(split.query,
                                             keep_blank_values=True))
        return split.path.rstrip("/") or "/", params

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, method: str) -> None:
        start = perf_counter()
        self._last_status = 0
        self._request_id = (_clean_request_id(self.headers.get("X-Request-Id"))
                            or _metrics.new_trace_id())
        app = self.remote.app
        endpoint = "unmatched"  # route *template*, never the raw path: label
        # cardinality stays bounded no matter what clients request.
        try:
            path, params = self._query()
            if not app.check_auth(self._bearer_token()):
                self._error(401, "missing or invalid bearer token")
                return
            classified = app.classify(method, path)
            if classified is None:
                self._error(404, f"no such endpoint: {method} {path}")
                return
            kind, endpoint, args = classified
            if kind == "control":
                result = app.handle_control(method, endpoint, args, params,
                                            self._read_body, self._request_id)
                if result.close:
                    self.close_connection = True
                self._reply_bytes(result.status, result.body,
                                  result.content_type, close=result.close)
            elif kind == "wait":
                self._reply(200, app.wait_blocking(args, params,
                                                   self._request_id))
            else:  # events
                app.stream_threaded(self, args, params)
        except ProtocolError as exc:
            self._safe_error(exc.status, str(exc))
        except TrialError as exc:
            message = str(exc)
            status = 404 if message.startswith("unknown") else 409
            self._safe_error(status, message)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # noqa: BLE001 - one bad request must never
            # take the server (or even its connection thread) down.
            self._safe_error(500, f"{type(exc).__name__}: {exc}")
        finally:
            _HTTP_TOTAL.labels(method=method, endpoint=endpoint,
                               status=str(self._last_status or 0)).inc()
            _HTTP_SECONDS.labels(method=method, endpoint=endpoint).observe(
                perf_counter() - start)

    def _safe_error(self, status: int, message: str) -> None:
        try:
            self._error(status, message)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class RemoteTuneServer:
    """Serve an :class:`AntTuneServer` over HTTP/JSON on a loopback (or any) port.

    Args:
        tune_server: the in-process server to expose; constructed from
            ``server_kwargs`` when omitted (and then owned — shut down with
            the HTTP layer).
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (see :attr:`address`).
        token: when set, every request must carry
            ``Authorization: Bearer <token>`` (else 401).  Override
            :meth:`check_auth` for custom schemes.
        log: optional callable receiving one line per handled request.
        recover: run :meth:`AntTuneServer.recover
            <repro.automl.server.AntTuneServer.recover>` before binding the
            port — interrupted jobs are auto-resumed or finalised before any
            client can connect; the summary lands in :attr:`recovery`.
            Requires file-backed storage.
        edge: ``"async"`` (event-loop edge, the default) or ``"threaded"``
            (thread-per-connection fallback).  Defaults from the
            ``ANTTUNE_EDGE`` environment variable when unset.
        edge_workers: async edge only — bounded worker pool for control
            handlers and stream backfills.
        flush_interval: async edge only — minimum seconds between two
            batched flushes of one stream (latency vs batch-size knob).
        write_buffer_limit: async edge only — per-connection cap (bytes) on
            buffered unsent output before backpressure engages.
        **server_kwargs: forwarded to :class:`AntTuneServer` when
            ``tune_server`` is omitted (``num_workers=``, ``storage=``, ...).

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with RemoteTuneServer(num_workers=2) as remote:
            client = AntTuneClient(remote.url)
            ...
    """

    def __init__(self, tune_server: Optional[AntTuneServer] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 token: Optional[str] = None,
                 log: Optional[object] = None,
                 recover: bool = False,
                 edge: Optional[str] = None,
                 edge_workers: int = 8,
                 flush_interval: float = 0.005,
                 write_buffer_limit: int = 256 * 1024,
                 **server_kwargs: object) -> None:
        if edge is None:
            edge = os.environ.get("ANTTUNE_EDGE") or "async"
        if edge not in ("async", "threaded"):
            raise ValueError(f"edge must be 'async' or 'threaded', "
                             f"got {edge!r}")
        self.edge = edge
        self._owns_tune_server = tune_server is None
        self.tune_server = (tune_server if tune_server is not None
                            else AntTuneServer(**server_kwargs))  # type: ignore[arg-type]
        self.token = token
        self._log = log
        #: recover()'s summary when constructed with ``recover=True``.
        self.recovery: Optional[Dict[str, object]] = None
        if recover:
            # Reconcile *before* the socket exists: a reconnecting client is
            # held in the kernel backlog (or connection-refused and retried
            # by the SDK) rather than observing half-recovered state.
            try:
                self.recovery = self.tune_server.recover()
            except Exception:
                if self._owns_tune_server:
                    self.tune_server.shutdown()
                raise
        self.app = self._make_app()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._edge: Optional[AsyncHTTPEdge] = None
        try:
            if edge == "threaded":
                handler = type("BoundHandler", (_Handler,), {"remote": self})
                # Match the async edge's listen backlog: the stdlib default
                # (5) makes any burst of connections hit SYN-retransmit
                # backoff long before a thread is even spawned.
                server_cls = type("BoundHTTPServer", (ThreadingHTTPServer,),
                                  {"request_queue_size": 1024})
                self._httpd = server_cls((host, port), handler)
                # Handler threads must not block interpreter exit: an event
                # stream can stay open for a job's whole lifetime.
                self._httpd.daemon_threads = True
            else:
                self._edge = AsyncHTTPEdge(
                    (host, port), self.app, workers=edge_workers,
                    flush_interval=flush_interval,
                    write_buffer_limit=write_buffer_limit,
                    name="anttune-edge")
        except OSError:
            # Bind failure (port in use, bad host): a tune server this
            # wrapper constructed — and so owns — must not leak its pool.
            if self._owns_tune_server:
                self.tune_server.shutdown()
            raise
        self._thread: Optional[threading.Thread] = None
        self._started = False

    def _make_app(self) -> _TuneApp:
        """The endpoint core; routers override to serve their own app."""
        return _TuneApp(self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        if self._edge is not None:
            return self._edge.address
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients connect to (e.g. ``http://127.0.0.1:8123``)."""
        host, port = self.address
        return f"http://{host}:{port}"

    def log(self, line: str) -> None:
        """Request-log hook; default drops the line (override or pass log=)."""
        if self._log is not None:
            self._log(line)

    def check_auth(self, token: Optional[str]) -> bool:
        """Whether a request presenting ``token`` may proceed.

        The default accepts everything when the server has no token, and
        requires an exact bearer match otherwise.  Override for custom
        schemes (keys per client, allow-lists, ...).
        """
        if self.token is None:
            return True
        return token == self.token

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RemoteTuneServer":
        """Serve in a background thread and return self (idempotent)."""
        if self._edge is not None:
            self._edge.start()
            self._started = True
            return self
        if self._thread is None:
            self._thread = threading.Thread(target=self._httpd.serve_forever,
                                            name="anttune-http",
                                            daemon=True)
            self._thread.start()
            self._started = True
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``serve`` command's mode)."""
        self._started = True
        if self._edge is not None:
            self._edge.serve_forever()
        else:
            self._httpd.serve_forever()

    def stop(self, shutdown_tune_server: Optional[bool] = None) -> None:
        """Stop accepting requests; optionally shut the tune server down.

        Args:
            shutdown_tune_server: defaults to whether this wrapper
                constructed (and so owns) the in-process server.
        """
        if self._edge is not None:
            self._edge.stop()
        else:
            if self._started:
                # BaseServer.shutdown() waits on a flag only serve_forever()
                # ever sets — calling it on a never-started server deadlocks.
                self._httpd.shutdown()
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(timeout=10.0)
                self._thread = None
        self._started = False
        owns = (self._owns_tune_server if shutdown_tune_server is None
                else shutdown_tune_server)
        if owns:
            self.tune_server.shutdown()

    def __enter__(self) -> "RemoteTuneServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
