"""Stdlib-only HTTP/JSON front end for the tune service.

:class:`RemoteTuneServer` wraps an in-process
:class:`~repro.automl.server.AntTuneServer` with a threaded
``http.server`` endpoint speaking the versioned wire schema of
:mod:`repro.automl.remote.api`:

====================================  =========================================
``GET  /v1/health``                   liveness + protocol version
``GET  /v1/status``                   server-wide snapshot (jobs, backpressure)
``GET  /v1/metrics``                  Prometheus text exposition of every
                                      instrumented hot path
``POST /v1/jobs``                     submit (space/objective refs, priority,
                                      preempt, seed) -> ``{"job_id": n}``
``GET  /v1/jobs``                     status snapshots of every job
``GET  /v1/jobs/{id}``                one job's status (incl. telemetry drops)
``GET  /v1/jobs/{id}/wait``           block (bounded) for the result
``POST /v1/jobs/{id}/cancel``         cancel a queued or running job
``GET  /v1/jobs/{id}/events``         NDJSON event stream, resumable via
                                      ``?last_seq=N``
``POST /v1/resume``                   resume a stored study as a new job
====================================  =========================================

The event stream is the server-side half of ``subscribe()``: each line is one
:func:`~repro.automl.events.event_to_wire` payload carrying the job's
monotonic ``seq``.  A client that lost its connection reconnects with
``last_seq=<highest seq it saw>``; the gap backfills from the **durable
event log** first (so replay works even when the in-memory bus ring rotated
or the whole process restarted — see :mod:`repro.automl.eventlog`), then the
live subscription takes over, de-duplicated by seq.  Live delivery keeps the
bus's drop-oldest semantics, with the per-connection queue bound settable
via ``?max_queue=``.  Blank heartbeat lines are emitted while the stream
idles so dead connections are noticed and their handler threads released.

Constructed with ``recover=True`` (the CLI's ``serve --recover``), the
wrapper runs :meth:`AntTuneServer.recover
<repro.automl.server.AntTuneServer.recover>` **before** binding the port, so
interrupted jobs are auto-resumed or finalised before the first client
request can observe the restarted server — reconnecting SDKs never race the
reconciliation.

Observability: every request is timed into the
``anttune_http_request_seconds{method,endpoint}`` histogram and counted in
``anttune_http_requests_total{method,endpoint,status}`` (endpoint labels are
the route *templates* — ``/v1/jobs/{id}`` — never raw paths, keeping label
cardinality bounded).  Each request's ``X-Request-Id`` header (generated when
absent) is echoed back on the response and, on submit/resume, becomes the
job's trace id — the correlation id stamped on every event the job publishes,
so one id follows a request from HTTP ingress through the whole trial
lifecycle and across crash-recovered resumes.

Failure handling: schema violations answer 4xx JSON error bodies
(:class:`~repro.automl.remote.api.ProtocolError` carries the status), unknown
jobs/studies answer 404, conflicts (duplicate study names) 409, and anything
unexpected 500 — the handler thread never takes the server down.  A ``token``
enables bearer auth (401 without it); override :meth:`RemoteTuneServer.check_auth`
for anything fancier.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.automl import metrics as _metrics
from repro.automl.events import JobStateChanged, event_to_wire
from repro.automl.remote.api import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_resume,
    parse_submit,
)
from repro.automl.server import AntTuneServer
from repro.exceptions import TrialError
from repro.utils.rng import new_rng

__all__ = ["RemoteTuneServer"]

# How long a single /wait request may block its handler thread; clients poll.
MAX_WAIT_SECONDS = 60.0
# Idle heartbeat period on event streams (blank NDJSON line): detects dead
# connections and keeps read timeouts from firing on quiet jobs.
HEARTBEAT_SECONDS = 5.0
# Socket send timeout on event streams: a connected client that stopped
# *reading* fills the TCP window and would otherwise block the handler
# thread (and pin its subscription) forever.
STREAM_SEND_TIMEOUT = 30.0
# The Prometheus text exposition content type served by GET /v1/metrics.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_HTTP_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_http_request_seconds",
    "HTTP request handling latency by method and route template.",
    labels=("method", "endpoint"))
_HTTP_TOTAL = _metrics.REGISTRY.counter(
    "anttune_http_requests_total",
    "HTTP requests served by method, route template and status code.",
    labels=("method", "endpoint", "status"))


def _json_bytes(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _clean_request_id(raw: Optional[str]) -> Optional[str]:
    """A caller-supplied X-Request-Id, or None when unusable.

    Printable, headerable, bounded: anything else is replaced by a generated
    id rather than echoed back verbatim into a response header.
    """
    if not raw:
        return None
    raw = raw.strip()
    if not raw or len(raw) > 128 or not raw.isprintable():
        return None
    return raw


class _Handler(BaseHTTPRequestHandler):
    """One request; ``self.remote`` is injected by :class:`RemoteTuneServer`."""

    remote: "RemoteTuneServer"
    protocol_version = "HTTP/1.1"
    # Per-request observability state, reset by _dispatch: the status code
    # the reply carried and the request's correlation id.
    _last_status: int = 0
    _request_id: Optional[str] = None
    # The default handler logs every request to stderr; route through the
    # remote server's hook so tests/operators control verbosity.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        self.remote.log(f"{self.address_string()} - {format % args}")

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _reply(self, status: int, payload: object,
               close: bool = False) -> None:
        self._reply_bytes(status, _json_bytes(payload), "application/json",
                          close=close)

    def _reply_bytes(self, status: int, body: bytes, content_type: str,
                     close: bool = False) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        # Errors may be answered before the request body was consumed (bad
        # auth, unknown route): closing the connection keeps a keep-alive
        # client's stream from desyncing on the unread bytes.
        self.close_connection = True
        self._reply(status, {"error": message, "protocol": PROTOCOL_VERSION},
                    close=True)

    def _bearer_token(self) -> Optional[str]:
        header = self.headers.get("Authorization", "")
        scheme, _, credentials = header.partition(" ")
        if scheme.lower() == "bearer" and credentials:
            return credentials.strip()
        return None

    def _read_body(self) -> object:
        length = self.headers.get("Content-Length")
        try:
            size = int(length) if length is not None else 0
        except ValueError:
            raise ProtocolError("invalid Content-Length header") from None
        if size <= 0:
            raise ProtocolError("request requires a JSON body")
        if size > 1 << 20:
            raise ProtocolError("request body too large", status=413)
        raw = self.rfile.read(size)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") \
                from None

    def _query(self) -> Tuple[str, Dict[str, str]]:
        split = urllib.parse.urlsplit(self.path)
        params = dict(urllib.parse.parse_qsl(split.query,
                                             keep_blank_values=True))
        return split.path.rstrip("/") or "/", params

    @staticmethod
    def _int_param(params: Dict[str, str], key: str, default: int) -> int:
        raw = params.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ProtocolError(f"query parameter {key!r} must be an "
                                f"integer, got {raw!r}") from None

    @staticmethod
    def _float_param(params: Dict[str, str], key: str,
                     default: float) -> float:
        raw = params.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ProtocolError(f"query parameter {key!r} must be a "
                                f"number, got {raw!r}") from None

    def _job_id(self, segment: str) -> int:
        if not segment.isdigit():
            raise ProtocolError(f"job id must be an integer, got {segment!r}",
                                status=404)
        return int(segment)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, method: str) -> None:
        start = perf_counter()
        self._last_status = 0
        self._request_id = (_clean_request_id(self.headers.get("X-Request-Id"))
                            or _metrics.new_trace_id())
        endpoint = "unmatched"  # route *template*, never the raw path: label
        # cardinality stays bounded no matter what clients request.
        try:
            path, params = self._query()
            if not self.remote.check_auth(self._bearer_token()):
                self._error(401, "missing or invalid bearer token")
                return
            routed = self._route(method, path)
            if routed is None:
                self._error(404, f"no such endpoint: {method} {path}")
                return
            handler, endpoint = routed
            handler(params)
        except ProtocolError as exc:
            self._safe_error(exc.status, str(exc))
        except TrialError as exc:
            message = str(exc)
            status = 404 if message.startswith("unknown") else 409
            self._safe_error(status, message)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # noqa: BLE001 - one bad request must never
            # take the server (or even its connection thread) down.
            self._safe_error(500, f"{type(exc).__name__}: {exc}")
        finally:
            _HTTP_TOTAL.labels(method=method, endpoint=endpoint,
                               status=str(self._last_status or 0)).inc()
            _HTTP_SECONDS.labels(method=method, endpoint=endpoint).observe(
                perf_counter() - start)

    def _safe_error(self, status: int, message: str) -> None:
        try:
            self._error(status, message)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _route(self, method: str, path: str):
        """Resolve ``(handler, route_template)`` for a request, or None.

        The template (``/v1/jobs/{id}`` — id elided) doubles as the
        ``endpoint`` metric label, so per-route latency/status series never
        explode in cardinality with job ids.
        """
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            return None
        parts = parts[1:]
        if method == "GET":
            if parts == ["health"]:
                return self._get_health, "/v1/health"
            if parts == ["status"]:
                return self._get_status, "/v1/status"
            if parts == ["metrics"]:
                return self._get_metrics, "/v1/metrics"
            if parts == ["jobs"]:
                return self._get_jobs, "/v1/jobs"
            if len(parts) == 2 and parts[0] == "jobs":
                return (lambda params: self._get_job(parts[1], params),
                        "/v1/jobs/{id}")
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "wait":
                return (lambda params: self._get_wait(parts[1], params),
                        "/v1/jobs/{id}/wait")
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                return (lambda params: self._get_events(parts[1], params),
                        "/v1/jobs/{id}/events")
        elif method == "POST":
            if parts == ["jobs"]:
                return self._post_submit, "/v1/jobs"
            if parts == ["resume"]:
                return self._post_resume, "/v1/resume"
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                return (lambda params: self._post_cancel(parts[1], params),
                        "/v1/jobs/{id}/cancel")
            if parts == ["tickets", "claim"]:
                return self._post_ticket_claim, "/v1/tickets/claim"
            if (len(parts) == 3 and parts[0] == "tickets"
                    and parts[2] in ("report", "heartbeat", "complete")):
                action = parts[2]
                return (lambda params: self._post_ticket(parts[1], action),
                        f"/v1/tickets/{{id}}/{action}")
        return None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _get_health(self, params: Dict[str, str]) -> None:
        self._reply(200, {"ok": True, "protocol": PROTOCOL_VERSION})

    def _get_status(self, params: Dict[str, str]) -> None:
        payload = self.remote.tune_server.server_status()
        payload["protocol"] = PROTOCOL_VERSION
        self._reply(200, payload)

    def _get_metrics(self, params: Dict[str, str]) -> None:
        """The process-wide metrics registry in Prometheus text format."""
        body = _metrics.REGISTRY.render().encode("utf-8")
        self._reply_bytes(200, body, METRICS_CONTENT_TYPE)

    def _get_jobs(self, params: Dict[str, str]) -> None:
        self._reply(200, {"jobs": self.remote.tune_server.jobs()})

    def _get_job(self, segment: str, params: Dict[str, str]) -> None:
        job_id = self._job_id(segment)
        self._reply(200, self.remote.tune_server.status(job_id))

    def _post_submit(self, params: Dict[str, str]) -> None:
        kwargs = parse_submit(self._read_body())
        seed = kwargs.pop("seed", None)
        if seed is not None:
            kwargs["rng"] = new_rng(seed)
        # The request's correlation id becomes the job's trace id: every
        # event the job publishes carries it, end to end.
        job_id = self.remote.tune_server.submit(trace_id=self._request_id,
                                                **kwargs)
        self._reply(200, {"job_id": job_id, "trace_id": self._request_id,
                          "protocol": PROTOCOL_VERSION})

    def _post_resume(self, params: Dict[str, str]) -> None:
        kwargs = parse_resume(self._read_body())
        job_id = self.remote.tune_server.resume(trace_id=self._request_id,
                                                **kwargs)
        self._reply(200, {"job_id": job_id, "trace_id": self._request_id,
                          "protocol": PROTOCOL_VERSION})

    def _post_cancel(self, segment: str, params: Dict[str, str]) -> None:
        job_id = self._job_id(segment)
        cancelled = self.remote.tune_server.cancel(job_id)
        self._reply(200, {"job_id": job_id, "cancelled": cancelled})

    # ------------------------------------------------------------------ #
    # Ticket surface (pull workers; backend="ticket" only)
    # ------------------------------------------------------------------ #
    def _post_ticket_claim(self, params: Dict[str, str]) -> None:
        """Lease the oldest open trial ticket to the calling worker.

        Answers ``{"ticket": null}`` when the board is idle — an idle
        board is a poll outcome, not an error, so workers can spin on a
        single status code.
        """
        body = self._read_body()
        if not isinstance(body, dict):
            raise ProtocolError("claim body must be a JSON object")
        worker = body.get("worker")
        if worker is not None and not isinstance(worker, str):
            raise ProtocolError("'worker' must be a string")
        board = self.remote.tune_server.ticket_board()
        self._reply(200, {"ticket": board.claim(worker=worker),
                          "protocol": PROTOCOL_VERSION})

    def _post_ticket(self, segment: str, action: str) -> None:
        """``report``/``heartbeat``/``complete`` against a leased ticket.

        Every answer carries ``kill`` (a kill reason or null) so the
        worker observes cancellation/pruning/preemption at its next call —
        the same cooperative-kill contract the shared-memory flag table
        gives process workers.  Stale-lease calls get the 404/409 the
        board raises: the worker drops the attempt; the config already
        requeued server-side.
        """
        if not segment.isdigit():
            raise ProtocolError(
                f"ticket id must be an integer, got {segment!r}", status=404)
        ticket_id = int(segment)
        body = self._read_body()
        if not isinstance(body, dict):
            raise ProtocolError("ticket body must be a JSON object")
        token = body.get("token")
        if not isinstance(token, str) or not token:
            raise ProtocolError("'token' (the lease token) is required")
        board = self.remote.tune_server.ticket_board()
        if action == "report":
            step, value = body.get("step"), body.get("value")
            if not isinstance(step, int) or isinstance(step, bool) or step < 0:
                raise ProtocolError("'step' must be a non-negative integer")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError("'value' must be a number")
            kill = board.report(ticket_id, token, step, float(value))
        elif action == "heartbeat":
            kill = board.heartbeat(ticket_id, token)
        else:  # complete
            record = body.get("record")
            if not isinstance(record, dict):
                raise ProtocolError("'record' (the trial record) is required")
            required = ("state", "value", "error", "duration_seconds",
                        "intermediate_values")
            missing = [key for key in required if key not in record]
            if missing:
                raise ProtocolError(
                    f"trial record is missing keys: {', '.join(missing)}")
            board.complete(ticket_id, token, record)
            kill = None
        self._reply(200, {"ok": True, "kill": kill})

    def _get_wait(self, segment: str, params: Dict[str, str]) -> None:
        """Bounded blocking wait; clients poll until ``done``.

        The per-request block is capped at :data:`MAX_WAIT_SECONDS` so one
        slow job cannot pin handler threads forever; the SDK's ``wait()``
        re-issues the request until its own (possibly unbounded) timeout.
        """
        job_id = self._job_id(segment)
        timeout = min(self._float_param(params, "timeout", 10.0),
                      MAX_WAIT_SECONDS)
        tune = self.remote.tune_server
        try:
            best = tune.wait(job_id, timeout=max(0.0, timeout))
        except TrialError as exc:
            status = tune.status(job_id)  # raises 404 for unknown ids
            if not status["finished"]:
                self._reply(200, {"done": False, "state": status["state"]})
                return
            self._reply(200, {"done": True, "state": status["state"],
                              "error": status["error"] or str(exc),
                              "best": None})
            return
        self._reply(200, {"done": True, "state": "completed", "error": None,
                          "best": best.as_record()})

    def _get_events(self, segment: str, params: Dict[str, str]) -> None:
        """Stream one job's ordered event feed as NDJSON until terminal.

        ``last_seq`` skips everything the client already saw.  The gap
        backfills from the durable event log first — transparently serving
        pre-restart history when the in-memory bus ring rotated or the
        process is new — then the live subscription takes over; both sides
        overlap rather than gap (subscription opened before the disk read),
        and ``sent`` de-duplicates by seq.  ``max_queue`` bounds this
        connection's live queue with the bus's drop-oldest semantics, so a
        slow consumer lags (and sees a seq gap it can re-request) instead of
        back-pressuring the publishers.
        """
        job_id = self._job_id(segment)
        last_seq = self._int_param(params, "last_seq", -1)
        max_queue = self._int_param(params, "max_queue", 1024)
        if max_queue < 1:
            raise ProtocolError("max_queue must be >= 1")
        backfill, subscription = self.remote.tune_server.open_event_stream(
            job_id, last_seq=last_seq, max_queue=max_queue)
        try:
            # A client that stops *reading* must not pin this thread: once
            # the TCP window fills, writes block — bound them so the wedged
            # connection is torn down and the subscription released.
            self.connection.settimeout(STREAM_SEND_TIMEOUT)
            self._last_status = 200
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-store")
            if self._request_id:
                self.send_header("X-Request-Id", self._request_id)
            # Close-delimited stream: its length is unknowable up front.
            self.send_header("Connection", "close")
            self.end_headers()
            sent = last_seq  # highest seq written; the de-dup watermark
            for event in backfill:
                if event.seq <= sent:
                    continue
                self.wfile.write(_json_bytes(event_to_wire(event)))
                self.wfile.flush()
                sent = event.seq
                if isinstance(event, JobStateChanged) and event.terminal:
                    return  # the log already holds the stream's end
            if subscription is None:
                # Log-only job (finished before a restart): the backfill was
                # the whole story — and it ended terminal above, or the log
                # was compacted down to a tail the client already has.
                return
            while True:
                try:
                    event = subscription.get(timeout=HEARTBEAT_SECONDS)
                except TimeoutError:
                    # Idle heartbeat: keeps client read timeouts quiet and
                    # surfaces a dead connection as a write error here.
                    self.wfile.write(b"\n")
                    self.wfile.flush()
                    continue
                if event is None:
                    return  # terminal event already delivered
                if event.seq > sent:
                    self.wfile.write(_json_bytes(event_to_wire(event)))
                    self.wfile.flush()
                    sent = event.seq
                if isinstance(event, JobStateChanged) and event.terminal:
                    return
        except OSError:
            # Disconnected or stalled client (reset, broken pipe, send
            # timeout): drop the stream; it can resume with last_seq.
            return
        finally:
            if subscription is not None:
                subscription.close()
            self.close_connection = True


class RemoteTuneServer:
    """Serve an :class:`AntTuneServer` over HTTP/JSON on a loopback (or any) port.

    Args:
        tune_server: the in-process server to expose; constructed from
            ``server_kwargs`` when omitted (and then owned — shut down with
            the HTTP layer).
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (see :attr:`address`).
        token: when set, every request must carry
            ``Authorization: Bearer <token>`` (else 401).  Override
            :meth:`check_auth` for custom schemes.
        log: optional callable receiving one line per handled request.
        recover: run :meth:`AntTuneServer.recover
            <repro.automl.server.AntTuneServer.recover>` before binding the
            port — interrupted jobs are auto-resumed or finalised before any
            client can connect; the summary lands in :attr:`recovery`.
            Requires file-backed storage.
        **server_kwargs: forwarded to :class:`AntTuneServer` when
            ``tune_server`` is omitted (``num_workers=``, ``storage=``, ...).

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with RemoteTuneServer(num_workers=2) as remote:
            client = AntTuneClient(remote.url)
            ...
    """

    def __init__(self, tune_server: Optional[AntTuneServer] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 token: Optional[str] = None,
                 log: Optional[object] = None,
                 recover: bool = False,
                 **server_kwargs: object) -> None:
        self._owns_tune_server = tune_server is None
        self.tune_server = (tune_server if tune_server is not None
                            else AntTuneServer(**server_kwargs))  # type: ignore[arg-type]
        self.token = token
        self._log = log
        #: recover()'s summary when constructed with ``recover=True``.
        self.recovery: Optional[Dict[str, object]] = None
        if recover:
            # Reconcile *before* the socket exists: a reconnecting client is
            # held in the kernel backlog (or connection-refused and retried
            # by the SDK) rather than observing half-recovered state.
            try:
                self.recovery = self.tune_server.recover()
            except Exception:
                if self._owns_tune_server:
                    self.tune_server.shutdown()
                raise
        handler = type("BoundHandler", (_Handler,), {"remote": self})
        try:
            self._httpd = ThreadingHTTPServer((host, port), handler)
        except OSError:
            # Bind failure (port in use, bad host): a tune server this
            # wrapper constructed — and so owns — must not leak its pool.
            if self._owns_tune_server:
                self.tune_server.shutdown()
            raise
        # Handler threads must not block interpreter exit: an event stream
        # can legitimately stay open for a job's whole lifetime.
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients connect to (e.g. ``http://127.0.0.1:8123``)."""
        host, port = self.address
        return f"http://{host}:{port}"

    def log(self, line: str) -> None:
        """Request-log hook; default drops the line (override or pass log=)."""
        if self._log is not None:
            self._log(line)

    def check_auth(self, token: Optional[str]) -> bool:
        """Whether a request presenting ``token`` may proceed.

        The default accepts everything when the server has no token, and
        requires an exact bearer match otherwise.  Override for custom
        schemes (keys per client, allow-lists, ...).
        """
        if self.token is None:
            return True
        return token == self.token

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RemoteTuneServer":
        """Serve in a background thread and return self (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._httpd.serve_forever,
                                            name="anttune-http",
                                            daemon=True)
            self._thread.start()
            self._started = True
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``serve`` command's mode)."""
        self._started = True
        self._httpd.serve_forever()

    def stop(self, shutdown_tune_server: Optional[bool] = None) -> None:
        """Stop accepting requests; optionally shut the tune server down.

        Args:
            shutdown_tune_server: defaults to whether this wrapper
                constructed (and so owns) the in-process server.
        """
        if self._started:
            # BaseServer.shutdown() waits on a flag only serve_forever()
            # ever sets — calling it on a never-started server deadlocks.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._started = False
        owns = (self._owns_tune_server if shutdown_tune_server is None
                else shutdown_tune_server)
        if owns:
            self.tune_server.shutdown()

    def __enter__(self) -> "RemoteTuneServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
