"""The C10k serving edge: a stdlib ``selectors`` event loop for HTTP/JSON.

The remote layer's original transport was thread-per-connection
(``ThreadingHTTPServer``): every NDJSON event stream owned a handler thread
for its lifetime and every parked ``/wait`` pinned one more, capping a
backend at a few dozen concurrent streaming clients.  This module replaces
that transport with one I/O thread multiplexing **all** sockets:

* **One event loop** (:class:`AsyncHTTPEdge`) owns every connection: a
  non-blocking listener, incremental HTTP/1.1 request parsing straight off
  the read buffer, per-connection write buffers drained on writability, a
  timer heap for heartbeats/timeouts, and a wake-up socketpair so other
  threads can post work onto the loop.
* **Short-lived control requests** (submit, status, cancel, tickets) are
  dispatched to a small bounded worker pool; the loop itself never blocks
  on application code.
* **Event streams leave the thread world**: each streaming connection is a
  write buffer fed by event-bus callbacks.  Frames queued between two loop
  passes are coalesced into **one batched send** (observed by the
  ``anttune_edge_flush_batch_size`` histogram), and every frame is the
  event's shared pre-serialised wire line
  (:func:`repro.automl.events.event_wire_bytes`) — one serialisation per
  event regardless of subscriber count.
* **``/wait`` parks**: instead of blocking a thread on the job, the edge
  registers a terminal-event continuation plus a loop timer; whichever
  fires first completes the response.  A thousand waiting clients cost a
  thousand parked connections, not a thousand threads.
* **Slow readers are bounded**: a stalled connection's live frame queue
  drops oldest (counted through the app's drop hook into
  ``anttune_event_queue_dropped_total``), its write buffer is capped, and a
  connection that makes no send progress for the stream send-timeout grace
  is disconnected.

The edge is application-agnostic: it drives an *app* object (the tune
server's and the router's endpoint cores in
:mod:`~repro.automl.remote.http_server` / :mod:`~repro.automl.remote.router`)
through a small duck-typed protocol::

    app.log(line)                       # request-log hook
    app.check_auth(token) -> bool       # bearer-token gate
    app.classify(method, path)          # -> (kind, template, args) | None
                                        #    kind: control | wait | events
    app.handle_control(method, template, args, params, read_body,
                       request_id) -> Reply
    app.wait_begin(args, params, request_id)
                                        # -> ("reply", payload)
                                        #  | ("park", parker)
    app.stream_begin(args, params, request_id, sink) -> None
    app.heartbeat_seconds               # idle stream heartbeat period
    app.stream_send_timeout             # no-progress disconnect grace

``handle_control`` / ``wait_begin`` / ``stream_begin`` run on worker-pool
threads and may raise :class:`~repro.automl.remote.api.ProtocolError` /
:class:`~repro.exceptions.TrialError` — the edge maps them to the same
4xx/404/409/500 JSON error taxonomy as the threaded transport.

Everything here is stdlib-only, like the rest of the remote layer.
"""

from __future__ import annotations

import heapq
import itertools
import json
import selectors
import socket
import threading
import urllib.parse
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from time import monotonic, perf_counter
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.automl import metrics as _metrics
from repro.automl.remote.api import PROTOCOL_VERSION, ProtocolError
from repro.exceptions import TrialError

__all__ = ["AsyncHTTPEdge", "Reply", "json_reply"]

# Caps on the incremental parser: a header block (request line included)
# beyond 64 KiB or a declared body beyond 1 MiB is refused outright.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 1 << 20
_RECV_CHUNK = 64 * 1024

# Request metrics are shared with the threaded transport (http_server
# aliases these): one latency histogram and one status counter per route
# template, whichever edge served the request.
_HTTP_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_http_request_seconds",
    "HTTP request handling latency by method and route template.",
    labels=("method", "endpoint"))
_HTTP_TOTAL = _metrics.REGISTRY.counter(
    "anttune_http_requests_total",
    "HTTP requests served by method, route template and status code.",
    labels=("method", "endpoint", "status"))
_OPEN_CONNECTIONS = _metrics.REGISTRY.gauge(
    "anttune_http_open_connections",
    "Connections currently open on the async edge, by kind: short-lived "
    "control requests (parked /wait included) vs long-lived event streams.",
    labels=("kind",))
_FLUSH_BATCH = _metrics.REGISTRY.histogram(
    "anttune_edge_flush_batch_size",
    "Live event frames coalesced into one batched send per stream flush.",
    buckets=_metrics.exponential_buckets(1.0, 2.0, 11))
_LOOP_LAG = _metrics.REGISTRY.histogram(
    "anttune_edge_loop_lag_seconds",
    "How late loop timers fire: the gap between a timer's deadline and the "
    "moment the loop ran it. The saturation signal for the event loop.")
_CONN_CHILDREN = {kind: _OPEN_CONNECTIONS.labels(kind=kind)
                  for kind in ("control", "stream")}


def _json_bytes(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _clean_request_id(raw: Optional[str]) -> Optional[str]:
    """A caller-supplied X-Request-Id, or None when unusable.

    Printable, headerable, bounded: anything else is replaced by a generated
    id rather than echoed back verbatim into a response header.
    """
    if not raw:
        return None
    raw = raw.strip()
    if not raw or len(raw) > 128 or not raw.isprintable():
        return None
    return raw


def _int_param(params: Dict[str, str], key: str, default: int) -> int:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ProtocolError(f"query parameter {key!r} must be an "
                            f"integer, got {raw!r}") from None


def _float_param(params: Dict[str, str], key: str, default: float) -> float:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ProtocolError(f"query parameter {key!r} must be a "
                            f"number, got {raw!r}") from None


def _job_id_segment(segment: str) -> int:
    if not segment.isdigit():
        raise ProtocolError(f"job id must be an integer, got {segment!r}",
                            status=404)
    return int(segment)


def _split_target(target: str) -> Tuple[str, Dict[str, str]]:
    split = urllib.parse.urlsplit(target)
    params = dict(urllib.parse.parse_qsl(split.query, keep_blank_values=True))
    return split.path.rstrip("/") or "/", params


def _bearer_token(headers: Dict[str, str]) -> Optional[str]:
    header = headers.get("authorization", "")
    scheme, _, credentials = header.partition(" ")
    if scheme.lower() == "bearer" and credentials:
        return credentials.strip()
    return None


class Reply:
    """One complete control response: status, body bytes, content type."""

    __slots__ = ("status", "body", "content_type", "close")

    def __init__(self, status: int, body: bytes,
                 content_type: str = "application/json",
                 close: bool = False) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.close = close


def json_reply(status: int, payload: object, close: bool = False) -> Reply:
    """A :class:`Reply` carrying a JSON body (the common case)."""
    return Reply(status, _json_bytes(payload), close=close)


_REASONS = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
            404: "Not Found", 409: "Conflict", 413: "Payload Too Large",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error"}


class _Request:
    """One parsed HTTP request, handed from the loop to a worker thread."""

    __slots__ = ("method", "target", "headers", "body", "keep_alive",
                 "serial")

    def __init__(self, method: str, target: str, headers: Dict[str, str],
                 body: bytes, keep_alive: bool, serial: int) -> None:
        self.method = method
        self.target = target
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive
        self.serial = serial


class _Stream(object):
    """Per-connection streaming state: the live frame queue and its bounds."""

    __slots__ = ("lock", "live", "live_bound", "dropped_pending", "drop_hook",
                 "watermark", "backfill_done", "started", "ending",
                 "last_write", "drain_ok", "heartbeat_timer", "unsent")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        # (frame bytes, seq, terminal) triples pushed by bus callbacks.
        self.live: Deque[Tuple[bytes, int, bool]] = deque()
        self.live_bound = 1024
        self.dropped_pending = 0
        self.drop_hook: Optional[Callable[[int], None]] = None
        # Highest seq already written via backfill; live frames at or below
        # it are duplicates of the overlap window and are skipped.
        self.watermark = -1
        self.backfill_done = False
        self.started = False
        self.ending = False
        self.last_write = 0.0
        # Backfill flow control: set while the write buffer has room.
        self.drain_ok = threading.Event()
        self.heartbeat_timer: Optional[int] = None
        # Backfill bytes emitted but not yet on the wire.  Accounted on the
        # *producer* side (emit time), because counting on the loop side
        # lets a worker post frames faster than the loop applies them and
        # the write-buffer bound becomes advisory.
        self.unsent = 0


class _Connection:
    """One socket as the loop sees it: buffers, parser state, mode."""

    __slots__ = ("sock", "addr", "rbuf", "out", "kind", "busy", "closing",
                 "alive", "want_write", "last_progress", "serial", "answered",
                 "stream", "cleanups", "out_started_at")

    def __init__(self, sock: socket.socket, addr: object) -> None:
        self.sock = sock
        self.addr = addr
        self.rbuf = bytearray()
        self.out = bytearray()
        self.kind = "control"
        self.busy = False          # a request is in flight; parsing paused
        self.closing = False       # close once `out` drains
        self.alive = True
        self.want_write = False
        self.last_progress = monotonic()
        self.serial = 0            # increments per parsed request
        self.answered = True       # the current serial has been replied to
        self.stream: Optional[_Stream] = None
        self.cleanups: List[Callable[[], None]] = []


class _StreamSink:
    """The app-facing handle for one streaming response.

    ``start``/``emit``/``backfill_done``/``end`` are called in order from
    the worker thread running ``stream_begin``; ``live`` may be called from
    any publisher thread at any time (including before ``start``, during
    the bus's synchronous replay).  Everything that touches the connection
    is posted onto the loop.
    """

    def __init__(self, edge: "AsyncHTTPEdge", conn: _Connection,
                 request_id: Optional[str], send_timeout: float) -> None:
        self._edge = edge
        self._conn = conn
        self._request_id = request_id
        self._send_timeout = send_timeout
        self._state = _Stream()
        self._state.drain_ok.set()
        self._dead = threading.Event()
        self.started = False

    # -- app side -------------------------------------------------------- #
    @property
    def live_bound(self) -> int:
        return self._state.live_bound

    @live_bound.setter
    def live_bound(self, bound: int) -> None:
        self._state.live_bound = max(1, int(bound))

    @property
    def drop_hook(self) -> Optional[Callable[[int], None]]:
        return self._state.drop_hook

    @drop_hook.setter
    def drop_hook(self, hook: Optional[Callable[[int], None]]) -> None:
        self._state.drop_hook = hook

    def on_close(self, cleanup: Callable[[], None]) -> None:
        """Run ``cleanup`` when the connection goes away (or now if it has)."""
        self._edge._attach_cleanup(self._conn, cleanup)

    def start(self) -> bool:
        """Send the stream's response head; False when the client is gone."""
        self.started = True
        self._edge._post(lambda: self._edge._stream_start(
            self._conn, self, self._request_id))
        return not self._dead.is_set()

    def emit(self, data: bytes) -> bool:
        """Write one backfill frame, with flow control; False when gone.

        Blocks the calling worker thread while the connection's write buffer
        is above its high-water mark, so a huge durable-log backfill streams
        at the client's pace in bounded memory.
        """
        if self._dead.is_set():
            return False
        state = self._state
        with state.lock:
            state.unsent += len(data)
            if state.unsent >= self._edge.write_buffer_limit:
                state.drain_ok.clear()
        self._edge._post(lambda: self._edge._stream_emit(self._conn, data))
        if not state.drain_ok.wait(self._send_timeout):
            # The client made no room for the whole grace period: stop the
            # backfill and tear the connection down (it can resume later
            # with last_seq).
            self._edge._post(lambda: self._edge._teardown(self._conn))
            return False
        return not self._dead.is_set()

    def live(self, data: bytes, seq: int, terminal: bool) -> None:
        """Queue one live frame (bounded, drop-oldest; publisher thread)."""
        state = self._state
        with state.lock:
            if self._dead.is_set():
                return
            if not terminal:
                while len(state.live) >= state.live_bound:
                    _, _, was_terminal = state.live.popleft()
                    if was_terminal:  # pragma: no cover - terminal is always
                        state.live.appendleft((_, _, was_terminal))  # newest
                        break
                    state.dropped_pending += 1
            state.live.append((data, seq, terminal))
        self._edge._mark_dirty(self._conn)

    def backfill_done(self, watermark: int) -> None:
        """Backfill finished at ``watermark``; live flushing may begin."""
        state = self._state

        def activate() -> None:
            state.watermark = max(state.watermark, watermark)
            state.backfill_done = True
            self._edge._flush_stream(self._conn, monotonic())

        self._edge._post(activate)

    def end(self) -> None:
        """The stream is complete: close once everything queued is written."""
        def finish() -> None:
            self._state.ending = True
            self._state.backfill_done = True
            conn = self._conn
            if conn.alive:
                conn.closing = True
                if not conn.out:
                    self._edge._teardown(conn)
                else:
                    self._edge._arm_write(conn)

        self._edge._post(finish)

    # -- edge side ------------------------------------------------------- #
    def _mark_dead(self) -> None:
        with self._state.lock:
            self._dead.set()
            self._state.live.clear()
        self._state.drain_ok.set()  # unblock a worker stuck in emit()


class AsyncHTTPEdge:
    """One event loop serving every connection of an HTTP/JSON app.

    Args:
        address: ``(host, port)`` to bind; port 0 picks a free one.
        app: the endpoint core driven by this edge (see the module
            docstring for the protocol).
        workers: bounded worker-pool size for control handlers and stream
            backfills.
        flush_interval: minimum seconds between two batched flushes of the
            same stream — raising it trades latency for larger frames per
            send under load.
        write_buffer_limit: per-connection cap (bytes) on buffered unsent
            output; above it, backfills block (flow control) and live
            flushing pauses so the bounded frame queue takes over.
        backlog: listen backlog.
        name: thread-name prefix.
    """

    def __init__(self, address: Tuple[str, int], app: object, *,
                 workers: int = 8, flush_interval: float = 0.005,
                 write_buffer_limit: int = 256 * 1024,
                 backlog: int = 1024, name: str = "anttune-edge") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._app = app
        self.flush_interval = max(0.0, float(flush_interval))
        self.write_buffer_limit = max(4096, int(write_buffer_limit))
        self._name = name
        self._listener = socket.create_server(address, backlog=backlog)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                ("accept", None))
        # Wake-up channel: other threads post() thunks and prod the loop.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ,
                                ("wake", None))
        self._pending: Deque[Callable[[], None]] = deque()
        self._pending_lock = threading.Lock()
        # Wake coalescing: one byte per loop pass, not one per producer.
        # Under fan-out load _mark_dirty() fires per event per subscriber;
        # without the armed flag every one of those is a send() syscall.
        self._wake_armed = False
        self._wake_lock = threading.Lock()
        self._dirty: Set[_Connection] = set()
        self._dirty_lock = threading.Lock()
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_ids = itertools.count()
        self._cancelled: Set[int] = set()
        self._conns: Set[_Connection] = set()
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix=f"{name}-worker")
        self._stop_flag = threading.Event()
        self._done = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._listener.getsockname()[:2]

    def _log(self, line: str) -> None:
        log = getattr(self._app, "log", None)
        if log is not None:
            try:
                log(line)
            except Exception:  # noqa: BLE001 - logging must never kill IO
                pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "AsyncHTTPEdge":
        """Run the loop in a background thread (idempotent)."""
        if self._thread is None and not self._closed:
            self._thread = threading.Thread(target=self.serve_forever,
                                            name=self._name, daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the loop on the calling thread until :meth:`stop`."""
        self._running = True
        self._done.clear()
        try:
            while not self._stop_flag.is_set():
                self._loop_pass()
        finally:
            self._running = False
            self._shutdown_loop()
            self._done.set()

    def stop(self) -> None:
        """Stop the loop, close every connection, release the pool."""
        self._stop_flag.set()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        elif self._running:
            self._done.wait(timeout=10.0)
        else:
            # Never started: nothing is draining the stop flag, clean up
            # inline (mirrors the threaded server's never-started stop()).
            self._shutdown_loop()
        self._pool.shutdown(wait=False)

    def _shutdown_loop(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in list(self._conns):
            self._teardown(conn)
        for sock in (self._listener, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._selector.close()

    # ------------------------------------------------------------------ #
    # Cross-thread plumbing
    # ------------------------------------------------------------------ #
    def _wake(self) -> None:
        with self._wake_lock:
            if self._wake_armed:
                return  # a wake byte is already in flight for this pass
            self._wake_armed = True
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # full pipe already wakes the loop; closed pipe = stopping

    def _post(self, thunk: Callable[[], None]) -> None:
        """Run ``thunk`` on the loop thread at the next pass."""
        with self._pending_lock:
            self._pending.append(thunk)
        self._wake()

    def _mark_dirty(self, conn: _Connection) -> None:
        # Racy fast-path, safe because callers enqueue their frame BEFORE
        # marking: if the conn is in the dirty set at any moment after the
        # enqueue, the flush that consumes that set delivers the frame.
        if conn in self._dirty:
            return
        with self._dirty_lock:
            self._dirty.add(conn)
        self._wake()

    def schedule(self, delay: float, fn: Callable[[], None]) -> int:
        """Arm ``fn`` to run on the loop in ``delay`` seconds; returns an id.

        Thread-safe; cancel with :meth:`cancel_timer`.  Fire lateness is
        observed in ``anttune_edge_loop_lag_seconds``.
        """
        tid = next(self._timer_ids)
        when = monotonic() + max(0.0, delay)
        self._post(lambda: heapq.heappush(self._timers, (when, tid, fn)))
        return tid

    def cancel_timer(self, tid: int) -> None:
        """Best-effort cancel: the timer becomes a no-op if still pending."""
        self._post(lambda: self._cancelled.add(tid))

    def _attach_cleanup(self, conn: _Connection,
                        cleanup: Callable[[], None]) -> None:
        """Run ``cleanup`` at teardown — or immediately if already gone."""
        def attach() -> None:
            if conn.alive:
                conn.cleanups.append(cleanup)
            else:
                self._run_cleanup(cleanup)

        self._post(attach)

    def _run_cleanup(self, cleanup: Callable[[], None]) -> None:
        try:
            cleanup()
        except Exception:  # noqa: BLE001 - cleanup must never kill the loop
            pass

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def _loop_pass(self) -> None:
        now = monotonic()
        timeout = 0.5
        if self._timers:
            timeout = min(timeout, max(0.0, self._timers[0][0] - now))
        with self._dirty_lock:
            if self._dirty:
                timeout = 0.0
        try:
            events = self._selector.select(timeout)
        except OSError:  # pragma: no cover - selector closed under us
            return
        for key, mask in events:
            tag, conn = key.data
            if tag == "accept":
                self._accept()
            elif tag == "wake":
                try:
                    while self._wake_r.recv(4096):
                        pass
                except (BlockingIOError, OSError):
                    pass
            else:
                if mask & selectors.EVENT_READ:
                    self._handle_read(conn)
                if mask & selectors.EVENT_WRITE and conn.alive:
                    self._handle_write(conn)
        # Disarm BEFORE reading the work queues: a producer that raced the
        # drain above had its work enqueued in time for this pass; one that
        # arrives after this line sends a fresh wake byte.
        with self._wake_lock:
            self._wake_armed = False
        while True:
            with self._pending_lock:
                if not self._pending:
                    break
                thunk = self._pending.popleft()
            try:
                thunk()
            except Exception as exc:  # noqa: BLE001 - a bad thunk must not
                self._log(f"edge: posted task failed: {exc!r}")  # kill IO
        now = monotonic()
        while self._timers and self._timers[0][0] <= now:
            when, tid, fn = heapq.heappop(self._timers)
            if tid in self._cancelled:
                self._cancelled.discard(tid)
                continue
            _LOOP_LAG.observe(monotonic() - when)
            try:
                fn()
            except Exception as exc:  # noqa: BLE001
                self._log(f"edge: timer failed: {exc!r}")
        with self._dirty_lock:
            dirty = list(self._dirty)
            self._dirty.clear()
        if dirty:
            now = monotonic()
            for conn in dirty:
                if conn.alive:
                    self._flush_stream(conn, now)

    # -- accept --------------------------------------------------------- #
    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - not a TCP socket
                pass
            conn = _Connection(sock, addr)
            self._conns.add(conn)
            _CONN_CHILDREN["control"].inc()
            try:
                self._selector.register(sock, selectors.EVENT_READ,
                                        ("conn", conn))
            except (ValueError, OSError):  # pragma: no cover - raced close
                self._conns.discard(conn)
                _CONN_CHILDREN["control"].dec()
                sock.close()

    # -- read + incremental parse --------------------------------------- #
    def _handle_read(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._teardown(conn)
            return
        if not data:
            self._teardown(conn)
            return
        if conn.stream is not None or conn.closing:
            return  # close-delimited response in flight; inbound is noise
        conn.rbuf += data
        self._try_parse(conn)

    def _try_parse(self, conn: _Connection) -> None:
        """Pull complete requests off the read buffer and dispatch them."""
        while conn.alive and not conn.busy and not conn.closing:
            head_end = conn.rbuf.find(b"\r\n\r\n")
            if head_end < 0:
                if len(conn.rbuf) > MAX_HEADER_BYTES:
                    self._parse_error(conn, 431, "request header too large")
                return
            head = bytes(conn.rbuf[:head_end])
            try:
                method, target, headers = self._parse_head(head)
            except ValueError as exc:
                self._parse_error(conn, 400, str(exc))
                return
            length_raw = headers.get("content-length")
            try:
                length = int(length_raw) if length_raw is not None else 0
            except ValueError:
                self._parse_error(conn, 400, "invalid Content-Length header")
                return
            if length > MAX_BODY_BYTES:
                self._parse_error(conn, 413, "request body too large")
                return
            total = head_end + 4 + max(0, length)
            if len(conn.rbuf) < total:
                return  # body still in flight
            body = bytes(conn.rbuf[head_end + 4:total])
            del conn.rbuf[:total]
            keep_alive = headers.get("connection", "").lower() != "close"
            conn.serial += 1
            conn.busy = True
            conn.answered = False
            request = _Request(method, target, headers, body, keep_alive,
                               conn.serial)
            self._pool.submit(self._dispatch, conn, request)

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
        try:
            text = head.decode("iso-8859-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise ValueError("undecodable request head") from None
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise ValueError(f"unsupported HTTP version {version!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    def _parse_error(self, conn: _Connection, status: int,
                     message: str) -> None:
        """Refuse an unparseable request and close (no app involved)."""
        body = _json_bytes({"error": message, "protocol": PROTOCOL_VERSION})
        conn.busy = True  # stop parsing; this connection is done
        self._write_head_and_body(conn, status, body, "application/json",
                                  None, close=True)

    # -- write ----------------------------------------------------------- #
    def _arm_write(self, conn: _Connection) -> None:
        if conn.want_write or not conn.alive:
            return
        conn.want_write = True
        try:
            self._selector.modify(conn.sock,
                                  selectors.EVENT_READ | selectors.EVENT_WRITE,
                                  ("conn", conn))
        except (KeyError, ValueError, OSError):  # pragma: no cover
            self._teardown(conn)

    def _disarm_write(self, conn: _Connection) -> None:
        if not conn.want_write:
            return
        conn.want_write = False
        try:
            self._selector.modify(conn.sock, selectors.EVENT_READ,
                                  ("conn", conn))
        except (KeyError, ValueError, OSError):  # pragma: no cover
            self._teardown(conn)

    def _handle_write(self, conn: _Connection) -> None:
        if not conn.out:
            self._disarm_write(conn)
            if conn.closing:
                self._teardown(conn)
            return
        try:
            sent = conn.sock.send(memoryview(conn.out)[:256 * 1024])
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._teardown(conn)
            return
        if sent > 0:
            del conn.out[:sent]
            conn.last_progress = monotonic()
            stream = conn.stream
            if stream is not None:
                state = stream._state
                with state.lock:
                    state.unsent = max(0, state.unsent - sent)
                    if state.unsent < self.write_buffer_limit:
                        state.drain_ok.set()
                    backlog = bool(state.live)
                if backlog and state.backfill_done:
                    self._mark_dirty(conn)
        if not conn.out:
            self._disarm_write(conn)
            if conn.closing:
                self._teardown(conn)

    def _write_head_and_body(self, conn: _Connection, status: int,
                             body: bytes, content_type: str,
                             request_id: Optional[str],
                             close: bool) -> None:
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}"]
        if request_id:
            head.append(f"X-Request-Id: {request_id}")
        if close:
            head.append("Connection: close")
        payload = ("\r\n".join(head) + "\r\n\r\n").encode("iso-8859-1") + body
        if not conn.out:
            conn.last_progress = monotonic()
        conn.out += payload
        if close:
            conn.closing = True
        self._arm_write(conn)

    # -- streaming ------------------------------------------------------- #
    def _stream_start(self, conn: _Connection, sink: _StreamSink,
                      request_id: Optional[str]) -> None:
        if not conn.alive:
            sink._mark_dead()
            return
        head = ["HTTP/1.1 200 OK",
                "Content-Type: application/x-ndjson",
                "Cache-Control: no-store"]
        if request_id:
            head.append(f"X-Request-Id: {request_id}")
        head.append("Connection: close")  # close-delimited stream
        if not conn.out:
            conn.last_progress = monotonic()
        conn.out += ("\r\n".join(head) + "\r\n\r\n").encode("iso-8859-1")
        conn.stream = sink
        state = sink._state
        state.started = True
        state.last_write = monotonic()
        if conn.kind != "stream":
            _CONN_CHILDREN[conn.kind].dec()
            conn.kind = "stream"
            _CONN_CHILDREN["stream"].inc()
        self._arm_write(conn)
        self._schedule_stream_upkeep(conn, sink)

    def _schedule_stream_upkeep(self, conn: _Connection,
                                sink: _StreamSink) -> None:
        """Heartbeat + stall sweep for one stream, rescheduled until done."""
        heartbeat = max(0.1, float(getattr(self._app, "heartbeat_seconds",
                                           5.0)))

        def upkeep() -> None:
            if not conn.alive or conn.stream is not sink:
                return
            state = sink._state
            now = monotonic()
            grace = max(0.1, float(getattr(self._app, "stream_send_timeout",
                                           30.0)))
            if conn.out and now - conn.last_progress > grace:
                # The client stopped reading and its grace is spent.
                self._teardown(conn)
                return
            if (state.started and not state.ending and not conn.out
                    and now - state.last_write >= heartbeat):
                # Idle heartbeat: a blank NDJSON line keeps client read
                # timeouts quiet and surfaces dead peers as write errors.
                conn.last_progress = now
                conn.out += b"\n"
                state.last_write = now
                self._arm_write(conn)
            state.heartbeat_timer = self.schedule(
                min(heartbeat, max(0.5, grace / 4)), upkeep)

        state = sink._state
        state.heartbeat_timer = self.schedule(
            min(heartbeat, 1.0), upkeep)

    def _stream_emit(self, conn: _Connection, data: bytes) -> None:
        if not conn.alive or conn.stream is None:
            return
        state = conn.stream._state
        if not conn.out:
            conn.last_progress = monotonic()
        conn.out += data
        state.last_write = monotonic()
        self._arm_write(conn)

    def _flush_stream(self, conn: _Connection, now: float) -> None:
        """Coalesce queued live frames into one batched write."""
        sink = conn.stream
        if sink is None or not conn.alive:
            return
        state = sink._state
        if not state.started or not state.backfill_done:
            return
        if conn.out and len(conn.out) >= self.write_buffer_limit:
            return  # buffer full: leave frames queued (bounded, drop-oldest)
        frames: List[bytes] = []
        ending = False
        with state.lock:
            while state.live:
                data, seq, terminal = state.live.popleft()
                if terminal:
                    ending = True
                if seq <= state.watermark:
                    continue  # the backfill overlap already shipped it
                state.watermark = seq
                frames.append(data)
            dropped, state.dropped_pending = state.dropped_pending, 0
        if dropped and state.drop_hook is not None:
            try:
                state.drop_hook(dropped)
            except Exception:  # noqa: BLE001 - accounting must not kill IO
                pass
        if frames:
            if not conn.out:
                conn.last_progress = now
            conn.out += b"".join(frames)
            state.last_write = now
            _FLUSH_BATCH.observe(len(frames))
            self._arm_write(conn)
        if ending:
            state.ending = True
            conn.closing = True
            if not conn.out:
                self._teardown(conn)
            else:
                self._arm_write(conn)

    # -- dispatch (worker threads) --------------------------------------- #
    def _respond(self, conn: _Connection, serial: int, status: int,
                 body: bytes, content_type: str, close: bool,
                 request_id: Optional[str]) -> None:
        """Queue one response for the request ``serial`` (first reply wins)."""
        def write() -> None:
            if not conn.alive or conn.serial != serial or conn.answered:
                return
            conn.answered = True
            self._write_head_and_body(conn, status, body, content_type,
                                      request_id, close)
            if not close:
                conn.busy = False
                self._try_parse(conn)  # a pipelined request may be buffered

        self._post(write)

    def _dispatch(self, conn: _Connection, request: _Request) -> None:
        app = self._app
        start = perf_counter()
        method = request.method
        endpoint = "unmatched"
        counted = [False]
        request_id = (_clean_request_id(request.headers.get("x-request-id"))
                      or _metrics.new_trace_id())

        def record(status: int) -> None:
            if counted[0]:
                return
            counted[0] = True
            _HTTP_TOTAL.labels(method=method, endpoint=endpoint,
                               status=str(status)).inc()
            _HTTP_SECONDS.labels(method=method, endpoint=endpoint).observe(
                perf_counter() - start)

        def reply(status: int, payload: object, close: bool = False) -> None:
            self._respond(conn, request.serial, status, _json_bytes(payload),
                          "application/json", close or not request.keep_alive,
                          request_id)
            record(status)

        def fail(status: int, message: str) -> None:
            # Errors may pre-empt the body read (bad auth, unknown route):
            # close so a keep-alive client's stream cannot desync.
            reply(status, {"error": message, "protocol": PROTOCOL_VERSION},
                  close=True)

        def read_body() -> object:
            if not request.body:
                raise ProtocolError("request requires a JSON body")
            try:
                return json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"request body is not valid JSON: {exc}") from None

        try:
            path, params = _split_target(request.target)
            self._log(f"{conn.addr} - {method} {path}")
            if not app.check_auth(_bearer_token(request.headers)):
                fail(401, "missing or invalid bearer token")
                return
            classified = app.classify(method, path)
            if classified is None:
                fail(404, f"no such endpoint: {method} {path}")
                return
            kind, template, args = classified
            endpoint = template
            if kind == "control":
                result = app.handle_control(method, template, args, params,
                                            read_body, request_id)
                self._respond(conn, request.serial, result.status, result.body,
                              result.content_type,
                              result.close or not request.keep_alive,
                              request_id)
                record(result.status)
            elif kind == "wait":
                outcome = app.wait_begin(args, params, request_id)
                if outcome[0] == "reply":
                    reply(200, outcome[1])
                else:
                    self._park(conn, request, outcome[1], request_id, record)
            else:  # events
                sink = _StreamSink(self, conn, request_id,
                                   float(getattr(app, "stream_send_timeout",
                                                 30.0)))
                try:
                    app.stream_begin(args, params, request_id, sink)
                except Exception:
                    if sink.started:
                        # Mid-stream failure: the head is on the wire, no
                        # error response is possible — just drop the stream.
                        record(200)
                        self._post(lambda: self._teardown(conn))
                        return
                    raise
                record(200)
        except ProtocolError as exc:
            fail(exc.status, str(exc))
        except TrialError as exc:
            message = str(exc)
            fail(404 if message.startswith("unknown") else 409, message)
        except Exception as exc:  # noqa: BLE001 - one bad request must never
            fail(500, f"{type(exc).__name__}: {exc}")  # take the edge down

    # -- parked /wait ----------------------------------------------------- #
    def _park(self, conn: _Connection, request: _Request, parker: object,
              request_id: Optional[str],
              record: Callable[[int], None]) -> None:
        """Hold the response until the job's terminal event or the timeout.

        No thread blocks while parked: the continuation is an event-bus
        callback plus a loop timer, whichever fires first.  The client
        disconnecting cancels both.
        """
        fired = threading.Event()
        serial = request.serial

        def finish(payload_fn: Callable[[], object]) -> None:
            if fired.is_set():
                return
            fired.set()

            def work() -> None:
                try:
                    payload = payload_fn()
                    status = 200
                except TrialError as exc:
                    message = str(exc)
                    status = 404 if message.startswith("unknown") else 409
                    payload = {"error": message, "protocol": PROTOCOL_VERSION}
                except Exception as exc:  # noqa: BLE001
                    status = 500
                    payload = {"error": f"{type(exc).__name__}: {exc}",
                               "protocol": PROTOCOL_VERSION}
                close = status != 200 or not request.keep_alive
                self._respond(conn, serial, status, _json_bytes(payload),
                              "application/json", close, request_id)
                record(status)
                self._run_cleanup(getattr(parker, "cancel", lambda: None))

            self._pool.submit(work)

        timer = self.schedule(
            float(getattr(parker, "timeout_seconds", 10.0)),
            lambda: finish(parker.timeout_payload))

        def on_teardown() -> None:
            fired.set()
            self.cancel_timer(timer)
            self._run_cleanup(getattr(parker, "cancel", lambda: None))

        self._attach_cleanup(conn, on_teardown)
        # Registered last: an already-terminal job fires synchronously here.
        parker.register(lambda: finish(parker.terminal_payload))

    # -- teardown --------------------------------------------------------- #
    def _teardown(self, conn: _Connection) -> None:
        if not conn.alive:
            return
        conn.alive = False
        self._conns.discard(conn)
        with self._dirty_lock:
            self._dirty.discard(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        _CONN_CHILDREN[conn.kind].dec()
        if conn.stream is not None:
            state = conn.stream._state
            if state.heartbeat_timer is not None:
                self.cancel_timer(state.heartbeat_timer)
            conn.stream._mark_dead()
        cleanups, conn.cleanups = conn.cleanups, []
        for cleanup in cleanups:
            self._run_cleanup(cleanup)
