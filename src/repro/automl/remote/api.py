"""The versioned JSON wire schema of the remote tune service.

Everything that crosses the network is defined here, shared by the server
(:mod:`repro.automl.remote.http_server`) and the SDK client
(:mod:`repro.automl.remote.client`):

* **Code references.**  Only *state* crosses the wire, never code: search
  spaces, objectives, algorithms and pruners travel as ``module:attr``
  references (the convention the CLI ``resume`` command established) and are
  imported server-side by :func:`load_ref`.
* **Requests.**  :func:`parse_submit` / :func:`parse_resume` validate a
  submit/resume body and resolve it into the keyword arguments of
  :meth:`~repro.automl.server.AntTuneServer.submit` /
  :meth:`~repro.automl.server.AntTuneServer.resume` — including
  ``priority``, ``preempt`` and a client-supplied ``seed``.
* **Events.**  The event stream serialises with
  :func:`repro.automl.events.event_to_wire` and reconstructs with
  :func:`~repro.automl.events.event_from_wire`; one event per NDJSON line,
  each carrying its per-job monotonic ``seq`` so a client can resume a
  dropped stream with ``last_seq``.
* **Errors.**  :class:`ProtocolError` carries the HTTP status a malformed or
  unauthorised request maps to; the server converts it to a JSON error body
  instead of crashing the connection handler.

``PROTOCOL_VERSION`` names the schema generation.  A server rejects requests
that declare a *newer* protocol than it speaks; requests without a version
field are treated as current (curl-friendliness beats strictness here).

Error taxonomy
--------------

Every failure a request can hit maps to exactly one of these classes, and
each class to one HTTP status range:

* **Schema violations** — malformed body, unknown config keys, bad
  reference strings, protocol mismatch: :class:`ProtocolError`, answered
  ``400`` (or the status the error carries: ``413`` oversized body,
  ``401``-style statuses come from the auth layer, not from here).
* **Unknown resources** — a job id or study name the server has never seen
  (including after a restart *without* ``--recover``):
  :class:`~repro.exceptions.TrialError` whose message starts with
  ``unknown``, answered ``404``.
* **Conflicts** — a valid request the current state refuses, e.g. a submit
  reusing an active study name: any other
  :class:`~repro.exceptions.TrialError`, answered ``409``.
* **Server faults** — anything else, answered ``500``; the handler thread
  survives and the JSON error body carries the exception class and message.

Code references double as the **crash-recovery contract**: because
submit/resume bodies name code rather than shipping it, the server can
persist the raw reference strings in its durable event log
(``refs`` in the parsed kwargs) and re-import them on
:meth:`~repro.automl.server.AntTuneServer.recover` to auto-resume jobs a
crash interrupted.
"""

from __future__ import annotations

import importlib
from dataclasses import fields as dataclass_fields
from typing import Callable, Dict, Optional

from repro.automl.study import StudyConfig
from repro.automl.trial import Trial, TrialState

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "load_ref",
    "instantiate_ref",
    "parse_config",
    "parse_submit",
    "parse_resume",
    "trial_from_record",
]

#: Wire-schema generation; bump on incompatible changes to request/response
#: shapes or the event serialisation.
PROTOCOL_VERSION = 1

_CONFIG_FIELDS = {f.name for f in dataclass_fields(StudyConfig)}


class ProtocolError(ValueError):
    """A request that violates the wire schema (maps to a 4xx response).

    Attributes:
        status: the HTTP status code the server answers with (default 400).
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


def load_ref(spec: object, kind: str = "object") -> object:
    """Import a ``module:attr`` code reference (e.g. ``mypkg.search:SPACE``).

    Args:
        spec: the reference string from the request body.
        kind: what the reference names, for error messages.

    Returns:
        The imported attribute.

    Raises:
        ProtocolError: malformed spec, unimportable module, missing attribute.
    """
    if not isinstance(spec, str):
        raise ProtocolError(
            f"{kind} reference must be a 'module:attr' string, "
            f"got {type(spec).__name__}")
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ProtocolError(
            f"{kind} reference must look like 'module:attr', got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ProtocolError(
            f"cannot import {kind} module {module_name!r}: {exc}") from None
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ProtocolError(
            f"{kind} module {module_name!r} has no attribute {attr!r}") from None


def _instantiate(obj: object) -> object:
    """A referenced class/factory becomes an instance; instances pass through."""
    if isinstance(obj, type) or (callable(obj) and not hasattr(obj, "ask")
                                 and not hasattr(obj, "should_prune")):
        return obj()
    return obj


def instantiate_ref(spec: object, kind: str = "object") -> object:
    """Import a ``module:attr`` reference and instantiate it if needed.

    The composition the request parsers (and crash recovery's auto-resume)
    use: :func:`load_ref` resolves the reference, then a referenced class or
    zero-argument factory is called to produce the instance, while an
    already-constructed instance (a module-level ``SPACE``, a configured
    algorithm object) passes through untouched.

    Args:
        spec: the ``module:attr`` reference string.
        kind: what the reference names, for error messages.

    Returns:
        The imported (and, when applicable, constructed) object.

    Raises:
        ProtocolError: malformed/unimportable reference.
    """
    return _instantiate(load_ref(spec, kind))


def parse_config(payload: object) -> Optional[StudyConfig]:
    """Validate a request's ``config`` dict into a :class:`StudyConfig`.

    Args:
        payload: the ``config`` value of a submit body (None passes through).

    Returns:
        The constructed config, or None when the request carried none.

    Raises:
        ProtocolError: non-dict payload, unknown keys, or values the
            dataclass rejects.
    """
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"config must be an object, got {type(payload).__name__}")
    unknown = set(payload) - _CONFIG_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown config keys {sorted(unknown)}; "
            f"expected a subset of {sorted(_CONFIG_FIELDS)}")
    try:
        return StudyConfig(**payload)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid config: {exc}") from None


def _check_version(body: Dict[str, object]) -> None:
    version = body.get("protocol", PROTOCOL_VERSION)
    if not isinstance(version, int) or version < 1:
        raise ProtocolError(f"invalid protocol version {version!r}")
    if version > PROTOCOL_VERSION:
        raise ProtocolError(
            f"request speaks protocol {version}, this server speaks "
            f"{PROTOCOL_VERSION}", status=400)


def _common_kwargs(body: Dict[str, object]) -> Dict[str, object]:
    """The submit/resume keywords shared by both request shapes."""
    kwargs: Dict[str, object] = {}
    priority = body.get("priority", 1.0)
    if not isinstance(priority, (int, float)) or isinstance(priority, bool) \
            or priority <= 0:
        raise ProtocolError(f"priority must be a positive number, "
                            f"got {priority!r}")
    kwargs["priority"] = float(priority)
    preempt = body.get("preempt", False)
    if not isinstance(preempt, bool):
        raise ProtocolError(f"preempt must be a boolean, got {preempt!r}")
    kwargs["preempt"] = preempt
    if body.get("algorithm") is not None:
        kwargs["algorithm"] = _instantiate(
            load_ref(body["algorithm"], "algorithm"))
    if body.get("pruner") is not None:
        kwargs["pruner"] = _instantiate(load_ref(body["pruner"], "pruner"))
    return kwargs


def _collect_refs(body: Dict[str, object]) -> Dict[str, str]:
    """The raw reference strings of a request, for durable persistence.

    The server records these in its event log (``TuneJob.refs``) so
    :meth:`~repro.automl.server.AntTuneServer.recover` can re-import the
    job's code and auto-resume it after a crash — the one thing an
    in-process submit with bare callables cannot offer.
    """
    return {key: body[key]
            for key in ("space", "objective", "algorithm", "pruner")
            if isinstance(body.get(key), str)}


def _require_body(body: object) -> Dict[str, object]:
    if not isinstance(body, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(body).__name__}")
    _check_version(body)
    return body


def parse_submit(body: object) -> Dict[str, object]:
    """Validate a submit request body into ``AntTuneServer.submit`` kwargs.

    Required keys: ``space`` and ``objective`` (``module:attr`` references).
    Optional: ``algorithm``/``pruner`` references, ``config`` dict, ``seed``
    (int — the study RNG; without it the server derives one from the job id),
    ``study_name``, ``priority``, ``preempt``, ``protocol``.

    Args:
        body: the decoded JSON request body.

    Returns:
        Keyword arguments ready for
        :meth:`repro.automl.server.AntTuneServer.submit` (including the
        imported ``space`` and ``objective`` under those keys, and the raw
        reference strings under ``refs`` for durable crash-recovery
        metadata).

    Raises:
        ProtocolError: any schema violation, with the HTTP status to answer.
    """
    body = _require_body(body)
    for key in ("space", "objective"):
        if key not in body:
            raise ProtocolError(f"missing required key {key!r}")
    kwargs = _common_kwargs(body)
    kwargs["space"] = load_ref(body["space"], "space")
    kwargs["objective"] = load_ref(body["objective"], "objective")
    if not callable(kwargs["objective"]):
        raise ProtocolError("objective reference must name a callable")
    kwargs["config"] = parse_config(body.get("config"))
    seed = body.get("seed")
    if seed is not None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(f"seed must be an integer, got {seed!r}")
        kwargs["seed"] = seed
    study_name = body.get("study_name")
    if study_name is not None:
        if not isinstance(study_name, str) or not study_name:
            raise ProtocolError("study_name must be a non-empty string")
        kwargs["study_name"] = study_name
    kwargs["refs"] = _collect_refs(body)
    return kwargs


def parse_resume(body: object) -> Dict[str, object]:
    """Validate a resume request body into ``AntTuneServer.resume`` kwargs.

    Required keys: ``study_name`` plus the ``space`` and ``objective``
    references (code is never persisted, so the continuation must name it).
    Optional: ``algorithm``/``pruner`` references, ``priority``, ``preempt``.

    Raises:
        ProtocolError: any schema violation.
    """
    body = _require_body(body)
    for key in ("study_name", "space", "objective"):
        if key not in body:
            raise ProtocolError(f"missing required key {key!r}")
    study_name = body["study_name"]
    if not isinstance(study_name, str) or not study_name:
        raise ProtocolError("study_name must be a non-empty string")
    kwargs = _common_kwargs(body)
    kwargs["study_name"] = study_name
    kwargs["space"] = load_ref(body["space"], "space")
    kwargs["objective"] = load_ref(body["objective"], "objective")
    if not callable(kwargs["objective"]):
        raise ProtocolError("objective reference must name a callable")
    kwargs["refs"] = _collect_refs(body)
    return kwargs


def trial_from_record(record: Dict[str, object]) -> Trial:
    """Rebuild a client-side :class:`Trial` from its wire record.

    The record is a :meth:`~repro.automl.trial.Trial.as_record` snapshot (the
    same shape storage persists); the reconstructed trial carries the params,
    terminal state, value and intermediate values, so SDK code written
    against the in-process API (``best.params``, ``best.value``) works
    unchanged against a remote server.

    Raises:
        ProtocolError: a record missing required fields or with an unknown
            state.
    """
    if not isinstance(record, dict):
        raise ProtocolError(
            f"trial record must be an object, got {type(record).__name__}")
    try:
        trial = Trial(trial_id=int(record["trial_id"]),
                      params=dict(record["params"]),
                      state=TrialState(record["state"]),
                      value=(None if record.get("value") is None
                             else float(record["value"])),
                      duration_seconds=float(record.get("duration_seconds", 0.0)),
                      error=record.get("error"),
                      worker=record.get("worker"))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed trial record: {exc}") from None
    trial.intermediate_values = [
        float(v) for v in record.get("intermediate_values", [])]
    return trial


# Type alias used by the HTTP layer for its auth hook.
AuthCheck = Callable[[Optional[str]], bool]
