"""The SDK-side client of the remote tune service.

:class:`AntTuneClient` mirrors the in-process API
(:class:`repro.automl.server.AntTuneClient`) over HTTP/JSON: ``submit`` /
``poll`` / ``wait`` / ``cancel`` / ``subscribe`` keep their shapes, with two
wire-imposed differences:

* search spaces, objectives, algorithms and pruners travel as
  ``module:attr`` code references (strings) — the server imports them; code
  itself never crosses the wire;
* ``subscribe`` returns an *iterator of reconstructed typed events*
  (:mod:`repro.automl.events` classes, rebuilt from the NDJSON stream), and
  transparently reconnects with ``last_seq`` replay when the connection
  drops mid-stream — the caller sees one gapless, duplicate-free feed ending
  with the job's terminal ``JobStateChanged``.

Retry semantics
---------------

The client distinguishes two failure classes and treats them differently:

* **Connection-level failures** (refused, DNS, socket timeout, reset
  mid-stream) raise the internal ``_ServerUnreachable`` — these are
  *retryable*: the server may be restarting, the network blipping.
  ``subscribe`` reconnects with the highest ``seq`` it already yielded and
  backs off with full-jitter exponential delays (uniform below a ceiling
  that doubles per attempt, capped at 5s) so a fleet of streaming clients
  does not reconnect in lockstep against a restarting server.  Attempts that
  deliver **no new event** count against ``max_stream_retries``; any
  progress resets the counter, so a long-lived stream survives any number
  of blips while a genuinely dead server fails fast.
* **HTTP error responses** (unknown job 404, bad auth 401, conflict 409,
  schema rejection 400) are *permanent*: reconnecting cannot change the
  answer, so they raise immediately —
  :class:`~repro.exceptions.TrialError` (or :class:`ValueError` for 400)
  with the server's message.

Because the server journals every event durably and recovers on restart
(``serve --recover``), a ``subscribe`` that spans a server **crash** keeps
working: the reconnect lands on the restarted process, the ``last_seq``
backfill is served from the on-disk event log, and the stream continues —
the restart shows up as at most a pause, never a gap.  Pass a larger
``max_stream_retries`` (or rely on progress resets) when restarts are
expected to take longer than the default retry budget.

Only the Python stdlib (``urllib``) is used.
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Union

from repro.automl.events import Event, JobStateChanged, event_from_wire
from repro.automl.remote.api import PROTOCOL_VERSION, trial_from_record
from repro.automl.study import StudyConfig
from repro.automl.trial import Trial
from repro.exceptions import TrialError

__all__ = ["AntTuneClient", "RemoteTuneClient"]

# Socket-level read timeout on event streams; the server heartbeats every
# few seconds, so a silent stream this long means the connection is dead.
_STREAM_READ_TIMEOUT = 30.0


def _reconnect_delay(attempt: int, base: float = 0.1,
                     cap: float = 5.0) -> float:
    """Full-jitter exponential backoff: uniform over [0, min(cap, base*2^n)].

    Every streaming client of a restarting server reconnects at once; a
    fixed (or even deterministic exponential) sleep keeps them synchronised
    into a thundering herd that hammers the same instants.  Full jitter
    (AWS-style) decorrelates them: the *ceiling* grows exponentially with
    the attempt number, the actual sleep is drawn uniformly below it.

    Args:
        attempt: 0-based consecutive failure count.
        base: ceiling of the first attempt's sleep.
        cap: upper bound on the ceiling however many attempts failed.

    Returns:
        Seconds to sleep before the next attempt.
    """
    ceiling = min(cap, base * (2 ** max(0, attempt)))
    return random.uniform(0.0, ceiling)


class _ServerUnreachable(TrialError):
    """A connection-level failure (refused, DNS, timeout) — retryable.

    Distinct from a TrialError built from an HTTP error *response* (unknown
    job, bad auth, conflict), which is permanent: reconnecting can never
    change the answer, so ``subscribe`` re-raises those immediately and
    retries only this class.
    """


class AntTuneClient:
    """Talk to a :class:`~repro.automl.remote.http_server.RemoteTuneServer`.

    Args:
        base_url: the server's base URL (e.g. ``http://127.0.0.1:8123``).
        token: bearer token, when the server requires one.
        timeout: per-request socket timeout in seconds.
        max_stream_retries: reconnect attempts an event stream survives
            *without receiving a single new event* before giving up.
    """

    def __init__(self, base_url: str, token: Optional[str] = None,
                 timeout: float = 30.0, max_stream_retries: int = 5) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = float(timeout)
        self.max_stream_retries = int(max_stream_retries)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None,
                 timeout: Optional[float] = None,
                 request_id: Optional[str] = None) -> Dict[str, object]:
        raw = self._request_raw(method, path, payload=payload,
                                timeout=timeout, request_id=request_id)
        return json.loads(raw.decode("utf-8"))

    def _request_raw(self, method: str, path: str,
                     payload: Optional[Dict[str, object]] = None,
                     timeout: Optional[float] = None,
                     request_id: Optional[str] = None) -> bytes:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers=self._headers(json_body=body is not None,
                                  request_id=request_id))
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None
        except urllib.error.URLError as exc:
            raise _ServerUnreachable(
                f"cannot reach tune server at {self.base_url}: "
                f"{exc.reason}") from None

    def _headers(self, json_body: bool = False,
                 request_id: Optional[str] = None) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if json_body:
            headers["Content-Type"] = "application/json"
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if request_id is not None:
            headers["X-Request-Id"] = str(request_id)
        return headers

    @staticmethod
    def _to_error(exc: urllib.error.HTTPError) -> Exception:
        try:
            message = json.loads(exc.read().decode("utf-8"))["error"]
        except Exception:  # noqa: BLE001 - non-JSON error body
            message = f"HTTP {exc.code}"
        if exc.code == 400:
            return ValueError(message)
        return TrialError(f"tune server refused the request "
                          f"({exc.code}): {message}")

    # ------------------------------------------------------------------ #
    # Mirrored API
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        """Liveness probe: ``{"ok": true, "protocol": N}``."""
        return self._request("GET", "/v1/health")

    def server_status(self) -> Dict[str, object]:
        """Server-wide snapshot (pool sizing, job counts, backpressure).

        Includes the structured ``metrics`` section — the server's full
        registry snapshot; :meth:`metrics` fetches the same data in
        Prometheus text form instead.
        """
        return self._request("GET", "/v1/status")

    def metrics(self) -> str:
        """The server's ``/v1/metrics`` Prometheus text exposition, verbatim.

        One ``# HELP``/``# TYPE``-annotated block per metric family; feed it
        to a Prometheus scraper or parse the lines directly (see
        ``docs/observability.md`` for the catalog).
        """
        return self._request_raw("GET", "/v1/metrics").decode("utf-8")

    def submit(self, space: str, objective: str, *,
               algorithm: Optional[str] = None, pruner: Optional[str] = None,
               config: Union[None, StudyConfig, Dict[str, object]] = None,
               seed: Optional[int] = None, study_name: Optional[str] = None,
               priority: float = 1.0, preempt: bool = False,
               request_id: Optional[str] = None) -> int:
        """Enqueue a job on the remote server and return its id.

        Mirrors :meth:`AntTuneServer.submit
        <repro.automl.server.AntTuneServer.submit>`, except code travels as
        references: ``space``/``objective`` (and the optional
        ``algorithm``/``pruner``) are ``module:attr`` strings the *server*
        imports.

        Args:
            space: ``module:attr`` reference to the :class:`SearchSpace`.
            objective: ``module:attr`` reference to the objective callable.
            algorithm: optional reference to an algorithm instance/factory.
            pruner: optional reference to a pruner instance/factory.
            config: a :class:`StudyConfig` (serialised for the wire) or a
                plain dict of its fields.
            seed: study RNG seed; without it the server derives one from the
                job id.
            study_name: storage name (must be unique among active jobs).
            priority: fair-share weight (> 0).
            preempt: claim the fair share immediately on start.
            request_id: sent as ``X-Request-Id`` and adopted by the server
                as the job's trace id — every event the job publishes then
                carries it; the server generates one when omitted.

        Returns:
            The new job's id.

        Raises:
            ValueError: the server rejected the request shape (400).
            TrialError: conflicts (duplicate study name), auth failures, or
                an unreachable server.
        """
        body = self._job_body(space, objective, algorithm=algorithm,
                              pruner=pruner, priority=priority,
                              preempt=preempt)
        if config is not None:
            body["config"] = (dataclasses.asdict(config)
                              if isinstance(config, StudyConfig)
                              else dict(config))
        if seed is not None:
            body["seed"] = int(seed)
        if study_name is not None:
            body["study_name"] = study_name
        result = self._request("POST", "/v1/jobs", body,
                               request_id=request_id)
        return int(result["job_id"])

    def resume(self, study_name: str, space: str, objective: str, *,
               algorithm: Optional[str] = None, pruner: Optional[str] = None,
               priority: float = 1.0, preempt: bool = False,
               request_id: Optional[str] = None) -> int:
        """Resume a stored study on the remote server; returns the new job id.

        Mirrors :meth:`AntTuneServer.resume
        <repro.automl.server.AntTuneServer.resume>`; the server must have
        storage attached and know ``study_name``.  ``request_id`` becomes
        the resumed job's trace id (see :meth:`submit`).
        """
        body = self._job_body(space, objective, algorithm=algorithm,
                              pruner=pruner, priority=priority,
                              preempt=preempt)
        body["study_name"] = study_name
        result = self._request("POST", "/v1/resume", body,
                               request_id=request_id)
        return int(result["job_id"])

    def _job_body(self, space: str, objective: str, *,
                  algorithm: Optional[str], pruner: Optional[str],
                  priority: float, preempt: bool) -> Dict[str, object]:
        for label, ref in (("space", space), ("objective", objective)):
            if not isinstance(ref, str):
                raise ValueError(
                    f"{label} must be a 'module:attr' reference string; the "
                    f"remote API ships references, not code — got "
                    f"{type(ref).__name__}")
        body: Dict[str, object] = {
            "protocol": PROTOCOL_VERSION, "space": space,
            "objective": objective, "priority": float(priority),
            "preempt": bool(preempt),
        }
        if algorithm is not None:
            body["algorithm"] = algorithm
        if pruner is not None:
            body["pruner"] = pruner
        return body

    def poll(self, job_id: int) -> Dict[str, object]:
        """Non-blocking status snapshot (see ``AntTuneServer.status``)."""
        return self._request("GET", f"/v1/jobs/{int(job_id)}")

    status = poll

    def jobs(self) -> List[Dict[str, object]]:
        """Status snapshots of every job on the server, oldest first."""
        return list(self._request("GET", "/v1/jobs")["jobs"])

    def cancel(self, job_id: int) -> bool:
        """Cancel a queued or running job (mirrors ``AntTuneServer.cancel``)."""
        return bool(self._request(
            "POST", f"/v1/jobs/{int(job_id)}/cancel", {})["cancelled"])

    def wait(self, job_id: int, timeout: Optional[float] = None) -> Trial:
        """Block until the job finishes; return its best trial.

        The server bounds each request's block, so this loops until ``timeout``
        (None = forever).  Raises mirror the in-process ``wait``:

        Raises:
            TrialError: the job failed, was cancelled, timed out, or finished
                without any successful trial.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            chunk = 10.0 if deadline is None else max(
                0.0, min(10.0, deadline - time.monotonic()))
            result = self._request(
                "GET", f"/v1/jobs/{int(job_id)}/wait?timeout={chunk}",
                timeout=chunk + self.timeout)
            if result["done"]:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TrialError(
                    f"job {job_id} still running after {timeout}s")
        if result.get("best") is None:
            state, error = result.get("state"), result.get("error")
            if state == "cancelled":
                raise TrialError(f"job {job_id} was cancelled")
            raise TrialError(f"job {job_id}: {error or state}")
        return trial_from_record(result["best"])

    # ------------------------------------------------------------------ #
    # Event streaming
    # ------------------------------------------------------------------ #
    def subscribe(self, job_id: int, last_seq: int = -1,
                  max_queue: int = 1024) -> Iterator[Event]:
        """Follow one job's ordered event stream as reconstructed typed events.

        Yields :mod:`repro.automl.events` instances in per-job ``seq`` order,
        starting after ``last_seq`` (backfilled from the server's durable
        event log, then its live stream) and ending with the terminal
        :class:`~repro.automl.events.JobStateChanged`.  A dropped connection
        reconnects transparently, resuming from the highest ``seq`` already
        yielded — no duplicates, no gaps, even when the *server process
        itself* was killed and restarted in between (the replay then comes
        off disk; see the module docs for the retry budget).

        Args:
            job_id: the job to follow.
            last_seq: resume point; -1 streams from the beginning.
            max_queue: per-connection server-side queue bound (drop-oldest).

        Yields:
            Typed events.

        Raises:
            TrialError: unknown job, or the stream died and reconnection
                kept failing without progress.
        """
        retries = 0
        while True:
            made_progress = False
            try:
                response = self._open_stream(job_id, last_seq, max_queue)
            except _ServerUnreachable:
                # Connection-level failure: the server may come back.
                if retries >= self.max_stream_retries:
                    raise
                retries += 1
                time.sleep(_reconnect_delay(retries - 1))
                continue
            # An HTTP error *response* (unknown job, bad auth, rejected
            # parameters) is permanent — _open_stream raised it already and
            # it propagates: retrying cannot change the answer.
            failure: Optional[BaseException] = None
            try:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue  # heartbeat
                    event = event_from_wire(json.loads(line.decode("utf-8")))
                    if event.seq <= last_seq:
                        continue  # replay overlap after a reconnect
                    last_seq = event.seq
                    made_progress = True
                    retries = 0
                    yield event
                    if isinstance(event, JobStateChanged) and event.terminal:
                        return
            except (OSError, ValueError) as exc:
                # Connection died mid-stream (socket timeout, reset, or a
                # line torn mid-JSON): reconnect and replay from last_seq.
                failure = exc
            finally:
                response.close()
            # Reconnect: either the connection failed, or the server closed
            # the stream without a terminal event (shed queue tail, handler
            # error).  Repeated attempts that deliver nothing new give up.
            if not made_progress:
                retries += 1
                if retries > self.max_stream_retries:
                    raise TrialError(
                        f"event stream for job {job_id} kept failing "
                        f"without progress" +
                        (f": {failure}" if failure else "")) from None
            # Jittered backoff here too: a stream that made progress
            # reconnects almost immediately (attempt 0), while repeated
            # no-progress attempts spread the herd out exponentially.
            time.sleep(_reconnect_delay(0 if made_progress else retries - 1))

    def _open_stream(self, job_id: int, last_seq: int, max_queue: int):
        """One streaming connection (split out so tests can inject failures)."""
        request = urllib.request.Request(
            self.base_url + f"/v1/jobs/{int(job_id)}/events"
            f"?last_seq={int(last_seq)}&max_queue={int(max_queue)}",
            headers=self._headers())
        try:
            return urllib.request.urlopen(request,
                                          timeout=_STREAM_READ_TIMEOUT)
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None
        except urllib.error.URLError as exc:
            raise _ServerUnreachable(
                f"cannot reach tune server at {self.base_url}: "
                f"{exc.reason}") from None

    def tune(self, space: str, objective: str, **kwargs: object) -> Trial:
        """Submit a job, wait for it and return the best trial (convenience)."""
        return self.wait(self.submit(space, objective, **kwargs))  # type: ignore[arg-type]


# The in-process SDK class is also named AntTuneClient; this alias lets code
# hold both without renaming imports.
RemoteTuneClient = AntTuneClient
