"""Remote tune service: HTTP/JSON wire layer over :class:`AntTuneServer`.

The event-driven control plane (PR 4) publishes every job's lifecycle as one
ordered stream; this package puts that substrate on the network:

* :mod:`repro.automl.remote.api` — the versioned JSON wire schema: request
  validation, event serialisation (via :func:`repro.automl.events.event_to_wire`),
  ``module:attr`` code references and typed protocol errors.
* :mod:`repro.automl.remote.http_server` — :class:`RemoteTuneServer`, a
  stdlib-only threaded HTTP server wrapping an in-process
  :class:`~repro.automl.server.AntTuneServer`: submit/resume/status/wait/
  cancel/list endpoints plus a resumable NDJSON event stream per job.
* :mod:`repro.automl.remote.client` — :class:`AntTuneClient`, the SDK-side
  mirror of the in-process API (``submit``/``poll``/``wait``/``cancel``/
  ``subscribe``) speaking the wire schema, with reconnect-and-replay on
  dropped event streams.
"""

from repro.automl.remote.api import (
    PROTOCOL_VERSION,
    ProtocolError,
    load_ref,
    parse_config,
    parse_submit,
    trial_from_record,
)
from repro.automl.remote.client import AntTuneClient, RemoteTuneClient
from repro.automl.remote.http_server import RemoteTuneServer

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "load_ref",
    "parse_config",
    "parse_submit",
    "trial_from_record",
    "AntTuneClient",
    "RemoteTuneClient",
    "RemoteTuneServer",
]
