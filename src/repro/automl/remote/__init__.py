"""Remote tune service: HTTP/JSON wire layer over :class:`AntTuneServer`.

The event-driven control plane (PR 4) publishes every job's lifecycle as one
ordered stream; this package puts that substrate on the network:

* :mod:`repro.automl.remote.api` — the versioned JSON wire schema: request
  validation, event serialisation (via :func:`repro.automl.events.event_to_wire`),
  ``module:attr`` code references and typed protocol errors.
* :mod:`repro.automl.remote.http_server` — :class:`RemoteTuneServer`, a
  stdlib-only threaded HTTP server wrapping an in-process
  :class:`~repro.automl.server.AntTuneServer`: submit/resume/status/wait/
  cancel/list endpoints plus a resumable NDJSON event stream per job.
* :mod:`repro.automl.remote.client` — :class:`AntTuneClient`, the SDK-side
  mirror of the in-process API (``submit``/``poll``/``wait``/``cancel``/
  ``subscribe``) speaking the wire schema, with reconnect-and-replay on
  dropped event streams.

The fleet tier (PR 8) scales one server out to many:

* :mod:`repro.automl.remote.router` — :class:`TuneRouter` /
  :class:`RemoteRouterServer`, a front tier fanning submits across backends
  by consistent hashing (:class:`HashRing`), journalling each job's stream
  gaplessly and migrating jobs off dead backends under the original job and
  trace ids.
* :mod:`repro.automl.remote.tickets` — :class:`TicketTrialExecutor`
  (``backend="ticket"``), a trial board leasing work to remote agents with
  heartbeats and deadlines; a lost lease requeues the config uncharged.
* :mod:`repro.automl.remote.worker` — :class:`TuneWorker`, the pull-based
  agent claiming tickets over HTTP and streaming reports back.
"""

from repro.automl.remote.api import (
    PROTOCOL_VERSION,
    ProtocolError,
    load_ref,
    parse_config,
    parse_submit,
    trial_from_record,
)
from repro.automl.remote.client import AntTuneClient, RemoteTuneClient
from repro.automl.remote.http_server import RemoteTuneServer
from repro.automl.remote.router import (
    HashRing,
    RemoteRouterServer,
    TuneRouter,
)
from repro.automl.remote.tickets import TicketTrialExecutor
from repro.automl.remote.worker import TuneWorker

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "load_ref",
    "parse_config",
    "parse_submit",
    "trial_from_record",
    "AntTuneClient",
    "RemoteTuneClient",
    "RemoteTuneServer",
    "HashRing",
    "RemoteRouterServer",
    "TuneRouter",
    "TicketTrialExecutor",
    "TuneWorker",
]
