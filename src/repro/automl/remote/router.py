"""The fleet front tier: one router, many backend tune servers.

A single :class:`~repro.automl.remote.http_server.RemoteTuneServer` is one
process with one worker pool.  :class:`TuneRouter` (and its HTTP wrapper
:class:`RemoteRouterServer`) scales that out: clients speak the exact same
``/v1`` protocol to the router, which

* **places** every ``submit``/``resume`` on a backend by consistent hashing
  on the study name (:class:`HashRing`), falling back to the least-loaded
  healthy backend (by ``server_status()`` job counts) when the ring's pick
  is down — so the same study keeps landing on the same backend across
  router restarts, and a dead backend never blackholes new work;
* **relays** each job's event stream through a per-job journal: every
  backend event is re-stamped with the router's own job id, a dense router
  ``seq`` and the original trace id, so the stream a client observes is
  gapless by construction even across a backend restart (where backend seqs
  may rewind) or a migration (where the backend itself changes);
* **migrates** non-terminal jobs off a dead backend: the original submit
  body is resubmitted — same study name, same trace id, same router job id —
  to a surviving backend, and the new stream is appended to the same
  journal.  A backend that merely restarted (``serve --recover``) is
  reattached instead, riding the SDK's ``last_seq`` replay off the durable
  event log;
* **aggregates** ``jobs``/``status`` across its own job table and
  ``metrics`` across every backend (each backend's exposition is prefixed
  with a ``# backend <url>`` comment).

Split-brain discipline: each (re)attachment of a job to a backend bumps the
job's *incarnation*.  A relay that learns it is stale — because the health
monitor migrated the job away while its backend was frozen — discards
everything it reads, so a backend that wakes from a partition cannot corrupt
the journal.  Resume jobs are pinned to the backend that holds their study
storage: the router reattaches when it returns but never re-runs them
elsewhere (the runbook answer is ``serve --recover`` on that backend).

Only the stdlib is used, like everywhere else in the remote layer.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import os
import threading
import uuid
from time import monotonic
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.automl import metrics as _metrics
from repro.automl.events import JobStateChanged, event_from_wire, event_to_wire
from repro.automl.remote.api import PROTOCOL_VERSION, ProtocolError
from repro.automl.remote.client import AntTuneClient, _ServerUnreachable
from repro.automl.remote import http_server as _http
from repro.automl.remote.edge import (
    AsyncHTTPEdge,
    Reply,
    _float_param,
    _int_param,
    _job_id_segment,
    _json_bytes,
    json_reply,
)
from repro.exceptions import TrialError

__all__ = ["HashRing", "TuneRouter", "RemoteRouterServer"]

_ROUTER_JOBS = _metrics.REGISTRY.counter(
    "anttune_router_jobs_total",
    "Jobs placed through the router, by backend URL.",
    labels=("backend",))
_ROUTER_MIGRATIONS = _metrics.REGISTRY.counter(
    "anttune_router_migrations_total",
    "Jobs migrated off a dead backend (resubmitted elsewhere).")
_ROUTER_REATTACHES = _metrics.REGISTRY.counter(
    "anttune_router_reattaches_total",
    "Job streams reattached to a backend that came back (restart/partition).")
_BACKEND_DOWN = _metrics.REGISTRY.counter(
    "anttune_router_backend_down_total",
    "Times a backend was marked unhealthy by the router's health monitor.",
    labels=("backend",))


class HashRing:
    """Consistent-hash ring over backend URLs (or any string node ids).

    Each node is placed at ``replicas`` pseudo-random points (md5 of
    ``"{node}#{i}"``); a key maps to the first node clockwise from the key's
    own hash point.  Adding or removing one node therefore remaps only the
    arc segments that node owned — roughly ``1/n`` of the key space — while
    every other key keeps its assignment; ``replicas`` smooths the per-node
    share (the fleet tests bound the imbalance).

    Args:
        nodes: initial node ids.
        replicas: virtual points per node (>= 1).
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []  # sorted (hash, node)
        self._nodes: Set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        # md5 for dispersion, not security: stable across processes and
        # Python versions (unlike hash()), cheap, and 64 bits is plenty.
        return int.from_bytes(
            hashlib.md5(key.encode("utf-8")).digest()[:8], "big")

    def add(self, node: str) -> None:
        """Insert ``node`` (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            bisect.insort(self._points, (self._hash(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        """Remove ``node`` (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]

    def lookup(self, key: str) -> Optional[str]:
        """The node owning ``key``; None for an empty ring."""
        if not self._points:
            return None
        # ("",) sorts below any node id, so bisect_left lands on the first
        # point with hash >= the key's point; wrap at the end of the ring.
        index = bisect.bisect_left(self._points, (self._hash(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    @property
    def nodes(self) -> Set[str]:
        """A snapshot of the current node ids."""
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes


class _Backend:
    """One backend tune server as the router sees it."""

    def __init__(self, url: str, client: AntTuneClient) -> None:
        self.url = url
        self.client = client
        self.healthy = True
        self.fails = 0  # consecutive failed health probes


class _RouterJob:
    """The router's authoritative record of one placed job.

    ``journal`` holds re-stamped wire events where index == router seq, so
    replay is a slice and gaplessness is structural; ``journal_bytes`` is
    the same journal pre-serialised to NDJSON lines, shared by every
    streaming connection (serialize once, fan out N times).  ``listeners``
    are the async edge's per-connection push callbacks, invoked under
    ``cond`` at append time.  ``incarnation`` counts (re)attachments to a
    backend; a relay thread carries the incarnation it was started under
    and discards everything once the numbers diverge.
    """

    def __init__(self, job_id: int, study_name: str, trace_id: str,
                 kind: str, body: Dict[str, object], backend_url: str,
                 backend_job_id: int) -> None:
        self.job_id = job_id
        self.study_name = study_name
        self.trace_id = trace_id
        self.kind = kind  # "submit" | "resume"
        self.body = body  # the original wire body, for migration resubmits
        self.backend_url = backend_url
        self.backend_job_id = backend_job_id
        self.cond = threading.Condition()
        self.journal: List[Dict[str, object]] = []
        self.journal_bytes: List[bytes] = []
        self.listeners: List[Callable[[bytes, int, bool], None]] = []
        self.state = "queued"
        self.error: Optional[str] = None
        self.terminal = False
        self.incarnation = 0
        self.migrations = 0
        self.relay_alive = False
        self.migrating = False
        # Highest backend-side seq relayed for the *current* incarnation:
        # the reattach resume point after a backend restart.
        self.backend_last_seq = -1


class TuneRouter:
    """Fan jobs across backend tune servers; journal and heal their streams.

    Args:
        backends: backend base URLs (e.g. ``["http://a:8123", ...]``).
        token: bearer token forwarded to every backend request.
        replicas: virtual points per backend on the placement ring.
        health_interval: seconds between health sweeps.
        health_timeout: per-probe socket timeout — also the bound on how
            long placement waits on a slow backend's load query.
        unhealthy_after: consecutive probe failures before a backend is
            marked down (and its non-terminal jobs migrate).
        request_timeout: socket timeout for forwarded control requests.

    Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(self, backends: Sequence[str], token: Optional[str] = None,
                 replicas: int = 64, health_interval: float = 0.5,
                 health_timeout: float = 2.0, unhealthy_after: int = 3,
                 request_timeout: float = 30.0) -> None:
        urls = [str(url).rstrip("/") for url in backends]
        if not urls:
            raise ValueError("at least one backend URL is required")
        if len(set(urls)) != len(urls):
            raise ValueError(f"duplicate backend URLs: {urls}")
        self.health_interval = float(health_interval)
        self.health_timeout = float(health_timeout)
        self.unhealthy_after = int(unhealthy_after)
        self._backends: Dict[str, _Backend] = {
            url: _Backend(url, AntTuneClient(url, token=token,
                                             timeout=request_timeout))
            for url in urls}
        self._ring = HashRing(urls, replicas=replicas)
        self._jobs: Dict[int, _RouterJob] = {}
        self._jobs_lock = threading.Lock()
        self._next_job_id = 0
        self._stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "TuneRouter":
        """Start the health monitor thread (idempotent)."""
        if self._health_thread is None:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="anttune-router-health",
                daemon=True)
            self._health_thread.start()
        return self

    def close(self) -> None:
        """Stop the health monitor; relays die with their daemon threads."""
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10.0)
            self._health_thread = None
        # Wake any handler blocked in wait()/events so shutdown is prompt.
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            with job.cond:
                job.cond.notify_all()

    def __enter__(self) -> "TuneRouter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def submit(self, body: Dict[str, object],
               trace_id: Optional[str] = None,
               kind: str = "submit") -> Dict[str, object]:
        """Place one submit/resume body on a backend and start its relay.

        The body is forwarded verbatim (plus an injected ``study_name`` for
        anonymous submits, so a migration can resubmit the *same* study);
        the router never imports the referenced code — backends do.

        Args:
            body: the wire-shape request body.
            trace_id: correlation id; generated when omitted and stamped on
                every journalled event end to end.
            kind: ``"submit"`` (``/v1/jobs``) or ``"resume"``
                (``/v1/resume``).

        Returns:
            ``{"job_id", "trace_id", "backend", "protocol"}`` — the id is
            the *router's*, stable across migrations.

        Raises:
            ProtocolError: malformed body (no backend was contacted).
            ValueError: a backend rejected the request shape (400).
            TrialError: no healthy backend, duplicate study, or the chosen
                backend refused/vanished mid-request.
        """
        if kind not in ("submit", "resume"):
            raise ValueError(f"kind must be 'submit' or 'resume', not {kind!r}")
        body = self._checked_body(body, kind)
        with self._jobs_lock:
            job_id = self._next_job_id
            self._next_job_id += 1
        trace_id = trace_id or _metrics.new_trace_id()
        study_name = body.get("study_name")
        if not isinstance(study_name, str) or not study_name:
            # Name anonymous studies here: placement hashes the name, and a
            # migration must be able to resubmit the *same* study.
            study_name = f"fleet-{job_id}-{uuid.uuid4().hex[:8]}"
            body["study_name"] = study_name
        backend = self._pick_backend(study_name)
        if backend is None:
            raise TrialError("no healthy backend available to place the job")
        path = "/v1/jobs" if kind == "submit" else "/v1/resume"
        answer = backend.client._request("POST", path, body,
                                         request_id=trace_id)
        job = _RouterJob(job_id, study_name, trace_id, kind, body,
                         backend.url, int(answer["job_id"]))
        with self._jobs_lock:
            self._jobs[job_id] = job
        _ROUTER_JOBS.labels(backend=backend.url).inc()
        self._start_relay(job, backend, job.backend_job_id,
                          incarnation=0, last_seq=-1)
        return {"job_id": job_id, "trace_id": trace_id,
                "backend": backend.url, "protocol": PROTOCOL_VERSION}

    @staticmethod
    def _checked_body(body: object, kind: str) -> Dict[str, object]:
        """Light shape validation — never imports the referenced code."""
        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        protocol = body.get("protocol")
        if protocol is not None and protocol != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol {protocol!r} not supported; this router speaks "
                f"{PROTOCOL_VERSION}")
        for key in ("space", "objective"):
            ref = body.get(key)
            if not isinstance(ref, str) or ":" not in ref:
                raise ProtocolError(
                    f"{key!r} must be a 'module:attr' reference string")
        if kind == "resume":
            name = body.get("study_name")
            if not isinstance(name, str) or not name:
                raise ProtocolError("resume requires a 'study_name' string")
        return dict(body)

    def _pick_backend(self, study_name: str,
                      exclude: Iterable[str] = ()) -> Optional[_Backend]:
        """The ring's pick when healthy, else the least-loaded healthy one."""
        excluded = set(exclude)
        healthy = [b for b in self._backends.values()
                   if b.healthy and b.url not in excluded]
        if not healthy:
            return None
        choice = self._ring.lookup(study_name)
        for backend in healthy:
            if backend.url == choice:
                return backend

        def load(backend: _Backend) -> float:
            try:
                status = backend.client._request(
                    "GET", "/v1/status", timeout=self.health_timeout)
            except Exception:  # noqa: BLE001 - treat as infinitely loaded
                return float("inf")
            states = status.get("job_states") or {}
            return sum(int(states.get(s, 0)) for s in ("queued", "running"))

        return min(healthy, key=load)

    # ------------------------------------------------------------------ #
    # Stream relay and journal
    # ------------------------------------------------------------------ #
    def _start_relay(self, job: _RouterJob, backend: _Backend,
                     backend_job_id: int, incarnation: int,
                     last_seq: int) -> None:
        with job.cond:
            job.relay_alive = True
        thread = threading.Thread(
            target=self._relay,
            args=(job, backend, backend_job_id, incarnation, last_seq),
            name=f"anttune-router-relay-{job.job_id}", daemon=True)
        thread.start()

    def _relay(self, job: _RouterJob, backend: _Backend, backend_job_id: int,
               incarnation: int, last_seq: int) -> None:
        """Copy one backend stream into the job's journal, re-stamped.

        The SDK's ``subscribe`` already absorbs reconnects and ``last_seq``
        replay (including across a ``serve --recover`` restart); this thread
        only re-stamps and appends.  Any exit without a terminal event —
        stream gave up, backend vanished, unknown job — hands the job to
        :meth:`_heal_job` for reattachment or migration.
        """
        try:
            for event in backend.client.subscribe(backend_job_id,
                                                  last_seq=last_seq):
                with job.cond:
                    if job.incarnation != incarnation or job.terminal:
                        return  # stale relay (migrated away, or finished)
                    job.backend_last_seq = event.seq
                    stamped = dataclasses.replace(
                        event, job_id=job.job_id, seq=len(job.journal),
                        trace_id=job.trace_id)
                    terminal = (isinstance(event, JobStateChanged)
                                and event.terminal)
                    if isinstance(event, JobStateChanged):
                        job.state = event.state
                        job.error = event.error
                        if event.terminal:
                            job.terminal = True
                    self._append_wire(job, event_to_wire(stamped), terminal)
        except Exception:  # noqa: BLE001 - the stream is gone; heal below
            pass
        finally:
            with job.cond:
                stale = job.incarnation != incarnation
                if not stale:
                    job.relay_alive = False
                done = job.terminal
            if not stale and not done and not self._stop.is_set():
                self._heal_job(job)

    # ------------------------------------------------------------------ #
    # Health and migration
    # ------------------------------------------------------------------ #
    def _health_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            for backend in list(self._backends.values()):
                self._probe(backend)
            self._sweep_jobs()

    def _probe(self, backend: _Backend) -> None:
        try:
            backend.client._request("GET", "/v1/health",
                                    timeout=self.health_timeout)
        except Exception:  # noqa: BLE001 - any failure is a failed probe
            backend.fails += 1
            if backend.healthy and backend.fails >= self.unhealthy_after:
                backend.healthy = False
                _BACKEND_DOWN.labels(backend=backend.url).inc()
        else:
            backend.fails = 0
            backend.healthy = True

    def _sweep_jobs(self) -> None:
        """Heal jobs with a dead relay — or a relay stuck on a frozen backend.

        A partitioned (e.g. SIGSTOPped) backend leaves its relay blocked in
        a socket read for up to the stream timeout; waiting that long to
        migrate is not acceptable, so an unhealthy backend triggers healing
        even while the relay thread is technically alive — the incarnation
        bump strands it.
        """
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            backend = self._backends.get(job.backend_url)
            backend_down = backend is None or not backend.healthy
            with job.cond:
                needs = (not job.terminal and not job.migrating
                         and (not job.relay_alive or backend_down))
            if needs:
                self._heal_job(job)

    def _heal_job(self, job: _RouterJob) -> None:
        """Reattach a job to its (returned) backend, or migrate it away."""
        with job.cond:
            if job.terminal or job.migrating or self._stop.is_set():
                return
            job.migrating = True
            old_url = job.backend_url
        try:
            backend = self._backends.get(old_url)
            if backend is not None and self._reattach(job, backend):
                return
            if job.kind == "resume":
                # The study's storage lives only on its original backend;
                # re-running elsewhere would silently fork the study.  Keep
                # waiting — the sweep retries until `serve --recover` brings
                # the backend (and the job, under its original id) back.
                return
            target = self._pick_backend(job.study_name, exclude={old_url})
            if target is None:
                return  # nowhere to go yet; the next sweep retries
            try:
                answer = target.client._request(
                    "POST", "/v1/jobs", job.body, request_id=job.trace_id)
            except _ServerUnreachable:
                return  # target died between pick and post; retry later
            except (TrialError, ValueError) as exc:
                # Permanent refusal (duplicate study on the target, schema
                # drift): surface it — this job cannot be placed anywhere.
                self._finish_locally(
                    job, "failed",
                    f"migration off {old_url} refused by {target.url}: {exc}")
                return
            with job.cond:
                if job.terminal:
                    return
                job.backend_url = target.url
                job.backend_job_id = int(answer["job_id"])
                job.backend_last_seq = -1
                job.incarnation += 1
                job.migrations += 1
                incarnation = job.incarnation
            _ROUTER_MIGRATIONS.inc()
            _ROUTER_JOBS.labels(backend=target.url).inc()
            self._start_relay(job, target, job.backend_job_id,
                              incarnation, last_seq=-1)
        finally:
            with job.cond:
                job.migrating = False

    def _reattach(self, job: _RouterJob, backend: _Backend) -> bool:
        """Resubscribe to the original backend if it still owns the job.

        True when a relay was (re)started.  A recovered backend resumes the
        job under its original backend id with seq numbering primed past the
        durable log, so the relay continues from ``backend_last_seq``.
        """
        try:
            status = backend.client.poll(job.backend_job_id)
        except Exception:  # noqa: BLE001 - down, or the job is gone
            return False
        if status.get("study_name") != job.study_name:
            return False  # a restarted (unrecovered) backend reused the id
        with job.cond:
            if job.terminal:
                return True
            job.incarnation += 1
            incarnation = job.incarnation
            last_seq = job.backend_last_seq
        _ROUTER_REATTACHES.inc()
        self._start_relay(job, backend, job.backend_job_id,
                          incarnation, last_seq)
        return True

    @staticmethod
    def _append_wire(job: _RouterJob, wire: Dict[str, object],
                     terminal: bool) -> None:
        """Append one wire event to the journal (caller holds ``job.cond``).

        Serialises the line once into ``journal_bytes`` — the buffer every
        streaming connection shares — pushes it to the async edge's
        listeners, and wakes journal tailers.
        """
        seq = len(job.journal)
        data = _json_bytes(wire)
        job.journal.append(wire)
        job.journal_bytes.append(data)
        for listener in list(job.listeners):
            try:
                listener(data, seq, terminal)
            except Exception:  # noqa: BLE001 - one sink must not stop relay
                pass
        job.cond.notify_all()

    def _finish_locally(self, job: _RouterJob, state: str,
                        error: Optional[str]) -> None:
        """Terminate a job in the journal when no backend can anymore."""
        with job.cond:
            if job.terminal:
                return
            job.incarnation += 1  # strand any live relay
            event = JobStateChanged(state=state, error=error, terminal=True,
                                    job_id=job.job_id, seq=len(job.journal),
                                    trace_id=job.trace_id)
            job.state = state
            job.error = error
            job.terminal = True
            self._append_wire(job, event_to_wire(event), True)

    # ------------------------------------------------------------------ #
    # Aggregated control surface (mirrors the backend API shapes)
    # ------------------------------------------------------------------ #
    def _job(self, job_id: int) -> _RouterJob:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise TrialError(f"unknown job id {job_id}")
        return job

    def status(self, job_id: int) -> Dict[str, object]:
        """One job's status: the backend's snapshot under router identity.

        The backend's view (trial counts, best value) is merged in when
        reachable; the router's own fields — id, state, trace id, backend,
        migrations — always win, so callers see stable identity across
        migrations even when the backend is gone.
        """
        job = self._job(job_id)
        with job.cond:
            own: Dict[str, object] = {
                "job_id": job.job_id, "state": job.state, "error": job.error,
                "finished": job.terminal, "study_name": job.study_name,
                "trace_id": job.trace_id, "backend": job.backend_url,
                "backend_job_id": job.backend_job_id,
                "migrations": job.migrations, "events": len(job.journal),
            }
            backend = self._backends.get(job.backend_url)
            backend_job_id = job.backend_job_id
        merged: Dict[str, object] = {
            "num_trials": 0, "states": {}, "best_value": None,
        }
        if backend is not None:
            try:
                # health_timeout, not the full request timeout: a frozen
                # backend must not stall a status call longer than a probe.
                merged.update(backend.client._request(
                    "GET", f"/v1/jobs/{backend_job_id}",
                    timeout=self.health_timeout))
            except Exception:  # noqa: BLE001 - backend view is best-effort
                pass
        merged.update(own)
        return merged

    def jobs(self) -> List[Dict[str, object]]:
        """Status snapshots of every routed job, oldest first."""
        with self._jobs_lock:
            ids = sorted(self._jobs)
        return [self.status(job_id) for job_id in ids]

    def wait(self, job_id: int,
             timeout: Optional[float] = None) -> Dict[str, object]:
        """Bounded wait on the journal; the SDK polls until ``done``.

        Returns the same wire shape as a backend's ``/wait``: the ``best``
        record is proxied from the current backend when reachable, else
        computed from the journal's ``TrialFinished`` records (so a client
        still gets its answer when the last backend died *after* the
        terminal event was relayed).
        """
        job = self._job(job_id)
        deadline = monotonic() + (timeout if timeout is not None else 10.0)
        with job.cond:
            while not job.terminal and not self._stop.is_set():
                remaining = deadline - monotonic()
                if remaining <= 0:
                    break
                job.cond.wait(remaining)
            if not job.terminal:
                return {"done": False, "state": job.state}
            state, error = job.state, job.error
            backend = self._backends.get(job.backend_url)
            backend_job_id = job.backend_job_id
        if backend is not None:
            try:
                answer = backend.client._request(
                    "GET", f"/v1/jobs/{backend_job_id}/wait?timeout=0",
                    timeout=self.health_timeout)
                if answer.get("done"):
                    answer.setdefault("error", error)
                    return answer
            except Exception:  # noqa: BLE001 - fall back to the journal
                pass
        return {"done": True, "state": state, "error": error,
                "best": self._best_from_journal(job)}

    def _best_from_journal(self, job: _RouterJob) -> Optional[Dict[str, object]]:
        """Best completed trial record in the journal (last write per id)."""
        config = job.body.get("config")
        maximize = True
        if isinstance(config, dict):
            maximize = bool(config.get("maximize", True))
        records: Dict[int, Dict[str, object]] = {}
        with job.cond:
            journal = list(job.journal)
        for wire in journal:
            if wire.get("type") != "TrialFinished":
                continue
            if wire.get("state") != "completed" or wire.get("value") is None:
                continue
            record = wire.get("record")
            if isinstance(record, dict):
                records[int(wire["trial_id"])] = record
        if not records:
            return None
        key = (lambda r: r.get("value")) if maximize \
            else (lambda r: -r.get("value"))
        return max(records.values(), key=key)

    def cancel(self, job_id: int) -> bool:
        """Cancel a routed job wherever it currently lives.

        When the backend is unreachable the job is finished locally as
        cancelled — an explicit cancel must not lose the race against the
        migration machinery resurrecting the job elsewhere.
        """
        job = self._job(job_id)
        with job.cond:
            if job.terminal:
                return False
            backend = self._backends.get(job.backend_url)
            backend_job_id = job.backend_job_id
        if backend is not None:
            try:
                return bool(backend.client.cancel(backend_job_id))
            except _ServerUnreachable:
                pass
            except TrialError:
                return False  # the backend knows it and says no
        self._finish_locally(job, "cancelled",
                             "cancelled while its backend was unreachable")
        return True

    def server_status(self) -> Dict[str, object]:
        """Router-wide snapshot: backend health plus routed-job counts."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        states: Dict[str, int] = {}
        migrations = 0
        for job in jobs:
            with job.cond:
                states[job.state] = states.get(job.state, 0) + 1
                migrations += job.migrations
        return {
            "role": "router",
            "num_backends": len(self._backends),
            "backends": [
                {"url": b.url, "healthy": b.healthy,
                 "consecutive_failures": b.fails}
                for b in self._backends.values()],
            "num_jobs": len(jobs),
            "job_states": states,
            "migrations": migrations,
        }

    def metrics_text(self) -> str:
        """The router's own exposition plus every backend's, sectioned.

        Each backend's text is prefixed with a ``# backend <url>`` comment
        line (comments are legal in the Prometheus text format), so one
        scrape of the router observes the whole fleet.
        """
        parts = [_metrics.REGISTRY.render()]
        for backend in self._backends.values():
            try:
                text = backend.client.metrics()
            except Exception:  # noqa: BLE001 - best-effort aggregation
                parts.append(f"# backend {backend.url} unreachable\n")
                continue
            parts.append(f"# backend {backend.url}\n{text}")
        return "".join(p if p.endswith("\n") else p + "\n" for p in parts)

    def decoded_journal(self, job_id: int) -> List[object]:
        """The job's journalled events as typed objects (for tests/tools)."""
        job = self._job(job_id)
        with job.cond:
            journal = list(job.journal)
        return [event_from_wire(wire) for wire in journal]


class _RouterWaitParker:
    """A parked router ``/wait``: completed by the journal's terminal append.

    The continuation is a journal listener (fired under ``job.cond`` by
    :meth:`TuneRouter._append_wire`); a job that went terminal before
    registration fires synchronously, so a finish racing the park is never
    lost.
    """

    def __init__(self, router: TuneRouter, job: _RouterJob,
                 timeout: float) -> None:
        self._router = router
        self._job = job
        self.timeout_seconds = timeout
        self._listener = None

    def register(self, fire: Callable[[], None]) -> None:
        job = self._job

        def listen(data: bytes, seq: int, terminal: bool) -> None:
            if terminal:
                fire()

        with job.cond:
            already = job.terminal
            if not already:
                job.listeners.append(listen)
                self._listener = listen
        if already:
            fire()

    def cancel(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            with self._job.cond:
                try:
                    self._job.listeners.remove(listener)
                except ValueError:
                    pass

    def terminal_payload(self) -> Dict[str, object]:
        # The journal is already terminal; the bounded wait only covers the
        # backend's best-trial proxy call inside router.wait().
        return self._router.wait(self._job.job_id, timeout=5.0)

    def timeout_payload(self) -> Dict[str, object]:
        return self._router.wait(self._job.job_id, timeout=0.0)


class _RouterApp:
    """The router's endpoint core: the backend protocol, served off journals.

    The same transport-agnostic shape as
    :class:`~repro.automl.remote.http_server._TuneApp` — driven by the
    async edge or the threaded handler — but hitting the
    :class:`TuneRouter` instead of an in-process ``AntTuneServer``.  Submit
    and resume deliberately do *not* parse refs — the router forwards
    bodies; only backends import code.  No ticket surface: workers talk to
    backends directly.
    """

    def __init__(self, remote: "RemoteRouterServer") -> None:
        self.remote = remote

    # -- edge hooks ------------------------------------------------------ #
    def log(self, line: str) -> None:
        self.remote.log(line)

    def check_auth(self, token: Optional[str]) -> bool:
        return self.remote.check_auth(token)

    @property
    def heartbeat_seconds(self) -> float:
        return _http.HEARTBEAT_SECONDS

    @property
    def stream_send_timeout(self) -> float:
        return _http.STREAM_SEND_TIMEOUT

    # -- routing --------------------------------------------------------- #
    def classify(self, method: str, path: str):
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            return None
        parts = parts[1:]
        if method == "GET":
            if parts == ["health"]:
                return ("control", "/v1/health", None)
            if parts == ["status"]:
                return ("control", "/v1/status", None)
            if parts == ["metrics"]:
                return ("control", "/v1/metrics", None)
            if parts == ["jobs"]:
                return ("control", "/v1/jobs", None)
            if len(parts) == 2 and parts[0] == "jobs":
                return ("control", "/v1/jobs/{id}", parts[1])
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "wait":
                return ("wait", "/v1/jobs/{id}/wait", parts[1])
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                return ("events", "/v1/jobs/{id}/events", parts[1])
        elif method == "POST":
            if parts == ["jobs"]:
                return ("control", "/v1/jobs", None)
            if parts == ["resume"]:
                return ("control", "/v1/resume", None)
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                return ("control", "/v1/jobs/{id}/cancel", parts[1])
        return None

    # -- control --------------------------------------------------------- #
    def handle_control(self, method: str, template: str, args: object,
                       params: Dict[str, str],
                       read_body: Callable[[], object],
                       request_id: Optional[str]) -> Reply:
        router = self.remote.router
        if template == "/v1/health":
            return json_reply(200, {"ok": True, "role": "router",
                                    "protocol": PROTOCOL_VERSION})
        if template == "/v1/status":
            payload = router.server_status()
            payload["protocol"] = PROTOCOL_VERSION
            return json_reply(200, payload)
        if template == "/v1/metrics":
            return Reply(200, router.metrics_text().encode("utf-8"),
                         _http.METRICS_CONTENT_TYPE)
        if template == "/v1/jobs" and method == "GET":
            return json_reply(200, {"jobs": router.jobs()})
        if template == "/v1/jobs":  # POST: submit
            return self._place("submit", read_body(), request_id)
        if template == "/v1/resume":
            return self._place("resume", read_body(), request_id)
        if template == "/v1/jobs/{id}":
            return json_reply(200, router.status(_job_id_segment(args)))
        if template == "/v1/jobs/{id}/cancel":
            job_id = _job_id_segment(args)
            return json_reply(200, {"job_id": job_id,
                                    "cancelled": router.cancel(job_id)})
        raise ProtocolError(f"no such endpoint: {method} {template}",
                            status=404)  # pragma: no cover - classify gates

    def _place(self, kind: str, body: object,
               request_id: Optional[str]) -> Reply:
        try:
            answer = self.remote.router.submit(
                body, trace_id=request_id, kind=kind)  # type: ignore[arg-type]
        except ValueError as exc:
            # A backend's 400 surfaces as ValueError in the forwarding
            # client; keep it a 400 for our caller too.
            raise ProtocolError(str(exc)) from None
        return json_reply(200, answer)

    # -- wait ------------------------------------------------------------ #
    def _wait_args(self, args: object,
                   params: Dict[str, str]) -> Tuple[int, float]:
        job_id = _job_id_segment(args)
        timeout = min(_float_param(params, "timeout", 10.0),
                      _http.MAX_WAIT_SECONDS)
        return job_id, max(0.0, timeout)

    def wait_blocking(self, args: object, params: Dict[str, str],
                      request_id: Optional[str]) -> Dict[str, object]:
        job_id, timeout = self._wait_args(args, params)
        return self.remote.router.wait(job_id, timeout=timeout)

    def wait_begin(self, args: object, params: Dict[str, str],
                   request_id: Optional[str]):
        job_id, timeout = self._wait_args(args, params)
        router = self.remote.router
        job = router._job(job_id)  # 404 for unknown ids
        with job.cond:
            terminal = job.terminal
        if terminal or timeout <= 0.0:
            return ("reply", router.wait(job_id, timeout=0.0))
        return ("park", _RouterWaitParker(router, job, timeout))

    # -- event streams --------------------------------------------------- #
    def stream_begin(self, args: object, params: Dict[str, str],
                     request_id: Optional[str], sink) -> None:
        """Wire one journal into a stream sink: snapshot replay + listener.

        Registering the listener and slicing the journal happen atomically
        under ``job.cond``, so the live push takes over exactly where the
        snapshot ends — gapless by construction, and every frame is the
        journal's shared pre-serialised line.
        """
        job_id = _job_id_segment(args)
        last_seq = _int_param(params, "last_seq", -1)
        max_queue = _int_param(params, "max_queue", 1024)
        if max_queue < 1:
            raise ProtocolError("max_queue must be >= 1")
        job = self.remote.router._job(job_id)
        sink.live_bound = max_queue

        def listen(data: bytes, seq: int, terminal: bool) -> None:
            sink.live(data, seq, terminal)

        start_index = max(0, last_seq + 1)
        with job.cond:
            snapshot = list(job.journal_bytes[start_index:])
            terminal_now = job.terminal
            if not terminal_now:
                job.listeners.append(listen)
        if not terminal_now:
            def remove() -> None:
                with job.cond:
                    try:
                        job.listeners.remove(listen)
                    except ValueError:
                        pass

            sink.on_close(remove)
        if not sink.start():
            return
        sent = start_index - 1
        for data in snapshot:
            sent += 1  # journal index == seq: the slice is contiguous
            if not sink.emit(data):
                return
        if terminal_now:
            sink.end()
            return
        sink.backfill_done(sent)

    def stream_threaded(self, handler, args: object,
                        params: Dict[str, str]) -> None:
        """Threaded-edge journal stream: replay, live tail, heartbeats.

        Identical wire shape to a backend's stream, but served from the
        router's journal — where index == seq — so a client reconnecting
        with ``last_seq`` across backend restarts *and* migrations still
        observes one gapless feed.
        """
        job_id = _job_id_segment(args)
        last_seq = _int_param(params, "last_seq", -1)
        job = self.remote.router._job(job_id)
        try:
            handler.connection.settimeout(self.stream_send_timeout)
            handler._last_status = 200
            handler.send_response(200)
            handler.send_header("Content-Type", "application/x-ndjson")
            handler.send_header("Cache-Control", "no-store")
            if handler._request_id:
                handler.send_header("X-Request-Id", handler._request_id)
            handler.send_header("Connection", "close")
            handler.end_headers()
            next_index = max(0, last_seq + 1)
            while True:
                with job.cond:
                    if next_index >= len(job.journal) and not job.terminal:
                        job.cond.wait(self.heartbeat_seconds)
                    batch = list(job.journal_bytes[next_index:])
                    done = job.terminal and \
                        next_index + len(batch) >= len(job.journal)
                for data in batch:
                    handler.wfile.write(data)
                if batch:
                    handler.wfile.flush()
                    next_index += len(batch)
                elif not done:
                    handler.wfile.write(b"\n")  # idle heartbeat
                    handler.wfile.flush()
                if done:
                    return
                if self.remote.router._stop.is_set():
                    return
        except OSError:
            return  # client went away; it can resume with last_seq
        finally:
            handler.close_connection = True


class RemoteRouterServer:
    """Serve a :class:`TuneRouter` over HTTP — a drop-in fleet front door.

    Clients (the SDK, the CLI, plain HTTP) talk to it exactly as they would
    to a single :class:`~repro.automl.remote.http_server.RemoteTuneServer`.

    Args:
        backends: backend base URLs (ignored when ``router`` is given).
        host: bind address (default loopback).
        port: bind port; 0 picks a free one.
        token: bearer token — required of *clients* and forwarded to every
            *backend* (a fleet shares one token).
        log: optional callable receiving one line per handled request.
        router: an externally owned :class:`TuneRouter` to serve instead of
            constructing one.
        edge: ``"async"`` (event-loop edge, the default) or ``"threaded"``
            (thread-per-connection fallback); defaults from ``ANTTUNE_EDGE``
            when unset — the same knob as the backend server's.
        **router_kwargs: forwarded to :class:`TuneRouter` when constructed
            here (``health_interval=``, ``replicas=``, ...).
    """

    def __init__(self, backends: Sequence[str] = (),
                 host: str = "127.0.0.1", port: int = 0,
                 token: Optional[str] = None,
                 log: Optional[object] = None,
                 router: Optional[TuneRouter] = None,
                 edge: Optional[str] = None,
                 **router_kwargs: object) -> None:
        if edge is None:
            edge = os.environ.get("ANTTUNE_EDGE") or "async"
        if edge not in ("async", "threaded"):
            raise ValueError(f"edge must be 'async' or 'threaded', "
                             f"got {edge!r}")
        self.edge = edge
        self._owns_router = router is None
        self.router = (router if router is not None
                       else TuneRouter(backends, token=token,
                                       **router_kwargs))  # type: ignore[arg-type]
        self.token = token
        self._log = log
        self.app = _RouterApp(self)
        self._httpd = None
        self._edge: Optional[AsyncHTTPEdge] = None
        try:
            if edge == "threaded":
                handler = type("BoundRouterHandler", (_http._Handler,),
                               {"remote": self})
                server_cls = type("BoundRouterHTTPServer",
                                  (_http.ThreadingHTTPServer,),
                                  {"request_queue_size": 1024})
                self._httpd = server_cls((host, port), handler)
                self._httpd.daemon_threads = True
            else:
                self._edge = AsyncHTTPEdge((host, port), self.app,
                                           name="anttune-router-edge")
        except OSError:
            if self._owns_router:
                self.router.close()
            raise
        self._thread: Optional[threading.Thread] = None
        self._started = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        if self._edge is not None:
            return self._edge.address
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients connect to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def log(self, line: str) -> None:
        """Request-log hook; default drops the line."""
        if self._log is not None:
            self._log(line)

    def check_auth(self, token: Optional[str]) -> bool:
        """Bearer-token gate, same contract as the backend server's."""
        if self.token is None:
            return True
        return token == self.token

    def start(self) -> "RemoteRouterServer":
        """Start the router's health monitor and serve in a thread."""
        self.router.start()
        if self._edge is not None:
            self._edge.start()
            self._started = True
            return self
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="anttune-router-http", daemon=True)
            self._thread.start()
            self._started = True
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``route`` command's mode)."""
        self.router.start()
        self._started = True
        if self._edge is not None:
            self._edge.serve_forever()
        else:
            self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting requests; close the router when owned here."""
        if self._edge is not None:
            self._edge.stop()
        else:
            if self._started:
                self._httpd.shutdown()
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(timeout=10.0)
                self._thread = None
        self._started = False
        if self._owns_router:
            self.router.close()

    def __enter__(self) -> "RemoteRouterServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
