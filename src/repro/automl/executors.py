"""Trial executors: the worker pool behind :meth:`repro.automl.study.Study.optimize`.

The paper's tune server (Fig. 8) dispatches generated trials to a pool of
distributed executors and collects the reported metrics.  This module provides
the in-process equivalent of that pool:

* :class:`SynchronousExecutor` runs each trial inline on the calling thread —
  the ``n_workers=1`` case, byte-for-byte identical to the historical
  sequential study loop.
* :class:`ThreadPoolTrialExecutor` runs up to ``n_workers`` trials
  concurrently on a :class:`concurrent.futures.ThreadPoolExecutor`.  It
  enforces the per-trial time limit by deadline (stragglers are cancelled
  cooperatively and their late results discarded) and survives worker death:
  if the underlying pool becomes unusable the executor transparently rebuilds
  it and resubmits.
* :class:`ProcessPoolTrialExecutor` runs trials in separate worker processes,
  sidestepping the GIL for CPU-bound objectives.  Objectives (and their
  sampled parameters) must be picklable; each worker process derives its own
  RNG (:func:`worker_rng`) so stochastic objectives stay reproducible per
  process.

Live trial telemetry
--------------------

Every executor exposes the same two telemetry hooks, so schedulers treat all
backends uniformly:

* :meth:`TrialExecutor.pump_telemetry` mirrors intermediate values reported
  by in-flight trials into the caller's :class:`~repro.automl.trial.Trial`
  objects.  Thread and sync backends share the trial object with the
  objective, so reports land directly and the pump is a no-op; the process
  backend streams ``(ticket, step, value)`` messages over a
  ``multiprocessing`` queue and the pump drains them.
* :meth:`TrialExecutor.kill_trial` delivers a kill signal (deadline, prune or
  cancel).  Local backends mark the shared trial; the process backend also
  writes the ticket into a kill map shared with the workers, whose next
  ``trial.report(...)`` raises — so a pruned or cancelled remote trial stops
  at its next report instead of running to its deadline.

Executors only *run* trials; proposing configurations (``ask``) and feeding
results back into the search algorithm (``tell``) stay inside the study, which
serialises them under a lock so any algorithm written for the sequential path
works unchanged.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.sharedctypes import Synchronized

import numpy as np

from repro.automl.trial import (
    KILL_CANCELLED,
    KILL_DEADLINE,
    PrunedTrial,
    Trial,
    TrialCancelled,
    TrialState,
)

__all__ = [
    "TrialCancelled",
    "execute_trial",
    "expire_trial",
    "TrialExecutor",
    "TrialExecutorClosed",
    "SynchronousExecutor",
    "ThreadPoolTrialExecutor",
    "ProcessPoolTrialExecutor",
    "worker_rng",
    "make_executor",
]

EXECUTOR_BACKENDS = ("auto", "sync", "thread", "process")

# A trial that has not started is waiting on the pool, which may be serving
# another owner (a co-tenant job): its own clock hasn't begun, so it must not
# be failed at trial_time_limit — but the wait cannot be unbounded either (a
# wedged pool would hang the study).  This factor bounds the queue wait.
STARVATION_GRACE_FACTOR = 5.0

# How often a waiting batch wakes up to run its tick callback (telemetry
# draining, mid-trial pruning, cancellation checks).
TICK_INTERVAL = 0.05


class TrialExecutorClosed(RuntimeError):
    """Submitting to an executor after ``close()``: no pool rebuild allowed."""

Objective = Callable[[Trial], float]
TickFn = Optional[Callable[[], bool]]


def execute_trial(objective: Objective, trial: Trial,
                  trial_time_limit: Optional[float] = None) -> Trial:
    """Run ``objective`` on ``trial`` and record outcome, duration and errors.

    This is the single place where a trial's lifecycle transitions happen, for
    both the sequential and the pooled path (it also runs worker-side inside
    process workers).  A kill signal observed while the objective ran maps to
    the matching terminal state: deadline kills to ``TIMED_OUT``, prune kills
    to ``PRUNED``, job cancellation to ``CANCELLED``.  If the canceller's
    bookkeeping already recorded a terminal state, the late outcome is
    discarded so the algorithm's view stays consistent.

    Args:
        objective: the user callable evaluated on the trial.
        trial: the trial to run; mutated in place.
        trial_time_limit: wall-clock budget used to post-hoc mark an overlong
            (but completed) run as ``TIMED_OUT``.

    Returns:
        The same ``trial``, now in a terminal state.
    """
    start = time.perf_counter()
    trial.started_at = start
    try:
        value = objective(trial)
        outcome, result, error = TrialState.COMPLETED, float(value), None
    except (PrunedTrial, TrialCancelled) as exc:
        outcome = trial.killed_state
        if outcome is None:
            # The objective raised on its own (cooperative should_prune(), or
            # a legacy TrialCancelled): classify by the exception type.
            outcome = (TrialState.TIMED_OUT if isinstance(exc, TrialCancelled)
                       else TrialState.PRUNED)
        result, error = None, None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - fault tolerance: even SystemExit
        # from a dying worker must not leave the trial stuck in RUNNING.
        outcome, result = TrialState.FAILED, None
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=3)}"
    duration = time.perf_counter() - start
    with trial._state_lock:
        if trial.is_finished:
            # A straggler finishing after its canceller already recorded a
            # terminal state (deadline or job cancellation): the algorithm has
            # been — or is about to be — told that state, so the whole late
            # outcome (value, error, duration) is discarded, keeping the
            # canceller's bookkeeping intact.
            return trial
        trial.value = result
        trial.error = error
        trial.state = outcome
        trial.duration_seconds = duration
        if (outcome == TrialState.COMPLETED and trial_time_limit is not None
                and duration > trial_time_limit):
            trial.state = TrialState.TIMED_OUT
    return trial


def expire_trial(trial: Trial, future: "Future[Trial]", limit: float,
                 reason: str = KILL_DEADLINE) -> None:
    """Kill a trial (deadline passed or job cancelled) and record its state.

    A trial whose future could still be cancelled never ran: under a deadline
    kill it is recorded FAILED (retryable starvation), not TIMED_OUT; under a
    job cancellation it is recorded CANCELLED either way.  A running straggler
    is killed cooperatively and recorded TIMED_OUT (deadline) or CANCELLED
    (job cancel); its late result is discarded on arrival.

    Args:
        trial: the in-flight trial.
        future: its executor future (cancelled when still queued).
        limit: the per-trial time limit, recorded as the duration of a
            timed-out straggler.
        reason: :data:`~repro.automl.trial.KILL_DEADLINE` (default) or
            :data:`~repro.automl.trial.KILL_CANCELLED`.
    """
    trial.kill(reason)  # cooperative: Trial.report raises from now on
    never_started = future.cancel()
    with trial._state_lock:
        if trial.is_finished:
            return
        if reason == KILL_CANCELLED:
            trial.state = TrialState.CANCELLED
        elif never_started:
            trial.state = TrialState.FAILED
            trial.error = ("trial never started: worker pool starved at "
                           "the deadline")
        else:
            trial.state = TrialState.TIMED_OUT
            trial.duration_seconds = limit


class TrialExecutor:
    """Minimal pool interface: submit trials, wait for a batch, shut down.

    Subclasses provide the pool; the base class supplies batch waiting with
    deadline enforcement and the default (local, shared-object) telemetry
    behaviour.
    """

    n_workers: int = 1

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Schedule one trial and return a future resolving to it.

        Args:
            objective: the user callable to evaluate.
            trial: the trial record to run and mutate.
            trial_time_limit: per-trial wall-clock budget (None = unlimited).

        Returns:
            A future whose result is ``trial`` once it reached a terminal
            state.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Live telemetry
    # ------------------------------------------------------------------ #
    def pump_telemetry(self) -> int:
        """Mirror streamed intermediate reports into the local trials.

        Thread and sync backends share trial objects with the objective, so
        reports are already visible and the pump is a no-op; the process
        backend overrides this to drain its uplink queue.

        Returns:
            The number of reports mirrored by this call.
        """
        return 0

    def kill_trial(self, trial: Trial, reason: str = KILL_CANCELLED) -> None:
        """Deliver a kill signal to an in-flight trial (cooperative).

        The objective observes the kill at its next ``trial.report(...)``.
        The process backend overrides this to also signal the remote worker.

        Args:
            trial: the trial to stop.
            reason: a kill reason from :mod:`repro.automl.trial`
                (``KILL_DEADLINE``, ``KILL_PRUNED`` or ``KILL_CANCELLED``).
        """
        trial.kill(reason)

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run_batch(self, objective: Objective, trials: Sequence[Trial],
                  trial_time_limit: Optional[float] = None,
                  hard_deadline: Optional[float] = None,
                  tick_fn: TickFn = None) -> List[Trial]:
        """Run ``trials`` (at most ``n_workers`` of them) and block until each
        one has a terminal state.

        ``trial_time_limit`` is measured from each trial's actual *start*, not
        from batch submission, so queue wait behind other work (e.g. another
        job sharing the pool) doesn't count against the limit.  Queue wait is
        still bounded: a trial that hasn't started within one limit of the
        batch's last observed start — or within ``STARVATION_GRACE_FACTOR``
        limits of submission when nothing of ours ever started — is recorded
        FAILED ("never started") for the study's retry logic to resubmit.
        ``hard_deadline`` (absolute ``perf_counter`` time, from the study's
        total time limit) expires everything still pending when reached, so a
        wedged pool can never hang the study past its total budget.

        Args:
            objective: the user callable to evaluate.
            trials: the batch to run.
            trial_time_limit: per-trial wall-clock budget.
            hard_deadline: absolute time after which everything expires.
            tick_fn: invoked every :data:`TICK_INTERVAL` while waiting; used
                by schedulers to drain telemetry and prune mid-trial.  A
                ``True`` return cancels every still-pending trial (job
                cancellation) and ends the batch immediately.

        Returns:
            The input trials, each in a terminal state.
        """
        futures = [self.submit(objective, t, trial_time_limit) for t in trials]
        if trial_time_limit is None and hard_deadline is None and tick_fn is None:
            wait(futures)
        else:
            self._wait_with_deadlines(list(zip(futures, trials)),
                                      trial_time_limit, hard_deadline, tick_fn)
        for future in futures:
            if future.done() and not future.cancelled() and future.exception() is not None:
                # Only non-Exception BaseExceptions (e.g. KeyboardInterrupt)
                # escape execute_trial: surface them on the dispatching thread
                # so the study aborts instead of looping over a dead worker.
                raise future.exception()
        return list(trials)

    def _wait_with_deadlines(self, pairs: List, limit: Optional[float],
                             hard_deadline: Optional[float],
                             tick_fn: TickFn = None) -> None:
        """Enforce start-based deadlines and tick callbacks over (future, trial) pairs."""
        pending = dict(pairs)
        submit_time = time.perf_counter()
        grace = None if limit is None else limit * STARVATION_GRACE_FACTOR
        latest_start: Optional[float] = None  # None until the pool serves us
        while pending:
            if tick_fn is not None and tick_fn():
                # Job cancellation: nothing pending may keep running.
                for future, trial in pending.items():
                    self.kill_trial(trial, KILL_CANCELLED)
                    expire_trial(trial, future, limit or 0.0,
                                 reason=KILL_CANCELLED)
                return
            now = time.perf_counter()
            if hard_deadline is not None and now >= hard_deadline:
                # Total study budget spent: nothing may outlive it.
                for future, trial in pending.items():
                    self.kill_trial(trial, KILL_DEADLINE)
                    expire_trial(trial, future, limit or 0.0)
                return
            for future, trial in list(pending.items()):
                if future.done():
                    pending.pop(future)
                    continue
                if trial.started_at is None and future.running():
                    # Process workers never ship started_at back mid-run; the
                    # first time the future reports running is the best proxy.
                    trial.started_at = now
                if trial.started_at is not None:
                    latest_start = max(latest_start or trial.started_at,
                                       trial.started_at)
            next_deadline: Optional[float] = hard_deadline
            for future, trial in list(pending.items()):
                if limit is None:
                    continue  # only the hard deadline applies
                start = trial.started_at
                if start is not None:
                    deadline = start + limit
                elif latest_start is not None:
                    # The pool is serving this batch but not this trial: a
                    # non-cooperative straggler of ours is starving it.
                    deadline = min(latest_start + limit, submit_time + grace)
                else:
                    # Nothing of ours started: the pool is busy with *other*
                    # work (another job) — wait, but not unboundedly.
                    deadline = submit_time + grace
                if now < deadline:
                    next_deadline = (deadline if next_deadline is None
                                     else min(next_deadline, deadline))
                    continue
                self.kill_trial(trial, KILL_DEADLINE)
                expire_trial(trial, future, limit)
                # Stop waiting for it; a zombie straggler's late result is
                # discarded on arrival via the kill flag.
                pending.pop(future)
            if pending:
                timeout = (None if next_deadline is None
                           else max(0.0, next_deadline - now) + 0.01)
                if limit is not None:
                    # Cap the wait so a trial that starts mid-sleep still gets
                    # its deadline enforced promptly.
                    timeout = limit if timeout is None else min(timeout, limit)
                if tick_fn is not None:
                    # Wake regularly to drain telemetry and observe kills.
                    timeout = (TICK_INTERVAL if timeout is None
                               else min(timeout, TICK_INTERVAL))
                wait(list(pending), timeout=timeout, return_when=FIRST_COMPLETED)

    def shutdown(self) -> None:
        """Release pool resources (idempotent; a later submit may rebuild)."""

    def close(self) -> None:
        """Shut down *permanently*: no submit may rebuild the pool afterwards.

        ``shutdown`` models recoverable worker death (the pool is rebuilt on
        the next submit); ``close`` is for owners going away for good — e.g.
        the tune server — where a silent rebuild would leak worker threads.
        """
        self.shutdown()

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SynchronousExecutor(TrialExecutor):
    """Runs every trial inline on the calling thread (``n_workers=1``).

    There is no concurrency to stream telemetry into: pruning happens
    cooperatively inside the objective (``trial.should_prune()``), exactly as
    in the historical sequential loop.
    """

    n_workers = 1

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Run the trial inline and return an already-resolved future."""
        future: "Future[Trial]" = Future()
        future.set_result(execute_trial(objective, trial, trial_time_limit))
        return future


class ThreadPoolTrialExecutor(TrialExecutor):
    """Runs trials on a ``ThreadPoolExecutor`` with fault-tolerant resubmission.

    Worker death (a pool that raises on submit, e.g. after an interpreter-level
    failure marked it broken) is handled by rebuilding the pool once per
    submission attempt, so a study survives losing its workers mid-flight.
    Trials share their objects with the objective threads, so intermediate
    reports are immediately visible to the scheduler and kill signals take
    effect at the straggler's next report.
    """

    def __init__(self, n_workers: int, thread_name_prefix: str = "anttune-worker") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._thread_name_prefix = thread_name_prefix
        self._pool_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise TrialExecutorClosed("executor has been closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix=self._thread_name_prefix)
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Schedule the trial on the thread pool (rebuilding a broken pool once).

        Raises:
            TrialExecutorClosed: the executor was permanently closed.
        """
        try:
            return self._ensure_pool().submit(execute_trial, objective, trial,
                                              trial_time_limit)
        except RuntimeError:
            # BrokenThreadPool subclasses RuntimeError; a shut-down pool raises
            # RuntimeError too.  Rebuild once and resubmit.
            self._discard_pool()
            return self._ensure_pool().submit(execute_trial, objective, trial,
                                              trial_time_limit)

    def shutdown(self) -> None:
        """Release the pool; a later submit transparently rebuilds it."""
        self._discard_pool()

    def close(self) -> None:
        """Release the pool permanently; further submits raise."""
        with self._pool_lock:
            self._closed = True
        self.shutdown()


# --------------------------------------------------------------------------- #
# Process-pool backend
# --------------------------------------------------------------------------- #
_WORKER_RNG: Optional[np.random.Generator] = None
_THREAD_RNGS = threading.local()
# Telemetry endpoints inside a worker process (set by the pool initializer):
# the uplink queue streams (ticket, step, value) reports to the parent, the
# kill map is scanned on every report for prune/cancel signals.
_WORKER_UPLINK = None
_WORKER_KILLS = None


def _init_process_worker(base_seed: int, worker_counter: "Synchronized",
                         uplink=None, kills=None) -> None:
    """Process-pool initializer: derive this worker's RNG, wire telemetry.

    The shared counter hands each worker a deterministic index 0..n-1, so for
    a fixed ``base_seed`` the pool's RNG streams are reproducible across runs
    (pids are not).  ``uplink``/``kills`` are the telemetry endpoints shared
    with the parent process.
    """
    global _WORKER_RNG, _WORKER_UPLINK, _WORKER_KILLS
    with worker_counter.get_lock():
        worker_index = worker_counter.value
        worker_counter.value += 1
    _WORKER_RNG = np.random.default_rng([int(base_seed), worker_index])
    _WORKER_UPLINK = uplink
    _WORKER_KILLS = kills


def worker_rng() -> np.random.Generator:
    """The per-worker RNG available to objectives running on an executor.

    Inside a :class:`ProcessPoolTrialExecutor` worker the generator is derived
    from the executor's ``base_seed`` and the worker's index in the pool, so
    two workers never share a stream and a fixed ``base_seed`` reproduces the
    same streams across runs.  Outside a process worker (thread or sync
    backend) each *thread* lazily gets its own generator derived from
    (pid, thread id) — numpy generators are not thread-safe, so the streams
    must not be shared across pool threads.

    Returns:
        The calling worker's (or thread's) private generator.
    """
    if _WORKER_RNG is not None:
        return _WORKER_RNG
    rng = getattr(_THREAD_RNGS, "rng", None)
    if rng is None:
        rng = np.random.default_rng([os.getpid(), threading.get_ident()])
        _THREAD_RNGS.rng = rng
    return rng


def _telemetry_hook(ticket: int):
    """Worker-side report hook: stream the value up, observe kill signals."""
    def _hook(trial: Trial, value: float, step: Optional[int]) -> None:
        if _WORKER_UPLINK is not None:
            try:
                _WORKER_UPLINK.put(
                    (ticket, len(trial.intermediate_values) - 1, value))
            except Exception:  # noqa: BLE001 - a torn-down parent queue must
                pass           # never crash a worker mid-objective.
        if _WORKER_KILLS is not None:
            try:
                reason = _WORKER_KILLS.get(ticket)
            except Exception:  # noqa: BLE001 - manager already shut down
                reason = None
            if reason is not None:
                trial.kill(reason)
                trial._raise_if_killed()
    return _hook


def _run_trial_in_process(objective: Objective, params: Dict[str, object],
                          trial_id: int, ticket: int, worker: Optional[str],
                          trial_time_limit: Optional[float]) -> Dict[str, object]:
    """Worker-side entry point: rebuild the trial, run it, ship the record back."""
    trial = Trial(trial_id=trial_id, params=params, worker=worker,
                  state=TrialState.RUNNING)
    trial._report_hook = _telemetry_hook(ticket)
    execute_trial(objective, trial, trial_time_limit)
    return trial.as_record()


class _MergedFuture(Future):
    """A future resolving to the *local* trial once the remote record merged.

    ``cancel`` delegates to the underlying pool future so the batch deadline
    logic can still distinguish never-started work (retryable FAILED) from a
    running straggler (TIMED_OUT).
    """

    def __init__(self) -> None:
        super().__init__()
        self._raw: Optional[Future] = None

    def attach(self, raw: Future) -> None:
        self._raw = raw

    def cancel(self) -> bool:
        if self._raw is None:
            return super().cancel()
        return self._raw.cancel()

    def running(self) -> bool:
        if self._raw is None:
            return super().running()
        return self._raw.running()


class ProcessPoolTrialExecutor(TrialExecutor):
    """Runs trials in worker processes (CPU-bound objectives, no GIL contention).

    Objectives and their parameters must be picklable.  The remote trial is a
    fresh object in the worker process, but it is *not* blind any more: every
    ``trial.report(...)`` streams ``(ticket, step, value)`` back over a
    ``multiprocessing`` queue, :meth:`pump_telemetry` mirrors those values
    into the caller's trial objects mid-run, and :meth:`kill_trial` writes a
    kill reason into a map shared with the workers so the remote objective's
    next report raises and the trial stops early (pruning, cancellation,
    deadlines).  A broken pool (worker killed hard) is rebuilt transparently
    and the affected trials are recorded as FAILED, which the study's retry
    logic resubmits.
    """

    def __init__(self, n_workers: int, base_seed: int = 0) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.base_seed = int(base_seed)
        self._pool_lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        # Telemetry plumbing: tickets are executor-unique submission ids (two
        # jobs sharing this pool may both run a "trial 0", so trial_id alone
        # cannot key the channel).
        self._telemetry_lock = threading.Lock()
        self._ticket_counter = itertools.count()
        self._live: Dict[int, Trial] = {}            # ticket -> local trial
        self._ticket_by_trial: Dict[int, int] = {}   # id(trial) -> ticket
        self._manager = None                         # backs the kill map
        self._kills = None                           # ticket -> kill reason
        self._uplink = None                          # worker -> parent reports

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise TrialExecutorClosed("executor has been closed")
            if self._pool is None:
                ctx = multiprocessing.get_context()
                self._manager = ctx.Manager()
                self._kills = self._manager.dict()
                self._uplink = ctx.Queue()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_init_process_worker,
                    initargs=(self.base_seed, ctx.Value("i", 0),
                              self._uplink, self._kills))
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            manager, self._manager = self._manager, None
            self._kills = None
            uplink, self._uplink = self._uplink, None
        if pool is not None:
            pool.shutdown(wait=False)
        if uplink is not None:
            uplink.cancel_join_thread()
            uplink.close()
        if manager is not None:
            manager.shutdown()

    def _submit_raw(self, objective: Objective, trial: Trial, ticket: int,
                    trial_time_limit: Optional[float]) -> Future:
        args = (objective, dict(trial.params), trial.trial_id, ticket,
                trial.worker, trial_time_limit)
        try:
            return self._ensure_pool().submit(_run_trial_in_process, *args)
        except RuntimeError:
            # BrokenProcessPool subclasses RuntimeError; rebuild once.
            self._discard_pool()
            return self._ensure_pool().submit(_run_trial_in_process, *args)

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Ship the trial to a worker process; the future merges its record back.

        Raises:
            TrialExecutorClosed: the executor was permanently closed.
        """
        merged = _MergedFuture()
        ticket = next(self._ticket_counter)
        # Register before submitting: a fast worker's first report must find
        # its ticket, or the report would be silently dropped.
        with self._telemetry_lock:
            self._live[ticket] = trial
            self._ticket_by_trial[id(trial)] = ticket
        try:
            raw = self._submit_raw(objective, trial, ticket, trial_time_limit)
        except BaseException:
            self._forget(ticket, trial)
            raise
        merged.attach(raw)
        raw.add_done_callback(self._merge_into(trial, ticket, merged))
        return merged

    def _forget(self, ticket: int, trial: Trial) -> None:
        """Drop a finished submission from the telemetry registries."""
        with self._telemetry_lock:
            self._live.pop(ticket, None)
            self._ticket_by_trial.pop(id(trial), None)
            kills = self._kills
        if kills is not None:
            try:
                kills.pop(ticket, None)
            except Exception:  # noqa: BLE001 - manager already shut down
                pass

    def pump_telemetry(self) -> int:
        """Drain the uplink queue, mirroring reports into local trials.

        Returns:
            The number of reports mirrored by this call.
        """
        with self._pool_lock:
            uplink = self._uplink
        if uplink is None:
            return 0
        mirrored = 0
        while True:
            try:
                ticket, step, value = uplink.get_nowait()
            except queue_module.Empty:
                break
            except (OSError, ValueError, EOFError):
                break  # queue torn down under us (pool rebuild/shutdown)
            with self._telemetry_lock:
                trial = self._live.get(ticket)
                if trial is None:
                    continue  # late report from an already-merged trial
                with trial._state_lock:
                    # The final record replaces the whole list on merge; until
                    # then mirror in order, skipping duplicates defensively.
                    if (not trial.is_finished
                            and step == len(trial.intermediate_values)):
                        trial.intermediate_values.append(float(value))
                        mirrored += 1
        return mirrored

    def kill_trial(self, trial: Trial, reason: str = KILL_CANCELLED) -> None:
        """Kill locally and signal the remote worker via the shared kill map."""
        trial.kill(reason)
        with self._telemetry_lock:
            ticket = self._ticket_by_trial.get(id(trial))
            kills = self._kills
            if ticket is None or kills is None or ticket not in self._live:
                # Already merged (or pool torn down): writing the kill entry
                # now would leak it forever — _forget() has run or will never
                # see this ticket again.
                return
            try:
                # Written under the lock: _forget() pops _live under the same
                # lock first, so either it sees our entry and cleans it, or
                # we saw the ticket gone and skipped the write.
                kills[ticket] = reason
            except Exception:  # noqa: BLE001 - manager already shut down
                pass

    def _merge_into(self, trial: Trial, ticket: int,
                    merged: _MergedFuture) -> Callable[[Future], None]:
        def _done(raw: Future) -> None:
            self._forget(ticket, trial)
            if raw.cancelled():
                with trial._state_lock:
                    if not trial.is_finished:
                        trial.state = TrialState.FAILED
                        trial.error = ("trial never started: worker pool "
                                       "starved at the batch deadline")
                merged.set_result(trial)
                return
            exc = raw.exception()
            if exc is not None:
                # Unpicklable objective/result or a pool broken by a dying
                # worker: record as FAILED (retryable), never crash the study.
                with trial._state_lock:
                    if not trial.is_finished:
                        trial.state = TrialState.FAILED
                        trial.error = f"{type(exc).__name__}: {exc}"
                merged.set_result(trial)
                return
            record = raw.result()
            with trial._state_lock:
                if not trial.is_finished:
                    # A canceller that already recorded a terminal state wins;
                    # otherwise the remote record is authoritative.
                    trial.state = TrialState(record["state"])
                    trial.value = record["value"]
                    trial.error = record["error"]
                    trial.duration_seconds = float(record["duration_seconds"])
                    trial.intermediate_values = [
                        float(v) for v in record["intermediate_values"]]
            merged.set_result(trial)
        return _done

    def shutdown(self) -> None:
        """Release the pool, manager and telemetry channel (rebuilt on demand)."""
        self._discard_pool()

    def close(self) -> None:
        """Release everything permanently; further submits raise."""
        with self._pool_lock:
            self._closed = True
        self.shutdown()


def make_executor(n_workers: int, backend: str = "auto",
                  base_seed: int = 0) -> TrialExecutor:
    """Build the executor for ``n_workers`` workers on the requested backend.

    ``auto`` picks the cheapest sufficient backend: inline execution for one
    worker, a thread pool otherwise.  ``process`` builds a
    :class:`ProcessPoolTrialExecutor` (picklable objectives required) whose
    workers derive per-process RNGs from ``base_seed``.

    Args:
        n_workers: pool size (>= 1).
        backend: one of ``"auto"``, ``"sync"``, ``"thread"``, ``"process"``.
        base_seed: seed for the process workers' RNG streams.

    Returns:
        A ready :class:`TrialExecutor`.

    Raises:
        ValueError: for a non-positive worker count or unknown backend.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(f"unknown executor backend {backend!r}; "
                         f"expected one of {EXECUTOR_BACKENDS}")
    if backend == "process":
        return ProcessPoolTrialExecutor(n_workers, base_seed=base_seed)
    if backend == "sync" or (backend == "auto" and n_workers == 1):
        return SynchronousExecutor()
    return ThreadPoolTrialExecutor(n_workers)
