"""Trial executors: the worker pool behind :meth:`repro.automl.study.Study.optimize`.

The paper's tune server (Fig. 8) dispatches generated trials to a pool of
distributed executors and collects the reported metrics.  This module provides
the in-process equivalent of that pool:

* :class:`SynchronousExecutor` runs each trial inline on the calling thread —
  the ``n_workers=1`` case, byte-for-byte identical to the historical
  sequential study loop.
* :class:`ThreadPoolTrialExecutor` runs up to ``n_workers`` trials
  concurrently on a :class:`concurrent.futures.ThreadPoolExecutor`.  It
  enforces the per-trial time limit by deadline (stragglers are cancelled
  cooperatively and their late results discarded) and survives worker death:
  if the underlying pool becomes unusable the executor transparently rebuilds
  it and resubmits.
* :class:`ProcessPoolTrialExecutor` runs trials in separate worker processes,
  sidestepping the GIL for CPU-bound objectives.  Objectives (and their
  sampled parameters) must be picklable; each worker process derives its own
  RNG (:func:`worker_rng`) so stochastic objectives stay reproducible per
  process.  Trial records are shipped back and merged into the caller's
  :class:`~repro.automl.trial.Trial` objects, so the study loop is identical
  across backends.

Executors only *run* trials; proposing configurations (``ask``) and feeding
results back into the search algorithm (``tell``) stay inside the study, which
serialises them under a lock so any algorithm written for the sequential path
works unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.sharedctypes import Synchronized

import numpy as np

from repro.automl.trial import PrunedTrial, Trial, TrialCancelled, TrialState

__all__ = [
    "TrialCancelled",
    "execute_trial",
    "expire_trial",
    "TrialExecutor",
    "TrialExecutorClosed",
    "SynchronousExecutor",
    "ThreadPoolTrialExecutor",
    "ProcessPoolTrialExecutor",
    "worker_rng",
    "make_executor",
]

EXECUTOR_BACKENDS = ("auto", "sync", "thread", "process")

# A trial that has not started is waiting on the pool, which may be serving
# another owner (a co-tenant job): its own clock hasn't begun, so it must not
# be failed at trial_time_limit — but the wait cannot be unbounded either (a
# wedged pool would hang the study).  This factor bounds the queue wait.
STARVATION_GRACE_FACTOR = 5.0


class TrialExecutorClosed(RuntimeError):
    """Submitting to an executor after ``close()``: no pool rebuild allowed."""

Objective = Callable[[Trial], float]


def execute_trial(objective: Objective, trial: Trial,
                  trial_time_limit: Optional[float] = None) -> Trial:
    """Run ``objective`` on ``trial`` and record outcome, duration and errors.

    This is the single place where a trial's lifecycle transitions happen, for
    both the sequential and the pooled path.  If the trial was cancelled while
    the objective ran (deadline enforcement), the late result is discarded and
    the TIMED_OUT state set by the canceller is preserved.
    """
    start = time.perf_counter()
    trial.started_at = start
    try:
        value = objective(trial)
        outcome, result, error = TrialState.COMPLETED, float(value), None
    except (PrunedTrial, TrialCancelled) as exc:
        cancelled = isinstance(exc, TrialCancelled) or trial.is_cancelled
        outcome = TrialState.TIMED_OUT if cancelled else TrialState.PRUNED
        result, error = None, None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - fault tolerance: even SystemExit
        # from a dying worker must not leave the trial stuck in RUNNING.
        outcome, result = TrialState.FAILED, None
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=3)}"
    duration = time.perf_counter() - start
    with trial._state_lock:
        if trial.is_cancelled:
            # A straggler finishing after its deadline: whatever the late
            # outcome was (success, failure, prune), the algorithm has already
            # been told TIMED_OUT, so the recorded state must stay TIMED_OUT
            # and the whole late outcome (value, error, duration) is
            # discarded, keeping the canceller's bookkeeping intact.
            trial.value = None
            trial.state = TrialState.TIMED_OUT
            return trial
        trial.value = result
        trial.error = error
        trial.state = outcome
        trial.duration_seconds = duration
        if (outcome == TrialState.COMPLETED and trial_time_limit is not None
                and duration > trial_time_limit):
            trial.state = TrialState.TIMED_OUT
    return trial


def expire_trial(trial: Trial, future: "Future[Trial]", limit: float) -> None:
    """Cancel a trial past its deadline and record its terminal state.

    A trial whose future could still be cancelled never ran: it is recorded
    FAILED (retryable starvation), not TIMED_OUT.  A running straggler is
    cancelled cooperatively and recorded TIMED_OUT; its late result is
    discarded on arrival via the cancel flag.
    """
    trial.cancel()  # cooperative: Trial.report raises from now on
    never_started = future.cancel()
    with trial._state_lock:
        if trial.is_finished:
            return
        if never_started:
            trial.state = TrialState.FAILED
            trial.error = ("trial never started: worker pool starved at "
                           "the deadline")
        else:
            trial.state = TrialState.TIMED_OUT
            trial.duration_seconds = limit


class TrialExecutor:
    """Minimal pool interface: submit trials, wait for a batch, shut down."""

    n_workers: int = 1

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        raise NotImplementedError

    def run_batch(self, objective: Objective, trials: Sequence[Trial],
                  trial_time_limit: Optional[float] = None,
                  hard_deadline: Optional[float] = None) -> List[Trial]:
        """Run ``trials`` (at most ``n_workers`` of them) and block until each
        one has a terminal state.

        ``trial_time_limit`` is measured from each trial's actual *start*, not
        from batch submission, so queue wait behind other work (e.g. another
        job sharing the pool) doesn't count against the limit.  Queue wait is
        still bounded: a trial that hasn't started within one limit of the
        batch's last observed start — or within ``STARVATION_GRACE_FACTOR``
        limits of submission when nothing of ours ever started — is recorded
        FAILED ("never started") for the study's retry logic to resubmit.
        ``hard_deadline`` (absolute ``perf_counter`` time, from the study's
        total time limit) expires everything still pending when reached, so a
        wedged pool can never hang the study past its total budget.
        """
        futures = [self.submit(objective, t, trial_time_limit) for t in trials]
        if trial_time_limit is None and hard_deadline is None:
            wait(futures)
        else:
            self._wait_with_deadlines(list(zip(futures, trials)),
                                      trial_time_limit, hard_deadline)
        for future in futures:
            if future.done() and not future.cancelled() and future.exception() is not None:
                # Only non-Exception BaseExceptions (e.g. KeyboardInterrupt)
                # escape execute_trial: surface them on the dispatching thread
                # so the study aborts instead of looping over a dead worker.
                raise future.exception()
        return list(trials)

    @staticmethod
    def _wait_with_deadlines(pairs: List, limit: Optional[float],
                             hard_deadline: Optional[float]) -> None:
        """Enforce per-trial start-based deadlines over (future, trial) pairs."""
        pending = dict(pairs)
        submit_time = time.perf_counter()
        grace = None if limit is None else limit * STARVATION_GRACE_FACTOR
        latest_start: Optional[float] = None  # None until the pool serves us
        while pending:
            now = time.perf_counter()
            if hard_deadline is not None and now >= hard_deadline:
                # Total study budget spent: nothing may outlive it.
                for future, trial in pending.items():
                    expire_trial(trial, future, limit or 0.0)
                return
            for future, trial in list(pending.items()):
                if future.done():
                    pending.pop(future)
                    continue
                if trial.started_at is None and future.running():
                    # Process workers never ship started_at back mid-run; the
                    # first time the future reports running is the best proxy.
                    trial.started_at = now
                if trial.started_at is not None:
                    latest_start = max(latest_start or trial.started_at,
                                       trial.started_at)
            next_deadline: Optional[float] = hard_deadline
            for future, trial in list(pending.items()):
                if limit is None:
                    continue  # only the hard deadline applies
                start = trial.started_at
                if start is not None:
                    deadline = start + limit
                elif latest_start is not None:
                    # The pool is serving this batch but not this trial: a
                    # non-cooperative straggler of ours is starving it.
                    deadline = min(latest_start + limit, submit_time + grace)
                else:
                    # Nothing of ours started: the pool is busy with *other*
                    # work (another job) — wait, but not unboundedly.
                    deadline = submit_time + grace
                if now < deadline:
                    next_deadline = (deadline if next_deadline is None
                                     else min(next_deadline, deadline))
                    continue
                expire_trial(trial, future, limit)
                # Stop waiting for it; a zombie straggler's late result is
                # discarded on arrival via the cancel flag.
                pending.pop(future)
            if pending:
                timeout = (None if next_deadline is None
                           else max(0.0, next_deadline - now) + 0.01)
                if limit is not None:
                    # Cap the wait so a trial that starts mid-sleep still gets
                    # its deadline enforced promptly.
                    timeout = limit if timeout is None else min(timeout, limit)
                wait(list(pending), timeout=timeout, return_when=FIRST_COMPLETED)

    def shutdown(self) -> None:
        """Release pool resources (idempotent; a later submit may rebuild)."""

    def close(self) -> None:
        """Shut down *permanently*: no submit may rebuild the pool afterwards.

        ``shutdown`` models recoverable worker death (the pool is rebuilt on
        the next submit); ``close`` is for owners going away for good — e.g.
        the tune server — where a silent rebuild would leak worker threads.
        """
        self.shutdown()

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SynchronousExecutor(TrialExecutor):
    """Runs every trial inline on the calling thread (``n_workers=1``)."""

    n_workers = 1

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        future: "Future[Trial]" = Future()
        future.set_result(execute_trial(objective, trial, trial_time_limit))
        return future


class ThreadPoolTrialExecutor(TrialExecutor):
    """Runs trials on a ``ThreadPoolExecutor`` with fault-tolerant resubmission.

    Worker death (a pool that raises on submit, e.g. after an interpreter-level
    failure marked it broken) is handled by rebuilding the pool once per
    submission attempt, so a study survives losing its workers mid-flight.
    """

    def __init__(self, n_workers: int, thread_name_prefix: str = "anttune-worker") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._thread_name_prefix = thread_name_prefix
        self._pool_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise TrialExecutorClosed("executor has been closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix=self._thread_name_prefix)
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        try:
            return self._ensure_pool().submit(execute_trial, objective, trial,
                                              trial_time_limit)
        except RuntimeError:
            # BrokenThreadPool subclasses RuntimeError; a shut-down pool raises
            # RuntimeError too.  Rebuild once and resubmit.
            self._discard_pool()
            return self._ensure_pool().submit(execute_trial, objective, trial,
                                              trial_time_limit)

    def shutdown(self) -> None:
        self._discard_pool()

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
        self.shutdown()


# --------------------------------------------------------------------------- #
# Process-pool backend
# --------------------------------------------------------------------------- #
_WORKER_RNG: Optional[np.random.Generator] = None
_THREAD_RNGS = threading.local()


def _init_process_worker(base_seed: int, worker_counter: "Synchronized") -> None:
    """Process-pool initializer: derive this worker's RNG from (seed, index).

    The shared counter hands each worker a deterministic index 0..n-1, so for
    a fixed ``base_seed`` the pool's RNG streams are reproducible across runs
    (pids are not).
    """
    global _WORKER_RNG
    with worker_counter.get_lock():
        worker_index = worker_counter.value
        worker_counter.value += 1
    _WORKER_RNG = np.random.default_rng([int(base_seed), worker_index])


def worker_rng() -> np.random.Generator:
    """The per-worker RNG available to objectives running on an executor.

    Inside a :class:`ProcessPoolTrialExecutor` worker the generator is derived
    from the executor's ``base_seed`` and the worker's index in the pool, so
    two workers never share a stream and a fixed ``base_seed`` reproduces the
    same streams across runs.  Outside a process worker (thread or sync
    backend) each *thread* lazily gets its own generator derived from
    (pid, thread id) — numpy generators are not thread-safe, so the streams
    must not be shared across pool threads.
    """
    if _WORKER_RNG is not None:
        return _WORKER_RNG
    rng = getattr(_THREAD_RNGS, "rng", None)
    if rng is None:
        rng = np.random.default_rng([os.getpid(), threading.get_ident()])
        _THREAD_RNGS.rng = rng
    return rng


def _run_trial_in_process(objective: Objective, params: Dict[str, object],
                          trial_id: int, worker: Optional[str],
                          trial_time_limit: Optional[float]) -> Dict[str, object]:
    """Worker-side entry point: rebuild the trial, run it, ship the record back."""
    trial = Trial(trial_id=trial_id, params=params, worker=worker,
                  state=TrialState.RUNNING)
    execute_trial(objective, trial, trial_time_limit)
    return trial.as_record()


class _MergedFuture(Future):
    """A future resolving to the *local* trial once the remote record merged.

    ``cancel`` delegates to the underlying pool future so the batch deadline
    logic can still distinguish never-started work (retryable FAILED) from a
    running straggler (TIMED_OUT).
    """

    def __init__(self) -> None:
        super().__init__()
        self._raw: Optional[Future] = None

    def attach(self, raw: Future) -> None:
        self._raw = raw

    def cancel(self) -> bool:
        if self._raw is None:
            return super().cancel()
        return self._raw.cancel()

    def running(self) -> bool:
        if self._raw is None:
            return super().running()
        return self._raw.running()


class ProcessPoolTrialExecutor(TrialExecutor):
    """Runs trials in worker processes (CPU-bound objectives, no GIL contention).

    Objectives and their parameters must be picklable.  The remote trial is a
    fresh object in the worker process: intermediate values come back only
    with the final record, pruners cannot act inside the worker
    (``trial.should_prune()`` is always False remotely — the study warns when
    a pruner is configured on this backend), and deadline cancellation cannot
    interrupt a remote objective — the late result is discarded on arrival
    instead.  A broken pool (worker killed hard) is rebuilt transparently and
    the affected trials are recorded as FAILED, which the study's retry logic
    resubmits.
    """

    def __init__(self, n_workers: int, base_seed: int = 0) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.base_seed = int(base_seed)
        self._pool_lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise TrialExecutorClosed("executor has been closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_init_process_worker,
                    initargs=(self.base_seed, multiprocessing.Value("i", 0)))
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _submit_raw(self, objective: Objective, trial: Trial,
                    trial_time_limit: Optional[float]) -> Future:
        args = (objective, dict(trial.params), trial.trial_id, trial.worker,
                trial_time_limit)
        try:
            return self._ensure_pool().submit(_run_trial_in_process, *args)
        except RuntimeError:
            # BrokenProcessPool subclasses RuntimeError; rebuild once.
            self._discard_pool()
            return self._ensure_pool().submit(_run_trial_in_process, *args)

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        merged = _MergedFuture()
        raw = self._submit_raw(objective, trial, trial_time_limit)
        merged.attach(raw)
        raw.add_done_callback(self._merge_into(trial, merged))
        return merged

    @staticmethod
    def _merge_into(trial: Trial, merged: _MergedFuture) -> Callable[[Future], None]:
        def _done(raw: Future) -> None:
            if raw.cancelled():
                with trial._state_lock:
                    if not trial.is_finished:
                        trial.state = TrialState.FAILED
                        trial.error = ("trial never started: worker pool "
                                       "starved at the batch deadline")
                merged.set_result(trial)
                return
            exc = raw.exception()
            if exc is not None:
                # Unpicklable objective/result or a pool broken by a dying
                # worker: record as FAILED (retryable), never crash the study.
                with trial._state_lock:
                    if not trial.is_finished:
                        trial.state = TrialState.FAILED
                        trial.error = f"{type(exc).__name__}: {exc}"
                merged.set_result(trial)
                return
            record = raw.result()
            with trial._state_lock:
                if trial.is_cancelled:
                    # Late arrival from a remote straggler: discard, keep the
                    # canceller's TIMED_OUT bookkeeping intact.
                    trial.value = None
                    trial.state = TrialState.TIMED_OUT
                else:
                    trial.state = TrialState(record["state"])
                    trial.value = record["value"]
                    trial.error = record["error"]
                    trial.duration_seconds = float(record["duration_seconds"])
                    trial.intermediate_values = [
                        float(v) for v in record["intermediate_values"]]
            merged.set_result(trial)
        return _done

    def shutdown(self) -> None:
        self._discard_pool()

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
        self.shutdown()


def make_executor(n_workers: int, backend: str = "auto",
                  base_seed: int = 0) -> TrialExecutor:
    """Build the executor for ``n_workers`` workers on the requested backend.

    ``auto`` picks the cheapest sufficient backend: inline execution for one
    worker, a thread pool otherwise.  ``process`` builds a
    :class:`ProcessPoolTrialExecutor` (picklable objectives required) whose
    workers derive per-process RNGs from ``base_seed``.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(f"unknown executor backend {backend!r}; "
                         f"expected one of {EXECUTOR_BACKENDS}")
    if backend == "process":
        return ProcessPoolTrialExecutor(n_workers, base_seed=base_seed)
    if backend == "sync" or (backend == "auto" and n_workers == 1):
        return SynchronousExecutor()
    return ThreadPoolTrialExecutor(n_workers)
