"""Trial executors: the worker pool behind :meth:`repro.automl.study.Study.optimize`.

The paper's tune server (Fig. 8) dispatches generated trials to a pool of
distributed executors and collects the reported metrics.  This module provides
the in-process equivalent of that pool:

* :class:`SynchronousExecutor` runs each trial inline on the calling thread —
  the ``n_workers=1`` case, byte-for-byte identical to the historical
  sequential study loop.
* :class:`ThreadPoolTrialExecutor` runs up to ``n_workers`` trials
  concurrently on a :class:`concurrent.futures.ThreadPoolExecutor`.  It
  enforces the per-trial time limit by deadline (stragglers are cancelled
  cooperatively and their late results discarded) and survives worker death:
  if the underlying pool becomes unusable the executor transparently rebuilds
  it and resubmits.

Executors only *run* trials; proposing configurations (``ask``) and feeding
results back into the search algorithm (``tell``) stay inside the study, which
serialises them under a lock so any algorithm written for the sequential path
works unchanged.
"""

from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import Callable, List, Optional, Sequence

from repro.automl.trial import PrunedTrial, Trial, TrialCancelled, TrialState

__all__ = [
    "TrialCancelled",
    "execute_trial",
    "TrialExecutor",
    "SynchronousExecutor",
    "ThreadPoolTrialExecutor",
    "make_executor",
]

Objective = Callable[[Trial], float]


def execute_trial(objective: Objective, trial: Trial,
                  trial_time_limit: Optional[float] = None) -> Trial:
    """Run ``objective`` on ``trial`` and record outcome, duration and errors.

    This is the single place where a trial's lifecycle transitions happen, for
    both the sequential and the pooled path.  If the trial was cancelled while
    the objective ran (deadline enforcement), the late result is discarded and
    the TIMED_OUT state set by the canceller is preserved.
    """
    start = time.perf_counter()
    try:
        value = objective(trial)
        outcome, result, error = TrialState.COMPLETED, float(value), None
    except (PrunedTrial, TrialCancelled) as exc:
        cancelled = isinstance(exc, TrialCancelled) or trial.is_cancelled
        outcome = TrialState.TIMED_OUT if cancelled else TrialState.PRUNED
        result, error = None, None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - fault tolerance: even SystemExit
        # from a dying worker must not leave the trial stuck in RUNNING.
        outcome, result = TrialState.FAILED, None
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=3)}"
    duration = time.perf_counter() - start
    with trial._state_lock:
        if trial.is_cancelled:
            # A straggler finishing after its deadline: whatever the late
            # outcome was (success, failure, prune), the algorithm has already
            # been told TIMED_OUT, so the recorded state must stay TIMED_OUT
            # and the whole late outcome (value, error, duration) is
            # discarded, keeping the canceller's bookkeeping intact.
            trial.value = None
            trial.state = TrialState.TIMED_OUT
            return trial
        trial.value = result
        trial.error = error
        trial.state = outcome
        trial.duration_seconds = duration
        if (outcome == TrialState.COMPLETED and trial_time_limit is not None
                and duration > trial_time_limit):
            trial.state = TrialState.TIMED_OUT
    return trial


class TrialExecutor:
    """Minimal pool interface: submit trials, wait for a batch, shut down."""

    n_workers: int = 1

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        raise NotImplementedError

    def run_batch(self, objective: Objective, trials: Sequence[Trial],
                  trial_time_limit: Optional[float] = None) -> List[Trial]:
        """Run ``trials`` (at most ``n_workers`` of them) and block until each
        one has a terminal state, enforcing ``trial_time_limit`` as a deadline
        measured from batch submission."""
        futures = [self.submit(objective, t, trial_time_limit) for t in trials]
        done, not_done = wait(futures, timeout=trial_time_limit)
        for future, trial in zip(futures, trials):
            if future in not_done:
                trial.cancel()  # cooperative: Trial.report raises from now on
                never_started = future.cancel()
                with trial._state_lock:
                    if trial.is_finished:
                        continue
                    if never_started:
                        # The pool was starved (e.g. by a non-cooperative
                        # straggler) and this trial never ran: record it as
                        # FAILED so the study's retry logic resubmits it
                        # instead of pretending it timed out.
                        trial.state = TrialState.FAILED
                        trial.error = ("trial never started: worker pool "
                                       "starved at the batch deadline")
                    else:
                        trial.state = TrialState.TIMED_OUT
                        trial.duration_seconds = trial_time_limit or 0.0
        for future in futures:
            if future in done and future.exception() is not None:
                # Only non-Exception BaseExceptions (e.g. KeyboardInterrupt)
                # escape execute_trial: surface them on the dispatching thread
                # so the study aborts instead of looping over a dead worker.
                raise future.exception()
        return list(trials)

    def shutdown(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SynchronousExecutor(TrialExecutor):
    """Runs every trial inline on the calling thread (``n_workers=1``)."""

    n_workers = 1

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        future: "Future[Trial]" = Future()
        future.set_result(execute_trial(objective, trial, trial_time_limit))
        return future


class ThreadPoolTrialExecutor(TrialExecutor):
    """Runs trials on a ``ThreadPoolExecutor`` with fault-tolerant resubmission.

    Worker death (a pool that raises on submit, e.g. after an interpreter-level
    failure marked it broken) is handled by rebuilding the pool once per
    submission attempt, so a study survives losing its workers mid-flight.
    """

    def __init__(self, n_workers: int, thread_name_prefix: str = "anttune-worker") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._thread_name_prefix = thread_name_prefix
        self._pool_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix=self._thread_name_prefix)
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        try:
            return self._ensure_pool().submit(execute_trial, objective, trial,
                                              trial_time_limit)
        except RuntimeError:
            # BrokenThreadPool subclasses RuntimeError; a shut-down pool raises
            # RuntimeError too.  Rebuild once and resubmit.
            self._discard_pool()
            return self._ensure_pool().submit(execute_trial, objective, trial,
                                              trial_time_limit)

    def shutdown(self) -> None:
        self._discard_pool()


def make_executor(n_workers: int) -> TrialExecutor:
    """Pick the cheapest executor that provides ``n_workers`` workers."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if n_workers == 1:
        return SynchronousExecutor()
    return ThreadPoolTrialExecutor(n_workers)
