"""Trial executors: the worker pool behind :meth:`repro.automl.study.Study.optimize`.

The paper's tune server (Fig. 8) dispatches generated trials to a pool of
distributed executors and collects the reported metrics.  This module provides
the in-process equivalent of that pool:

* :class:`SynchronousExecutor` runs each trial inline on the calling thread —
  the ``n_workers=1`` case, byte-for-byte identical to the historical
  sequential study loop.
* :class:`ThreadPoolTrialExecutor` runs up to ``n_workers`` trials
  concurrently on a :class:`concurrent.futures.ThreadPoolExecutor`.  It
  enforces the per-trial time limit by deadline (stragglers are cancelled
  cooperatively and their late results discarded) and survives worker death:
  if the underlying pool becomes unusable the executor transparently rebuilds
  it and resubmits.
* :class:`ProcessPoolTrialExecutor` runs trials in separate worker processes,
  sidestepping the GIL for CPU-bound objectives.  Objectives (and their
  sampled parameters) must be picklable; each worker process derives its own
  RNG (:func:`worker_rng`) so stochastic objectives stay reproducible per
  process.

Live trial telemetry
--------------------

Every executor exposes the same two telemetry hooks, so schedulers treat all
backends uniformly:

* :meth:`TrialExecutor.drain_telemetry` mirrors intermediate values reported
  by in-flight trials into the caller's :class:`~repro.automl.trial.Trial`
  objects.  Thread and sync backends share the trial object with the
  objective, so reports land directly and the drain is a no-op; the process
  backend streams ``(ticket, step, value)`` records through a shared-memory
  ring (:class:`~repro.automl.transport.TelemetryTransport`) and the drain
  empties it.
* :meth:`TrialExecutor.kill_trial` delivers a kill signal (deadline, prune,
  cancel or preempt).  Local backends mark the shared trial; the process
  backend also sets the submission's kill flag in the shared-memory
  transport, which the remote worker reads (one array load, no RPC) on every
  ``trial.report(...)`` — so a killed remote trial stops at its next report
  instead of running to its deadline.

Executors only *run* trials; proposing configurations (``ask``) and feeding
results back into the search algorithm (``tell``) stay inside the study, which
serialises them under a lock so any algorithm written for the sequential path
works unchanged.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.sharedctypes import Synchronized

import numpy as np

from repro.automl import metrics as _metrics
from repro.automl.transport import TelemetryTransport
from repro.automl.trial import (
    KILL_CANCELLED,
    KILL_DEADLINE,
    PrunedTrial,
    Trial,
    TrialCancelled,
    TrialState,
)

__all__ = [
    "TrialCancelled",
    "execute_trial",
    "expire_trial",
    "TrialExecutor",
    "TrialExecutorClosed",
    "SynchronousExecutor",
    "ThreadPoolTrialExecutor",
    "ProcessPoolTrialExecutor",
    "worker_rng",
    "make_executor",
]

EXECUTOR_BACKENDS = ("auto", "sync", "thread", "process", "ticket")

# A trial that has not started is waiting on the pool, which may be serving
# another owner (a co-tenant job): its own clock hasn't begun, so it must not
# be failed at trial_time_limit — but the wait cannot be unbounded either (a
# wedged pool would hang the study).  This factor bounds the queue wait.
STARVATION_GRACE_FACTOR = 5.0

# How often a waiting batch wakes up to run its tick callback (telemetry
# draining, mid-trial pruning, cancellation checks).
TICK_INTERVAL = 0.05

# Parent-side trial metrics, labelled per backend.  Recorded from future
# done-callbacks so the process backend (whose objective runs in another
# interpreter) is observed exactly like the local ones.
_QUEUE_WAIT_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_trial_queue_wait_seconds",
    "Seconds a submitted trial waited before its objective started.",
    labels=("backend",))
_RUN_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_trial_run_seconds",
    "Trial objective wall-clock runtime (terminal trials).",
    labels=("backend",))
_TRIALS_TOTAL = _metrics.REGISTRY.counter(
    "anttune_trials_total", "Trials resolved, by backend and terminal state.",
    labels=("backend", "state"))
_TRANSPORT_DROPPED = _metrics.REGISTRY.counter(
    "anttune_transport_dropped_total",
    "Intermediate report records shed by the shared-memory telemetry ring. "
    "Cumulative across pool rebuilds (mirrors TrialExecutor.telemetry_dropped).",
    labels=("backend",))


class TrialExecutorClosed(RuntimeError):
    """Submitting to an executor after ``close()``: no pool rebuild allowed."""

Objective = Callable[[Trial], float]
TickFn = Optional[Callable[[], bool]]


def execute_trial(objective: Objective, trial: Trial,
                  trial_time_limit: Optional[float] = None) -> Trial:
    """Run ``objective`` on ``trial`` and record outcome, duration and errors.

    This is the single place where a trial's lifecycle transitions happen, for
    both the sequential and the pooled path (it also runs worker-side inside
    process workers).  A kill signal observed while the objective ran maps to
    the matching terminal state: deadline kills to ``TIMED_OUT``, prune kills
    to ``PRUNED``, job cancellation to ``CANCELLED``.  If the canceller's
    bookkeeping already recorded a terminal state, the late outcome is
    discarded so the algorithm's view stays consistent.

    Args:
        objective: the user callable evaluated on the trial.
        trial: the trial to run; mutated in place.
        trial_time_limit: wall-clock budget used to post-hoc mark an overlong
            (but completed) run as ``TIMED_OUT``.

    Returns:
        The same ``trial``, now in a terminal state.
    """
    start = time.perf_counter()
    trial.started_at = start
    try:
        value = objective(trial)
        outcome, result, error = TrialState.COMPLETED, float(value), None
    except (PrunedTrial, TrialCancelled) as exc:
        outcome = trial.killed_state
        if outcome is None:
            # The objective raised on its own (cooperative should_prune(), or
            # a legacy TrialCancelled): classify by the exception type.
            outcome = (TrialState.TIMED_OUT if isinstance(exc, TrialCancelled)
                       else TrialState.PRUNED)
        result, error = None, None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - fault tolerance: even SystemExit
        # from a dying worker must not leave the trial stuck in RUNNING.
        outcome, result = TrialState.FAILED, None
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=3)}"
    duration = time.perf_counter() - start
    with trial._state_lock:
        if trial.is_finished:
            # A straggler finishing after its canceller already recorded a
            # terminal state (deadline or job cancellation): the algorithm has
            # been — or is about to be — told that state, so the whole late
            # outcome (value, error, duration) is discarded, keeping the
            # canceller's bookkeeping intact.
            return trial
        trial.value = result
        trial.error = error
        trial.state = outcome
        trial.duration_seconds = duration
        if (outcome == TrialState.COMPLETED and trial_time_limit is not None
                and duration > trial_time_limit):
            trial.state = TrialState.TIMED_OUT
    return trial


def expire_trial(trial: Trial, future: "Future[Trial]", limit: float,
                 reason: str = KILL_DEADLINE) -> None:
    """Kill a trial (deadline passed or job cancelled) and record its state.

    A trial whose future could still be cancelled never ran: under a deadline
    kill it is recorded FAILED (retryable starvation), not TIMED_OUT; under a
    job cancellation it is recorded CANCELLED either way.  A running straggler
    is killed cooperatively and recorded TIMED_OUT (deadline) or CANCELLED
    (job cancel); its late result is discarded on arrival.

    Args:
        trial: the in-flight trial.
        future: its executor future (cancelled when still queued).
        limit: the per-trial time limit, recorded as the duration of a
            timed-out straggler.
        reason: :data:`~repro.automl.trial.KILL_DEADLINE` (default) or
            :data:`~repro.automl.trial.KILL_CANCELLED`.
    """
    trial.kill(reason)  # cooperative: Trial.report raises from now on
    never_started = future.cancel()
    with trial._state_lock:
        if trial.is_finished:
            return
        if reason == KILL_CANCELLED:
            trial.state = TrialState.CANCELLED
        elif never_started:
            trial.state = TrialState.FAILED
            trial.error = ("trial never started: worker pool starved at "
                           "the deadline")
        else:
            trial.state = TrialState.TIMED_OUT
            trial.duration_seconds = limit


class TrialExecutor:
    """Minimal pool interface: submit trials, wait for a batch, shut down.

    Subclasses provide the pool; the base class supplies batch waiting with
    deadline enforcement and the default (local, shared-object) telemetry
    behaviour.
    """

    n_workers: int = 1

    #: Metrics label for this executor's pool flavour.
    backend_name: str = "custom"

    def _observe_trial(self, trial: Trial,
                       future: "Future[Trial]") -> "Future[Trial]":
        """Attach per-trial metric recording to a submission's future.

        Records, when the future resolves: the terminal-state counter, the
        queue wait (submit -> observed start) and the objective runtime —
        all labelled with :attr:`backend_name`.  Metric failures are
        swallowed; observation must never break result delivery.
        """
        submitted = time.perf_counter()
        backend = self.backend_name

        def _done(_: "Future[Trial]") -> None:
            try:
                state = trial.state.value if trial.is_finished else "unknown"
                _TRIALS_TOTAL.labels(backend=backend, state=state).inc()
                started = trial.started_at
                if started is not None and started >= submitted:
                    _QUEUE_WAIT_SECONDS.labels(backend=backend).observe(
                        started - submitted)
                duration = trial.duration_seconds
                if duration is not None:
                    _RUN_SECONDS.labels(backend=backend).observe(duration)
            except Exception:  # noqa: BLE001 - never fail the done-callback
                pass
        future.add_done_callback(_done)
        return future

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Schedule one trial and return a future resolving to it.

        Args:
            objective: the user callable to evaluate.
            trial: the trial record to run and mutate.
            trial_time_limit: per-trial wall-clock budget (None = unlimited).

        Returns:
            A future whose result is ``trial`` once it reached a terminal
            state.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Live telemetry
    # ------------------------------------------------------------------ #
    def drain_telemetry(self) -> int:
        """Mirror streamed intermediate reports into the local trials.

        Thread and sync backends share trial objects with the objective, so
        reports are already visible and the drain is a no-op; the process
        backend overrides this to empty its shared-memory report ring.

        Returns:
            The number of reports mirrored by this call.
        """
        # A legacy subclass may still override pump_telemetry (the hook's
        # previous name): delegate so its telemetry keeps draining.
        pump = type(self).pump_telemetry
        if pump is not TrialExecutor.pump_telemetry:
            return pump(self)
        return 0

    def pump_telemetry(self) -> int:
        """Deprecated alias of :meth:`drain_telemetry` (kept from PR 3).

        Works in both directions for direct extensions of this base class:
        legacy *callers* of ``pump_telemetry`` reach a modern
        ``drain_telemetry`` override, and legacy *overriders* of
        ``pump_telemetry`` are still invoked by the base
        ``drain_telemetry``.  Each base method only ever delegates to an
        actual subclass override of the other name, so a legacy override
        calling ``super().pump_telemetry()`` gets PR 3's base behaviour
        (0) instead of recursing.  Caveat: a subclass of a *concrete*
        executor (e.g. :class:`ProcessPoolTrialExecutor`) that overrides
        only ``pump_telemetry`` is not reached by the parent's
        ``drain_telemetry`` — augment ``drain_telemetry`` instead.
        """
        drain = type(self).drain_telemetry
        if drain is not TrialExecutor.drain_telemetry:
            return drain(self)
        return 0

    @property
    def telemetry_dropped(self) -> int:
        """Report records shed by the telemetry channel since construction.

        Thread and sync backends share trial objects with the objective, so
        nothing is ever shed (0); the process backend reports its
        shared-memory ring's overflow count — cumulative across pool rebuilds
        — so backpressure is observable through ``server.status()``.
        """
        return 0

    def kill_trial(self, trial: Trial, reason: str = KILL_CANCELLED) -> None:
        """Deliver a kill signal to an in-flight trial (cooperative).

        The objective observes the kill at its next ``trial.report(...)``.
        The process backend overrides this to also signal the remote worker.

        Args:
            trial: the trial to stop.
            reason: a kill reason from :mod:`repro.automl.trial`
                (``KILL_DEADLINE``, ``KILL_PRUNED``, ``KILL_CANCELLED`` or
                ``KILL_PREEMPTED``).
        """
        trial.kill(reason)

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run_batch(self, objective: Objective, trials: Sequence[Trial],
                  trial_time_limit: Optional[float] = None,
                  hard_deadline: Optional[float] = None,
                  tick_fn: TickFn = None) -> List[Trial]:
        """Run ``trials`` (at most ``n_workers`` of them) and block until each
        one has a terminal state.

        ``trial_time_limit`` is measured from each trial's actual *start*, not
        from batch submission, so queue wait behind other work (e.g. another
        job sharing the pool) doesn't count against the limit.  Queue wait is
        still bounded: a trial that hasn't started within one limit of the
        batch's last observed start — or within ``STARVATION_GRACE_FACTOR``
        limits of submission when nothing of ours ever started — is recorded
        FAILED ("never started") for the study's retry logic to resubmit.
        ``hard_deadline`` (absolute ``perf_counter`` time, from the study's
        total time limit) expires everything still pending when reached, so a
        wedged pool can never hang the study past its total budget.

        Args:
            objective: the user callable to evaluate.
            trials: the batch to run.
            trial_time_limit: per-trial wall-clock budget.
            hard_deadline: absolute time after which everything expires.
            tick_fn: invoked every :data:`TICK_INTERVAL` while waiting; used
                by schedulers to drain telemetry and prune mid-trial.  A
                ``True`` return cancels every still-pending trial (job
                cancellation) and ends the batch immediately.

        Returns:
            The input trials, each in a terminal state.
        """
        futures = [self.submit(objective, t, trial_time_limit) for t in trials]
        if trial_time_limit is None and hard_deadline is None and tick_fn is None:
            wait(futures)
        else:
            self._wait_with_deadlines(list(zip(futures, trials)),
                                      trial_time_limit, hard_deadline, tick_fn)
        for future in futures:
            if future.done() and not future.cancelled() and future.exception() is not None:
                # Only non-Exception BaseExceptions (e.g. KeyboardInterrupt)
                # escape execute_trial: surface them on the dispatching thread
                # so the study aborts instead of looping over a dead worker.
                raise future.exception()
        return list(trials)

    def _wait_with_deadlines(self, pairs: List, limit: Optional[float],
                             hard_deadline: Optional[float],
                             tick_fn: TickFn = None) -> None:
        """Enforce start-based deadlines and tick callbacks over (future, trial) pairs."""
        pending = dict(pairs)
        submit_time = time.perf_counter()
        grace = None if limit is None else limit * STARVATION_GRACE_FACTOR
        latest_start: Optional[float] = None  # None until the pool serves us
        while pending:
            if tick_fn is not None and tick_fn():
                # Job cancellation: nothing pending may keep running.
                for future, trial in pending.items():
                    self.kill_trial(trial, KILL_CANCELLED)
                    expire_trial(trial, future, limit or 0.0,
                                 reason=KILL_CANCELLED)
                return
            now = time.perf_counter()
            if hard_deadline is not None and now >= hard_deadline:
                # Total study budget spent: nothing may outlive it.
                for future, trial in pending.items():
                    self.kill_trial(trial, KILL_DEADLINE)
                    expire_trial(trial, future, limit or 0.0)
                return
            for future, trial in list(pending.items()):
                if future.done():
                    pending.pop(future)
                    continue
                if trial.started_at is None and future.running():
                    # Process workers never ship started_at back mid-run; the
                    # first time the future reports running is the best proxy.
                    trial.started_at = now
                if trial.started_at is not None:
                    latest_start = max(latest_start or trial.started_at,
                                       trial.started_at)
            next_deadline: Optional[float] = hard_deadline
            for future, trial in list(pending.items()):
                if limit is None:
                    continue  # only the hard deadline applies
                start = trial.started_at
                if start is not None:
                    deadline = start + limit
                elif latest_start is not None:
                    # The pool is serving this batch but not this trial: a
                    # non-cooperative straggler of ours is starving it.
                    deadline = min(latest_start + limit, submit_time + grace)
                else:
                    # Nothing of ours started: the pool is busy with *other*
                    # work (another job) — wait, but not unboundedly.
                    deadline = submit_time + grace
                if now < deadline:
                    next_deadline = (deadline if next_deadline is None
                                     else min(next_deadline, deadline))
                    continue
                self.kill_trial(trial, KILL_DEADLINE)
                expire_trial(trial, future, limit)
                # Stop waiting for it; a zombie straggler's late result is
                # discarded on arrival via the kill flag.
                pending.pop(future)
            if pending:
                timeout = (None if next_deadline is None
                           else max(0.0, next_deadline - now) + 0.01)
                if limit is not None:
                    # Cap the wait so a trial that starts mid-sleep still gets
                    # its deadline enforced promptly.
                    timeout = limit if timeout is None else min(timeout, limit)
                if tick_fn is not None:
                    # Wake regularly to drain telemetry and observe kills.
                    timeout = (TICK_INTERVAL if timeout is None
                               else min(timeout, TICK_INTERVAL))
                wait(list(pending), timeout=timeout, return_when=FIRST_COMPLETED)

    def shutdown(self) -> None:
        """Release pool resources (idempotent; a later submit may rebuild)."""

    def close(self) -> None:
        """Shut down *permanently*: no submit may rebuild the pool afterwards.

        ``shutdown`` models recoverable worker death (the pool is rebuilt on
        the next submit); ``close`` is for owners going away for good — e.g.
        the tune server — where a silent rebuild would leak worker threads.
        """
        self.shutdown()

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SynchronousExecutor(TrialExecutor):
    """Runs every trial inline on the calling thread (``n_workers=1``).

    There is no concurrency to stream telemetry into: pruning happens
    cooperatively inside the objective (``trial.should_prune()``), exactly as
    in the historical sequential loop.
    """

    n_workers = 1
    backend_name = "sync"

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Run the trial inline and return an already-resolved future."""
        future: "Future[Trial]" = Future()
        self._observe_trial(trial, future)
        future.set_result(execute_trial(objective, trial, trial_time_limit))
        return future


class ThreadPoolTrialExecutor(TrialExecutor):
    """Runs trials on a ``ThreadPoolExecutor`` with fault-tolerant resubmission.

    Worker death (a pool that raises on submit, e.g. after an interpreter-level
    failure marked it broken) is handled by rebuilding the pool once per
    submission attempt, so a study survives losing its workers mid-flight.
    Trials share their objects with the objective threads, so intermediate
    reports are immediately visible to the scheduler and kill signals take
    effect at the straggler's next report.
    """

    backend_name = "thread"

    def __init__(self, n_workers: int, thread_name_prefix: str = "anttune-worker") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._thread_name_prefix = thread_name_prefix
        self._pool_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise TrialExecutorClosed("executor has been closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix=self._thread_name_prefix)
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Schedule the trial on the thread pool (rebuilding a broken pool once).

        Raises:
            TrialExecutorClosed: the executor was permanently closed.
        """
        try:
            future = self._ensure_pool().submit(execute_trial, objective,
                                                trial, trial_time_limit)
        except RuntimeError:
            # BrokenThreadPool subclasses RuntimeError; a shut-down pool raises
            # RuntimeError too.  Rebuild once and resubmit.
            self._discard_pool()
            future = self._ensure_pool().submit(execute_trial, objective,
                                                trial, trial_time_limit)
        return self._observe_trial(trial, future)

    def shutdown(self) -> None:
        """Release the pool; a later submit transparently rebuilds it."""
        self._discard_pool()

    def close(self) -> None:
        """Release the pool permanently; further submits raise."""
        with self._pool_lock:
            self._closed = True
        self.shutdown()


# --------------------------------------------------------------------------- #
# Process-pool backend
# --------------------------------------------------------------------------- #
_WORKER_RNG: Optional[np.random.Generator] = None
_THREAD_RNGS = threading.local()
# Telemetry endpoint inside a worker process (set by the pool initializer):
# the shared-memory transport carries (ticket, step, value) reports up and
# per-submission kill flags down (read on every report, one array load).
_WORKER_TRANSPORT: Optional[TelemetryTransport] = None


def _init_process_worker(base_seed: int, worker_counter: "Synchronized",
                         transport: Optional[TelemetryTransport] = None) -> None:
    """Process-pool initializer: derive this worker's RNG, wire telemetry.

    The shared counter hands each worker a deterministic index 0..n-1, so for
    a fixed ``base_seed`` the pool's RNG streams are reproducible across runs
    (pids are not).  ``transport`` is the shared-memory telemetry channel to
    the parent process.
    """
    global _WORKER_RNG, _WORKER_TRANSPORT
    with worker_counter.get_lock():
        worker_index = worker_counter.value
        worker_counter.value += 1
    _WORKER_RNG = np.random.default_rng([int(base_seed), worker_index])
    _WORKER_TRANSPORT = transport


def worker_rng() -> np.random.Generator:
    """The per-worker RNG available to objectives running on an executor.

    Inside a :class:`ProcessPoolTrialExecutor` worker the generator is derived
    from the executor's ``base_seed`` and the worker's index in the pool, so
    two workers never share a stream and a fixed ``base_seed`` reproduces the
    same streams across runs.  Outside a process worker (thread or sync
    backend) each *thread* lazily gets its own generator derived from
    (pid, thread id) — numpy generators are not thread-safe, so the streams
    must not be shared across pool threads.

    Returns:
        The calling worker's (or thread's) private generator.
    """
    if _WORKER_RNG is not None:
        return _WORKER_RNG
    rng = getattr(_THREAD_RNGS, "rng", None)
    if rng is None:
        rng = np.random.default_rng([os.getpid(), threading.get_ident()])
        _THREAD_RNGS.rng = rng
    return rng


def _telemetry_hook(ticket: int, kill_slot: int):
    """Worker-side report hook: stream the value up, observe kill signals."""
    def _hook(trial: Trial, value: float, step: Optional[int]) -> None:
        transport = _WORKER_TRANSPORT
        if transport is None:
            return
        try:
            transport.push(ticket, len(trial.intermediate_values) - 1, value)
        except Exception:  # noqa: BLE001 - a torn-down parent transport must
            pass           # never crash a worker mid-objective.
        reason = transport.kill_reason(kill_slot)
        if reason is not None:
            trial.kill(reason)
            trial._raise_if_killed()
    return _hook


def _run_trial_in_process(objective: Objective, params: Dict[str, object],
                          trial_id: int, ticket: int, kill_slot: int,
                          worker: Optional[str],
                          trial_time_limit: Optional[float]) -> Dict[str, object]:
    """Worker-side entry point: rebuild the trial, run it, ship the record back."""
    trial = Trial(trial_id=trial_id, params=params, worker=worker,
                  state=TrialState.RUNNING)
    trial._report_hook = _telemetry_hook(ticket, kill_slot)
    execute_trial(objective, trial, trial_time_limit)
    return trial.as_record()


class _MergedFuture(Future):
    """A future resolving to the *local* trial once the remote record merged.

    ``cancel`` delegates to the underlying pool future so the batch deadline
    logic can still distinguish never-started work (retryable FAILED) from a
    running straggler (TIMED_OUT).
    """

    def __init__(self) -> None:
        super().__init__()
        self._raw: Optional[Future] = None

    def attach(self, raw: Future) -> None:
        self._raw = raw

    def cancel(self) -> bool:
        if self._raw is None:
            return super().cancel()
        return self._raw.cancel()

    def running(self) -> bool:
        if self._raw is None:
            return super().running()
        return self._raw.running()


class ProcessPoolTrialExecutor(TrialExecutor):
    """Runs trials in worker processes (CPU-bound objectives, no GIL contention).

    Objectives and their parameters must be picklable.  The remote trial is a
    fresh object in the worker process, but it is *not* blind any more: every
    ``trial.report(...)`` pushes ``(ticket, step, value)`` into a
    shared-memory ring (:class:`~repro.automl.transport.TelemetryTransport`),
    :meth:`drain_telemetry` mirrors those values into the caller's trial
    objects mid-run, and :meth:`kill_trial` sets the submission's kill flag in
    the same transport so the remote objective's next report raises and the
    trial stops early (pruning, cancellation, deadlines, preemption).  There
    is no Manager proxy and no per-report RPC: the worker's kill check is a
    single shared-array read.  A broken pool (worker killed hard) is rebuilt
    transparently and the affected trials are recorded as FAILED, which the
    study's retry logic resubmits.
    """

    backend_name = "process"

    def __init__(self, n_workers: int, base_seed: int = 0) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.base_seed = int(base_seed)
        self._pool_lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        # Telemetry plumbing: tickets are executor-unique submission ids (two
        # jobs sharing this pool may both run a "trial 0", so trial_id alone
        # cannot key the channel).
        self._telemetry_lock = threading.Lock()
        self._ticket_counter = itertools.count()
        self._live: Dict[int, Trial] = {}            # ticket -> local trial
        self._ticket_by_trial: Dict[int, int] = {}   # id(trial) -> ticket
        # ticket -> (owning transport, kill slot): the transport reference is
        # kept per submission so a pool rebuild mid-flight can't release or
        # set a stale slot against the *new* transport's table.
        self._slot_by_ticket: Dict[int, tuple] = {}
        # Kills that raced submit() before its kill slot was assigned: the
        # reason parks here and is applied the moment the slot exists, so the
        # remote signal is never lost in that window.
        self._pending_kills: Dict[int, str] = {}
        self._transport: Optional[TelemetryTransport] = None
        # Ring-overflow drops accumulated from transports of discarded pools,
        # so telemetry_dropped stays cumulative across rebuilds.
        self._dropped_baseline = 0
        # How much of telemetry_dropped this instance already mirrored into
        # the anttune_transport_dropped_total metric (delta accounting, so
        # several executors in one process sum instead of clobbering).
        self._dropped_mirrored = 0

    def _ensure_pool(self) -> "tuple[ProcessPoolExecutor, TelemetryTransport]":
        """The live (pool, transport) pair, created together.

        Returned as a pair read under one lock hold: a concurrent rebuild
        must never let a submission pair the old pool with the new
        transport's kill slots (the worker would watch the wrong table).
        """
        with self._pool_lock:
            if self._closed:
                raise TrialExecutorClosed("executor has been closed")
            if self._pool is None:
                ctx = multiprocessing.get_context()
                self._transport = TelemetryTransport(ctx=ctx)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_init_process_worker,
                    initargs=(self.base_seed, ctx.Value("i", 0),
                              self._transport))
            return self._pool, self._transport

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            if self._transport is not None:
                self._dropped_baseline += self._transport.dropped
            self._transport = None
        if pool is not None:
            pool.shutdown(wait=False)
        # The transport's shared memory is released with its last reference
        # (parent dict entries above, worker globals when the pool dies).
        self._mirror_dropped()

    def _submit_raw(self, objective: Objective, trial: Trial, ticket: int,
                    trial_time_limit: Optional[float]) -> Future:
        def args(pool_transport: Optional[TelemetryTransport]) -> tuple:
            # Slots are allocated per attempt from the transport created
            # *with* the pool being submitted to (a rebuilt pool gets a
            # fresh transport, and mixing the two would point the worker at
            # the wrong kill table).
            slot = (-1 if pool_transport is None
                    else pool_transport.allocate_kill_slot())
            with self._telemetry_lock:
                self._slot_by_ticket[ticket] = (pool_transport, slot)
                # A kill that raced us before the slot existed lands now
                # (trial.kill_reason also covers a kill consumed by a first
                # submit attempt whose pool then broke and was rebuilt).
                reason = self._pending_kills.pop(ticket, None) or trial.kill_reason
                if reason is not None and pool_transport is not None:
                    pool_transport.set_kill(slot, reason)
            return (objective, dict(trial.params), trial.trial_id, ticket,
                    slot, trial.worker, trial_time_limit)
        try:
            pool, transport = self._ensure_pool()
            return pool.submit(_run_trial_in_process, *args(transport))
        except RuntimeError:
            # BrokenProcessPool subclasses RuntimeError; rebuild once.
            self._discard_pool()
            pool, transport = self._ensure_pool()
            return pool.submit(_run_trial_in_process, *args(transport))

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        """Ship the trial to a worker process; the future merges its record back.

        Raises:
            TrialExecutorClosed: the executor was permanently closed.
        """
        merged = _MergedFuture()
        ticket = next(self._ticket_counter)
        # Register before submitting: a fast worker's first report must find
        # its ticket, or the report would be silently dropped.
        with self._telemetry_lock:
            self._live[ticket] = trial
            self._ticket_by_trial[id(trial)] = ticket
        try:
            raw = self._submit_raw(objective, trial, ticket, trial_time_limit)
        except BaseException:
            self._forget(ticket, trial)
            raise
        merged.attach(raw)
        self._observe_trial(trial, merged)
        raw.add_done_callback(self._merge_into(trial, ticket, merged))
        return merged

    def _forget(self, ticket: int, trial: Trial) -> None:
        """Drop a finished submission from the telemetry registries."""
        with self._telemetry_lock:
            self._live.pop(ticket, None)
            self._ticket_by_trial.pop(id(trial), None)
            self._pending_kills.pop(ticket, None)
            transport, slot = self._slot_by_ticket.pop(ticket, (None, -1))
        if transport is not None:
            transport.release_kill_slot(slot)

    def drain_telemetry(self) -> int:
        """Empty the shared-memory report ring, mirroring into local trials.

        Returns:
            The number of reports mirrored by this call.
        """
        with self._pool_lock:
            transport = self._transport
        if transport is None:
            return 0
        mirrored = 0
        # One lock hold for the whole batch — and the drain itself happens
        # under it: two schedulers sharing this executor both tick, and
        # draining outside the lock would let their batches apply out of
        # order (later steps first), NaN-padding over real values.  Workers
        # pushing only contend for the transport's own lock, never this one.
        with self._telemetry_lock:
            for ticket, step, value in transport.drain():
                trial = self._live.get(ticket)
                if trial is None:
                    continue  # late report from an already-merged trial
                with trial._state_lock:
                    # The final record replaces the whole list on merge; until
                    # then mirror in step order.  A gap means ring overflow
                    # shed this trial's older records: pad the missing steps
                    # with NaN so the surviving report keeps its *true* index
                    # (the pruner and TrialReport steps stay honest, and
                    # mirroring keeps working after a burst) — the
                    # authoritative final record backfills the pads on merge.
                    if (not trial.is_finished
                            and step >= len(trial.intermediate_values)):
                        values = trial.intermediate_values
                        while len(values) < step:
                            values.append(float("nan"))
                        values.append(float(value))
                        mirrored += 1
        self._mirror_dropped()
        return mirrored

    def _mirror_dropped(self) -> None:
        """Mirror new drops into ``anttune_transport_dropped_total``.

        Delta accounting against what this instance already exported, so the
        metric keeps the counter contract (monotonic, cumulative across pool
        rebuilds) even with several process executors alive in one process.
        """
        total = self.telemetry_dropped
        with self._telemetry_lock:
            delta = total - self._dropped_mirrored
            if delta > 0:
                self._dropped_mirrored = total
        if delta > 0:
            _TRANSPORT_DROPPED.labels(backend=self.backend_name).inc(delta)

    @property
    def telemetry_dropped(self) -> int:
        """Report records shed to ring overflow since construction.

        **Cumulative across pool rebuilds**: when a broken pool is discarded,
        its transport's drop count folds into a baseline that every later
        read includes — the counter never goes backwards, matching the
        ``anttune_transport_dropped_total`` metric it feeds.
        """
        with self._pool_lock:
            live = 0 if self._transport is None else self._transport.dropped
            return self._dropped_baseline + live

    def kill_trial(self, trial: Trial, reason: str = KILL_CANCELLED) -> None:
        """Kill locally and signal the remote worker via the shared kill flag."""
        trial.kill(reason)
        with self._telemetry_lock:
            ticket = self._ticket_by_trial.get(id(trial))
            if ticket is None or ticket not in self._live:
                # Already merged: the flag's slot has been (or is being)
                # recycled — setting it now could kill an unrelated later
                # submission.
                return
            entry = self._slot_by_ticket.get(ticket)
            if entry is None:
                # submit() registered the ticket but has not assigned its
                # kill slot yet: park the reason; args() applies it as soon
                # as the slot exists, so the remote signal is never lost.
                self._pending_kills[ticket] = reason
                return
            transport, slot = entry
            # Set under the lock: _forget() pops the slot under the same lock
            # first, so either it sees our entry and clears the flag on
            # release, or we saw the ticket gone and skipped the write.
            if transport is not None:
                transport.set_kill(slot, reason)

    def _merge_into(self, trial: Trial, ticket: int,
                    merged: _MergedFuture) -> Callable[[Future], None]:
        def _done(raw: Future) -> None:
            self._forget(ticket, trial)
            if raw.cancelled():
                with trial._state_lock:
                    if not trial.is_finished:
                        trial.state = TrialState.FAILED
                        trial.error = ("trial never started: worker pool "
                                       "starved at the batch deadline")
                merged.set_result(trial)
                return
            exc = raw.exception()
            if exc is not None:
                # Unpicklable objective/result or a pool broken by a dying
                # worker: record as FAILED (retryable), never crash the study.
                with trial._state_lock:
                    if not trial.is_finished:
                        trial.state = TrialState.FAILED
                        trial.error = f"{type(exc).__name__}: {exc}"
                merged.set_result(trial)
                return
            record = raw.result()
            with trial._state_lock:
                if not trial.is_finished:
                    # A canceller that already recorded a terminal state wins;
                    # otherwise the remote record is authoritative.
                    trial.state = TrialState(record["state"])
                    trial.value = record["value"]
                    trial.error = record["error"]
                    trial.duration_seconds = float(record["duration_seconds"])
                    trial.intermediate_values = [
                        float(v) for v in record["intermediate_values"]]
            merged.set_result(trial)
        return _done

    def shutdown(self) -> None:
        """Release the pool and telemetry transport (rebuilt on demand)."""
        self._discard_pool()

    def close(self) -> None:
        """Release everything permanently; further submits raise."""
        with self._pool_lock:
            self._closed = True
        self.shutdown()


def make_executor(n_workers: int, backend: str = "auto",
                  base_seed: int = 0,
                  lease_seconds: Optional[float] = None) -> TrialExecutor:
    """Build the executor for ``n_workers`` workers on the requested backend.

    ``auto`` picks the cheapest sufficient backend: inline execution for one
    worker, a thread pool otherwise.  ``process`` builds a
    :class:`ProcessPoolTrialExecutor` (picklable objectives required) whose
    workers derive per-process RNGs from ``base_seed``.  ``ticket`` builds
    the pull-based board (`repro.automl.remote.tickets`): no local pool at
    all — remote worker agents claim trials over HTTP, with ``n_workers``
    bounding how many tickets are kept in flight and ``lease_seconds``
    their heartbeat deadline.

    Args:
        n_workers: pool size (>= 1).
        backend: one of ``"auto"``, ``"sync"``, ``"thread"``, ``"process"``,
            ``"ticket"``.
        base_seed: seed for the process workers' RNG streams.
        lease_seconds: ticket-backend lease duration (None = its default);
            rejected for the local backends, which have no leases.

    Returns:
        A ready :class:`TrialExecutor`.

    Raises:
        ValueError: for a non-positive worker count, unknown backend, or
            ``lease_seconds`` on a non-ticket backend.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(f"unknown executor backend {backend!r}; "
                         f"expected one of {EXECUTOR_BACKENDS}")
    if backend == "ticket":
        from repro.automl.remote.tickets import (
            DEFAULT_LEASE_SECONDS,
            TicketTrialExecutor,
        )
        return TicketTrialExecutor(
            n_workers,
            lease_seconds=(DEFAULT_LEASE_SECONDS if lease_seconds is None
                           else lease_seconds))
    if lease_seconds is not None:
        raise ValueError(
            f"lease_seconds only applies to the 'ticket' backend, "
            f"not {backend!r}")
    if backend == "process":
        return ProcessPoolTrialExecutor(n_workers, base_seed=base_seed)
    if backend == "sync" or (backend == "auto" and n_workers == 1):
        return SynchronousExecutor()
    return ThreadPoolTrialExecutor(n_workers)
