"""Hyper-parameter search spaces (Fig. 3 style configuration).

A :class:`SearchSpace` is an ordered mapping from parameter names to
:class:`ParamSpec` objects.  Besides sampling, the space can encode any
configuration to a point in the unit hyper-cube and back, which is what the
model-based optimisers (Bayesian optimisation, RACOS) operate on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SearchSpaceError

__all__ = ["ParamSpec", "Uniform", "LogUniform", "IntUniform", "Choice", "SearchSpace"]


class ParamSpec:
    """Base class of one hyper-parameter's domain."""

    def sample(self, rng: np.random.Generator):
        raise NotImplementedError

    def to_unit(self, value) -> float:
        """Map a value into [0, 1]."""
        raise NotImplementedError

    def from_unit(self, unit: float):
        """Map a [0, 1] coordinate back to a value in the domain."""
        raise NotImplementedError

    def grid(self, resolution: int) -> List:
        """A finite set of representative values (used by grid search)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Uniform(ParamSpec):
    """A float drawn uniformly from [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise SearchSpaceError(f"Uniform requires low < high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def to_unit(self, value: float) -> float:
        return float(np.clip((value - self.low) / (self.high - self.low), 0.0, 1.0))

    def from_unit(self, unit: float) -> float:
        return float(self.low + np.clip(unit, 0.0, 1.0) * (self.high - self.low))

    def grid(self, resolution: int) -> List[float]:
        return [self.from_unit(u) for u in np.linspace(0, 1, resolution)]


@dataclass(frozen=True)
class LogUniform(ParamSpec):
    """A float drawn log-uniformly from [low, high] (e.g. learning rates)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 < self.low < self.high:
            raise SearchSpaceError(f"LogUniform requires 0 < low < high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(np.exp(rng.uniform(math.log(self.low), math.log(self.high))))

    def to_unit(self, value: float) -> float:
        span = math.log(self.high) - math.log(self.low)
        return float(np.clip((math.log(value) - math.log(self.low)) / span, 0.0, 1.0))

    def from_unit(self, unit: float) -> float:
        span = math.log(self.high) - math.log(self.low)
        return float(math.exp(math.log(self.low) + np.clip(unit, 0.0, 1.0) * span))

    def grid(self, resolution: int) -> List[float]:
        return [self.from_unit(u) for u in np.linspace(0, 1, resolution)]


@dataclass(frozen=True)
class IntUniform(ParamSpec):
    """An integer drawn uniformly from [low, high] inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise SearchSpaceError(f"IntUniform requires low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def to_unit(self, value: int) -> float:
        if self.high == self.low:
            return 0.0
        return float(np.clip((value - self.low) / (self.high - self.low), 0.0, 1.0))

    def from_unit(self, unit: float) -> int:
        value = self.low + np.clip(unit, 0.0, 1.0) * (self.high - self.low)
        return int(np.clip(round(value), self.low, self.high))

    def grid(self, resolution: int) -> List[int]:
        count = min(resolution, self.high - self.low + 1)
        values = np.linspace(self.low, self.high, count)
        return sorted({int(round(v)) for v in values})


@dataclass(frozen=True)
class Choice(ParamSpec):
    """A categorical parameter (e.g. MLP layer-size tuples, encoder counts)."""

    options: Tuple

    def __post_init__(self) -> None:
        if len(self.options) < 1:
            raise SearchSpaceError("Choice requires at least one option")

    def sample(self, rng: np.random.Generator):
        index = int(rng.integers(0, len(self.options)))
        return self.options[index]

    def to_unit(self, value) -> float:
        try:
            index = self.options.index(value)
        except ValueError as exc:
            raise SearchSpaceError(f"value {value!r} not among options {self.options}") from exc
        if len(self.options) == 1:
            return 0.0
        return index / (len(self.options) - 1)

    def from_unit(self, unit: float):
        if len(self.options) == 1:
            return self.options[0]
        index = int(np.clip(round(unit * (len(self.options) - 1)), 0, len(self.options) - 1))
        return self.options[index]

    def grid(self, resolution: int) -> List:
        return list(self.options)


class SearchSpace:
    """An ordered collection of named hyper-parameters."""

    def __init__(self, params: Dict[str, ParamSpec]) -> None:
        if not params:
            raise SearchSpaceError("search space must contain at least one parameter")
        for name, spec in params.items():
            if not isinstance(spec, ParamSpec):
                raise SearchSpaceError(f"parameter {name!r} is not a ParamSpec: {spec!r}")
        self._params: Dict[str, ParamSpec] = dict(params)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> List[str]:
        return list(self._params.keys())

    @property
    def dimension(self) -> int:
        return len(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __getitem__(self, name: str) -> ParamSpec:
        return self._params[name]

    def items(self) -> Iterator[Tuple[str, ParamSpec]]:
        return iter(self._params.items())

    # ------------------------------------------------------------------ #
    # Sampling / encoding
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator) -> Dict[str, object]:
        return {name: spec.sample(rng) for name, spec in self._params.items()}

    def to_unit(self, params: Dict[str, object]) -> np.ndarray:
        missing = [name for name in self._params if name not in params]
        if missing:
            raise SearchSpaceError(f"missing parameters {missing}")
        return np.array([spec.to_unit(params[name]) for name, spec in self._params.items()])

    def from_unit(self, vector: Sequence[float]) -> Dict[str, object]:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise SearchSpaceError(f"expected vector of dim {self.dimension}, got {vector.shape}")
        return {
            name: spec.from_unit(float(vector[i]))
            for i, (name, spec) in enumerate(self._params.items())
        }

    def grid(self, resolution: int = 3) -> List[Dict[str, object]]:
        """Cartesian product of per-parameter grids (used by grid search)."""
        value_lists = [(name, spec.grid(resolution)) for name, spec in self._params.items()]
        combinations: List[Dict[str, object]] = [{}]
        for name, values in value_lists:
            combinations = [dict(c, **{name: v}) for c in combinations for v in values]
        return combinations
