"""Gaussian-process Bayesian optimisation with expected improvement.

A compact implementation of the classic GP-EI loop (Snoek et al., 2012, [33]
in the paper): an RBF-kernel Gaussian process is fit to the unit-cube encoded
history, and the next configuration maximises expected improvement over a
random candidate pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
from scipy import linalg
from scipy.stats import norm

from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial

__all__ = ["BayesianOptimization"]


def _rbf_kernel(a: np.ndarray, b: np.ndarray, length_scale: float, variance: float) -> np.ndarray:
    sq_dist = np.sum(a ** 2, axis=1)[:, None] + np.sum(b ** 2, axis=1)[None, :] - 2 * a @ b.T
    return variance * np.exp(-0.5 * np.maximum(sq_dist, 0.0) / length_scale ** 2)


class BayesianOptimization(SearchAlgorithm):
    """GP + expected improvement in the unit hyper-cube."""

    name = "bayesian"

    def __init__(self, n_initial: int = 5, candidate_pool: int = 256,
                 length_scale: float = 0.25, variance: float = 1.0, noise: float = 1e-4,
                 exploration: float = 0.01, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng=rng)
        if n_initial < 1:
            raise ValueError("n_initial must be >= 1")
        self.n_initial = n_initial
        self.candidate_pool = candidate_pool
        self.length_scale = length_scale
        self.variance = variance
        self.noise = noise
        self.exploration = exploration

    # ------------------------------------------------------------------ #
    # GP posterior
    # ------------------------------------------------------------------ #
    def _posterior(self, x_train: np.ndarray, y_train: np.ndarray,
                   x_query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        k_train = _rbf_kernel(x_train, x_train, self.length_scale, self.variance)
        k_train[np.diag_indices_from(k_train)] += self.noise
        k_cross = _rbf_kernel(x_train, x_query, self.length_scale, self.variance)
        k_query = _rbf_kernel(x_query, x_query, self.length_scale, self.variance)
        try:
            chol = linalg.cho_factor(k_train, lower=True)
            alpha = linalg.cho_solve(chol, y_train)
            v = linalg.cho_solve(chol, k_cross)
        except linalg.LinAlgError:
            # Fall back to a ridge-regularised solve if the kernel is ill-conditioned.
            k_train[np.diag_indices_from(k_train)] += 1e-3
            alpha = np.linalg.solve(k_train, y_train)
            v = np.linalg.solve(k_train, k_cross)
        mean = k_cross.T @ alpha
        cov_diag = np.diag(k_query) - np.sum(k_cross * v, axis=0)
        std = np.sqrt(np.maximum(cov_diag, 1e-12))
        return mean, std

    def _expected_improvement(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        improvement = mean - best - self.exploration
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)

    # ------------------------------------------------------------------ #
    # ask
    # ------------------------------------------------------------------ #
    def ask(self, space: SearchSpace, history: List[Trial], maximize: bool) -> Dict[str, object]:
        finished = completed_trials(history)
        if len(finished) < self.n_initial:
            return space.sample(self._rng)
        x_train = np.array([space.to_unit(t.params) for t in finished])
        y_train = np.array([t.value for t in finished], dtype=np.float64)
        if not maximize:
            y_train = -y_train
        # Standardise targets for a better-behaved GP.
        y_mean, y_std = y_train.mean(), y_train.std()
        y_norm = (y_train - y_mean) / (y_std + 1e-12)
        candidates = self._rng.random((self.candidate_pool, space.dimension))
        mean, std = self._posterior(x_train, y_norm, candidates)
        ei = self._expected_improvement(mean, std, y_norm.max())
        best_index = int(np.argmax(ei))
        return space.from_unit(candidates[best_index])
