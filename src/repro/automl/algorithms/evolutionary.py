"""Evolutionary hyper-parameter search (a (mu + lambda)-style strategy).

The paper lists evolutionary algorithms (CMA-ES [32]) among the implemented
optimisers of AntTune.  We implement a simple real-coded evolution strategy in
the unit hyper-cube: parents are the best completed trials, children are
Gaussian perturbations, occasionally recombined.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial

__all__ = ["EvolutionarySearch"]


class EvolutionarySearch(SearchAlgorithm):
    """Gaussian-mutation evolution strategy in the unit hyper-cube."""

    name = "evolutionary"

    def __init__(self, population_size: int = 6, sigma: float = 0.15,
                 crossover_probability: float = 0.3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng=rng)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        self.population_size = population_size
        self.sigma = sigma
        self.crossover_probability = crossover_probability

    def ask(self, space: SearchSpace, history: List[Trial], maximize: bool) -> Dict[str, object]:
        finished = completed_trials(history)
        if len(finished) < self.population_size:
            return space.sample(self._rng)
        ranked = sorted(finished, key=lambda t: t.value, reverse=maximize)
        elite = ranked[: self.population_size]
        parent = elite[int(self._rng.integers(0, len(elite)))]
        vector = space.to_unit(parent.params)
        if self._rng.random() < self.crossover_probability and len(elite) > 1:
            other = elite[int(self._rng.integers(0, len(elite)))]
            other_vec = space.to_unit(other.params)
            mask = self._rng.random(space.dimension) < 0.5
            vector = np.where(mask, vector, other_vec)
        child = np.clip(vector + self._rng.normal(0.0, self.sigma, size=space.dimension), 0.0, 1.0)
        return space.from_unit(child)
