"""RACOS: classification-based derivative-free optimisation (Yu, Qian & Hu, 2016).

RACOS is AntTune's default optimiser in the paper (Sec. IV-C) thanks to its
efficiency and flexibility.  The idea: keep the evaluated configurations,
split them into a small positive set (the best ones) and a negative set, learn
an axis-aligned hyper-rectangle that contains a chosen positive sample but
excludes the negative samples, and sample the next configuration inside that
region (with a small probability of sampling globally for exploration).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial

__all__ = ["RACOS"]


class RACOS(SearchAlgorithm):
    """Simplified sequential RACOS in the unit hyper-cube."""

    name = "racos"

    def __init__(self, positive_fraction: float = 0.2, exploration: float = 0.1,
                 max_shrink_rounds: int = 20, min_positives: int = 2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng=rng)
        if not 0.0 < positive_fraction < 1.0:
            raise ValueError("positive_fraction must be in (0, 1)")
        if not 0.0 <= exploration <= 1.0:
            raise ValueError("exploration must be in [0, 1]")
        self.positive_fraction = positive_fraction
        self.exploration = exploration
        self.max_shrink_rounds = max_shrink_rounds
        self.min_positives = min_positives

    # ------------------------------------------------------------------ #
    # Region learning
    # ------------------------------------------------------------------ #
    def _learn_region(self, anchor: np.ndarray, negatives: np.ndarray,
                      dimension: int) -> Tuple[np.ndarray, np.ndarray]:
        """Shrink the unit cube around ``anchor`` until it excludes all negatives."""
        lower = np.zeros(dimension)
        upper = np.ones(dimension)

        def contains(points: np.ndarray) -> np.ndarray:
            return np.all((points >= lower - 1e-12) & (points <= upper + 1e-12), axis=1)

        rounds = 0
        while negatives.size and contains(negatives).any() and rounds < self.max_shrink_rounds * dimension:
            rounds += 1
            inside = negatives[contains(negatives)]
            sample = inside[int(self._rng.integers(0, len(inside)))]
            dim = int(self._rng.integers(0, dimension))
            if sample[dim] >= anchor[dim]:
                # Shrink the upper bound to a point between the anchor and the negative.
                new_upper = self._rng.uniform(anchor[dim], sample[dim])
                upper[dim] = min(upper[dim], max(new_upper, anchor[dim]))
            else:
                new_lower = self._rng.uniform(sample[dim], anchor[dim])
                lower[dim] = max(lower[dim], min(new_lower, anchor[dim]))
        return lower, upper

    # ------------------------------------------------------------------ #
    # ask
    # ------------------------------------------------------------------ #
    def ask(self, space: SearchSpace, history: List[Trial], maximize: bool) -> Dict[str, object]:
        finished = completed_trials(history)
        if len(finished) < max(self.min_positives * 2, 4) or self._rng.random() < self.exploration:
            return space.sample(self._rng)
        ranked = sorted(finished, key=lambda t: t.value, reverse=maximize)
        n_pos = max(self.min_positives, int(round(len(ranked) * self.positive_fraction)))
        positives = ranked[:n_pos]
        negatives = ranked[n_pos:]
        anchor_trial = positives[int(self._rng.integers(0, len(positives)))]
        anchor = space.to_unit(anchor_trial.params)
        negative_matrix = (
            np.array([space.to_unit(t.params) for t in negatives])
            if negatives else np.empty((0, space.dimension))
        )
        lower, upper = self._learn_region(anchor, negative_matrix, space.dimension)
        sample = lower + self._rng.random(space.dimension) * np.maximum(upper - lower, 1e-12)
        return space.from_unit(sample)
