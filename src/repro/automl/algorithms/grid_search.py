"""Exhaustive grid search over a discretised search space."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm
from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial

__all__ = ["GridSearch"]


class GridSearch(SearchAlgorithm):
    """Walk the Cartesian grid of per-parameter values in order.

    When the grid is exhausted (e.g. the study asks for more trials than grid
    points), sampling falls back to random search so the study can continue.
    """

    name = "grid"

    def __init__(self, resolution: int = 3, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng=rng)
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.resolution = resolution
        self._grid: Optional[List[Dict[str, object]]] = None
        self._cursor = 0

    def ask(self, space: SearchSpace, history: List[Trial], maximize: bool) -> Dict[str, object]:
        if self._grid is None:
            self._grid = space.grid(self.resolution)
        if self._cursor < len(self._grid):
            params = self._grid[self._cursor]
            self._cursor += 1
            return dict(params)
        return space.sample(self._rng)

    def get_state(self) -> Dict[str, object]:
        state = super().get_state()
        state["cursor"] = self._cursor  # the grid itself is rebuilt from the space
        return state

    def set_state(self, state: Dict[str, object]) -> None:
        super().set_state(state)
        self._cursor = int(state.get("cursor", 0))
