"""Common interface of hyper-parameter search algorithms."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial, TrialState

__all__ = ["SearchAlgorithm", "completed_trials"]


def completed_trials(history: List[Trial]) -> List[Trial]:
    """Trials with a usable objective value."""
    return [t for t in history if t.state == TrialState.COMPLETED and t.value is not None]


class SearchAlgorithm:
    """ask/tell interface: propose configurations given the trial history.

    Algorithms are stateless with respect to the study; all information they
    need is contained in the history passed to :meth:`ask`, which makes the
    fault-tolerant retry logic of the study trivial.
    """

    name: str = "base"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def ask(self, space: SearchSpace, history: List[Trial], maximize: bool) -> Dict[str, object]:
        """Return the next configuration to evaluate."""
        raise NotImplementedError

    def tell(self, trial: Trial) -> None:
        """Optional hook invoked after a trial finishes (default: no-op)."""

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def get_state(self) -> Dict[str, object]:
        """JSON-serialisable internal state so a resumed study replays identically.

        The base capture is the RNG stream position; algorithms with extra
        mutable state (e.g. a grid cursor) extend the dict in overrides.
        """
        return {"rng": self._rng.bit_generator.state}

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`get_state` (ignores missing keys)."""
        rng_state = state.get("rng")
        if rng_state is not None:
            self._rng.bit_generator.state = rng_state
