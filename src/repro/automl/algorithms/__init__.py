"""Hyper-parameter search algorithms implemented in AntTune (Sec. IV-C)."""

from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.algorithms.bayesian import BayesianOptimization
from repro.automl.algorithms.evolutionary import EvolutionarySearch
from repro.automl.algorithms.grid_search import GridSearch
from repro.automl.algorithms.racos import RACOS
from repro.automl.algorithms.random_search import RandomSearch

__all__ = [
    "SearchAlgorithm",
    "completed_trials",
    "RandomSearch",
    "GridSearch",
    "EvolutionarySearch",
    "BayesianOptimization",
    "RACOS",
]
