"""Random search (Bergstra & Bengio, 2012)."""

from __future__ import annotations

from typing import Dict, List

from repro.automl.algorithms.base import SearchAlgorithm
from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial

__all__ = ["RandomSearch"]


class RandomSearch(SearchAlgorithm):
    """Sample each trial independently and uniformly from the search space."""

    name = "random"

    def ask(self, space: SearchSpace, history: List[Trial], maximize: bool) -> Dict[str, object]:
        return space.sample(self._rng)
