"""An in-process implementation of the AntTune client/server architecture (Fig. 8).

In the paper, an SDK submits a tuning request (search space + limits) to a
long-lived tune server, which generates candidate trials, dispatches them to
distributed executors, collects the metrics and finally returns the best
model configuration.  Offline we model the same flow as an async multi-job
service:

* :meth:`AntTuneServer.submit` only *enqueues* a job and returns its id —
  a background dispatcher picks jobs up and runs up to
  ``max_concurrent_jobs`` of them concurrently on the shared worker pool
  (:mod:`repro.automl.executors`), driven by the configured trial scheduler
  (:mod:`repro.automl.scheduler`).
* Concurrent jobs share the pool **fairly, not FIFO**: each job's
  ``priority=`` weight feeds a :class:`~repro.automl.scheduler.FairShareGovernor`
  that apportions trial slots, so a latency-sensitive job overtakes a bulk
  sweep as slots free up.
* Clients use the non-blocking :meth:`poll` to inspect progress (including
  intermediate values streamed live from in-flight trials) and :meth:`wait`
  to block for a result; :meth:`cancel` stops a queued or running job within
  one scheduling tick, leaving it in the terminal ``CANCELLED`` state.
  :meth:`AntTuneClient.tune` keeps the blocking submit-and-wait convenience
  API on top.
* Every job also exposes a push stream: the whole trial/job lifecycle is
  published as typed events (:mod:`repro.automl.events`) on one ordered bus,
  and :meth:`subscribe` follows it — iterator or callback form — ending with
  a terminal ``JobStateChanged`` on completion, failure or cancellation.
  Storage persists trial history off the same stream.
* ``submit(..., preempt=True)`` claims the new job's fair share immediately:
  co-tenants' youngest running trials beyond their new allowance are killed
  with the ``preempted`` reason and requeued by their own schedulers (no
  budget slot or retry charged), so a latency-sensitive job acquires slots
  within one scheduling tick even when the pool is saturated.
* With a :class:`~repro.automl.storage.StudyStorage` attached, every job's
  study is checkpointed into SQLite as it runs, so a restarted server can
  list stored studies and :meth:`resume` them with only the remaining
  trial budget.

Each job gets its own RNG stream derived from its job id (unless the caller
passes ``rng=`` explicitly), so concurrently submitted jobs never explore
identical trial sequences.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import threading
import uuid
import warnings
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.automl import metrics as _metrics
from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.events import (
    Event,
    EventBus,
    JobStateChanged,
    Subscription,
    TrialFinished,
)
from repro.automl.executors import EXECUTOR_BACKENDS, TrialExecutor, make_executor
from repro.automl.pruners import Pruner
from repro.automl.scheduler import (
    FairShareGovernor,
    GovernedExecutor,
    SchedulerLike,
    make_scheduler,
)
from repro.automl.search_space import SearchSpace
from repro.automl.storage import StudyStorage
from repro.automl.study import Study, StudyConfig
from repro.automl.trial import KILL_PREEMPTED, Trial, TrialState
from repro.exceptions import TrialError
from repro.utils.rng import new_rng

__all__ = ["JobState", "TuneJob", "AntTuneServer", "AntTuneClient"]

Objective = Callable[[Trial], float]


class JobState(enum.Enum):
    """Lifecycle of one submitted tuning job.

    ``QUEUED -> RUNNING`` and then exactly one terminal state: ``COMPLETED``
    (study ran its budget), ``FAILED`` (study raised) or ``CANCELLED``
    (:meth:`AntTuneServer.cancel`).  A queued job may go straight to
    ``CANCELLED`` without ever running.
    """

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


def _job_seed(job_id: int) -> int:
    """A distinct, process-independent seed per job id (CRC32, not hash())."""
    return zlib.crc32(f"anttune-job-{job_id}".encode("utf-8"))


@dataclass
class TuneJob:
    """One submitted hyper-parameter optimisation job.

    Attributes:
        job_id: server-assigned identifier, returned by ``submit``.
        study: the underlying :class:`~repro.automl.study.Study`.
        objective: the user callable evaluated per trial.
        workers: worker attribution labels for this job's trials.
        priority: fair-share weight (> 0); larger = bigger slot share.
        preempt: whether the job claims its share immediately on start by
            killing (and requeueing) co-tenants' youngest excess trials.
        study_name: the name the job persists under (auto-generated default).
        checkpoint_path: optional JSON checkpoint target.
        refs: ``module:attr`` code references (``space``/``objective``,
            optionally ``algorithm``/``pruner``) recorded in the event log so
            a restarted server can re-import the code and auto-resume the
            job; None for jobs submitted with bare callables.
        trace_id: the correlation id stamped onto every event this job
            publishes (caller-supplied via ``X-Request-Id`` on the remote
            path, otherwise generated at enqueue).  Persisted in the event
            log's metadata so a crash-recovered resume continues the same
            trace.
        state: current :class:`JobState`.
        error: failure description once ``FAILED``.
    """

    job_id: int
    study: Study
    objective: Objective
    workers: List[str] = field(default_factory=lambda: ["worker-0"])
    priority: float = 1.0
    preempt: bool = False
    study_name: Optional[str] = None
    checkpoint_path: Optional[str] = None
    refs: Optional[Dict[str, str]] = None
    trace_id: Optional[str] = None
    state: JobState = JobState.QUEUED
    error: Optional[str] = None
    cancel_requested: bool = False
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False, compare=False)
    # Guards state transitions against the cancel()/dispatcher race.
    _state_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False, compare=False)

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (JobState.COMPLETED, JobState.FAILED,
                              JobState.CANCELLED)

    @property
    def best_trial(self) -> Trial:
        """The study's best completed trial (raises if none completed)."""
        return self.study.best_trial


class AntTuneServer:
    """Non-blocking multi-job tune service on a shared worker pool.

    ``num_workers`` sizes the trial executor shared by every job;
    ``max_concurrent_jobs`` bounds how many jobs' studies advance at once.
    ``backend``/``scheduler`` select the executor backend and the trial
    scheduling discipline for all jobs (see :func:`make_executor` and
    :mod:`repro.automl.scheduler`).  ``storage`` (a :class:`StudyStorage` or a
    path to a SQLite file) enables persistence and :meth:`resume`.

    Concurrent jobs share the pool by weighted fair share: each job's
    ``priority`` registers with a :class:`FairShareGovernor`, and every job's
    scheduler caps its in-flight trials at its current allowance, re-read on
    each refill tick.
    """

    def __init__(self, num_workers: int = 4, max_concurrent_jobs: int = 2,
                 backend: str = "auto", scheduler: SchedulerLike = None,
                 base_seed: int = 0,
                 storage: Union[None, str, StudyStorage] = None,
                 lease_seconds: Optional[float] = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(f"unknown executor backend {backend!r}; "
                             f"expected one of {EXECUTOR_BACKENDS}")
        if lease_seconds is not None and backend != "ticket":
            raise ValueError("lease_seconds only applies to the 'ticket' "
                             "backend")
        make_scheduler(scheduler)  # fail fast on a typo, not in the dispatcher
        self.num_workers = num_workers
        self.max_concurrent_jobs = max_concurrent_jobs
        self.backend = backend
        self.lease_seconds = lease_seconds
        self.scheduler = scheduler
        self.base_seed = base_seed
        self.storage = (StudyStorage(storage) if isinstance(storage, str)
                        else storage)
        self._jobs: Dict[int, TuneJob] = {}
        self._jobs_lock = threading.Lock()
        self._next_job_id = itertools.count()
        # Terminal snapshots of jobs that predate this process, reconstructed
        # by recover() from the event log + storage.  They have no TuneJob
        # (no live study/objective) but status()/jobs()/wait()/subscribe()
        # answer for them, so a client that outlived the crash is not met
        # with 404s for ids it legitimately holds.
        self._recovered: Dict[int, Dict[str, object]] = {}
        self._governor = FairShareGovernor(num_workers)
        # One ordered event stream per job: every layer publishes onto this
        # bus and subscribe()/storage persistence read from it.
        self._bus = EventBus()
        # Default study names embed a per-server-process nonce so a restarted
        # server never silently upserts over studies a previous process
        # persisted under the same job ids.
        self._instance_id = uuid.uuid4().hex[:8]
        # Background storage-writer threads, one per persisted job; joined by
        # shutdown() so no trial rows are lost at close.
        self._writers: List[threading.Thread] = []
        self._writers_lock = threading.Lock()
        self._executor: Optional[TrialExecutor] = None
        self._dispatcher: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # Guards lazy construction of the shared pools: submit() can race from
        # client threads, and the executor property from dispatcher threads.
        self._init_lock = threading.Lock()

    @property
    def event_log(self):
        """The storage's durable event log (None without file-backed storage).

        Every job's bus stream is mirrored into it synchronously at publish
        time, so a restarted server can replay pre-crash history
        (:meth:`open_event_stream`) and reconcile interrupted jobs
        (:meth:`recover`).
        """
        return None if self.storage is None else self.storage.event_log

    # ------------------------------------------------------------------ #
    # Shared resources (lazy)
    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> TrialExecutor:
        """The worker pool shared by every job on this server (lazy).

        Raises:
            TrialError: the server has been shut down (no silent rebuilds).
        """
        with self._init_lock:
            if self._executor is None:
                if self._closed:
                    # Never rebuild a pool behind shutdown()'s back — that
                    # would leak worker threads/processes nothing releases.
                    raise TrialError("server has been shut down")
                self._executor = make_executor(self.num_workers,
                                               backend=self.backend,
                                               base_seed=self.base_seed,
                                               lease_seconds=self.lease_seconds)
            return self._executor

    def ticket_board(self) -> "TrialExecutor":
        """The ticket board pull workers claim from (``backend="ticket"``).

        Raises:
            TrialError: this server runs a local pool, not the ticket
                backend — there are no tickets to claim.
        """
        if self.backend != "ticket":
            raise TrialError(
                f"server backend is {self.backend!r}, not 'ticket': "
                f"no ticket board to claim from")
        return self.executor

    def _ensure_dispatcher(self) -> ThreadPoolExecutor:
        with self._init_lock:
            if self._dispatcher is None:
                if self._closed:
                    raise TrialError("server has been shut down")
                self._dispatcher = ThreadPoolExecutor(
                    max_workers=self.max_concurrent_jobs,
                    thread_name_prefix="anttune-dispatch")
            return self._dispatcher

    # ------------------------------------------------------------------ #
    # Job submission and execution
    # ------------------------------------------------------------------ #
    def submit(self, space: SearchSpace, objective: Objective,
               algorithm: Optional[SearchAlgorithm] = None,
               config: Optional[StudyConfig] = None,
               pruner: Optional[Pruner] = None,
               rng: Optional[np.random.Generator] = None,
               study_name: Optional[str] = None,
               checkpoint_path: Optional[str] = None,
               priority: float = 1.0, preempt: bool = False,
               refs: Optional[Dict[str, str]] = None,
               trace_id: Optional[str] = None) -> int:
        """Enqueue a new tuning job and return its id immediately.

        The job starts as soon as a dispatcher slot frees up; use
        :meth:`poll`/:meth:`wait`/:meth:`subscribe` to follow it and
        :meth:`cancel` to stop it.  Without an explicit ``rng`` the study
        seeds from the job id, so concurrent jobs explore distinct trial
        sequences.

        Args:
            space: the search space to explore.
            objective: callable evaluated per trial (picklable for the
                process backend).
            algorithm: search algorithm (default RACOS seeded per job).
            config: study limits and budget.
            pruner: early-stopping policy; fed live telemetry on every
                backend, including process pools.
            rng: explicit RNG stream (overrides the per-job seed).
            study_name: storage name; must be unique among active jobs.
            checkpoint_path: optional JSON checkpoint target.
            priority: fair-share weight (> 0); a job with weight 4 holds
                roughly 4x the trial slots of a weight-1 co-tenant.
            preempt: when True the job does not wait for co-tenants' trials
                to finish — on start it kills their youngest running trials
                beyond the new fair share (kill reason ``preempted``).
                Preempted trials are requeued by their own scheduler and
                charged neither a budget slot nor a retry.
            refs: optional ``module:attr`` reference strings for the job's
                code (``space``/``objective``, optionally
                ``algorithm``/``pruner``).  Recorded in the durable event
                log so :meth:`recover` can auto-resume the job after a
                server crash; the remote layer fills this in from the
                request body automatically.
            trace_id: explicit correlation id for this job's event stream
                (the remote layer passes the request's ``X-Request-Id``);
                a fresh id is generated when omitted.

        Returns:
            The new job's id.

        Raises:
            ValueError: for a non-positive priority.
            TrialError: duplicate study name, dying storage, or a server
                that has been shut down.
        """
        if priority <= 0:
            raise ValueError("priority must be > 0")
        job_id = next(self._next_job_id)
        study = Study(space, algorithm=algorithm, config=config, pruner=pruner,
                      rng=new_rng(rng if rng is not None else _job_seed(job_id)))
        return self._enqueue(job_id, study, objective, study_name,
                             checkpoint_path, priority=priority,
                             preempt=preempt, refs=refs, trace_id=trace_id)

    def resume(self, study_name: str, space: SearchSpace, objective: Objective,
               algorithm: Optional[SearchAlgorithm] = None,
               pruner: Optional[Pruner] = None,
               priority: float = 1.0, preempt: bool = False,
               refs: Optional[Dict[str, str]] = None,
               trace_id: Optional[str] = None) -> int:
        """Reload a persisted study from storage and enqueue its remainder.

        The study resumes with only the trial budget it had left when last
        checkpointed; v2 checkpoints also restore the algorithm/RNG state so
        the continuation replays as if never interrupted.  Cancelled studies
        may be resumed: their CANCELLED trials stay in the history and the
        unconsumed budget re-runs.

        Args:
            study_name: the stored study to continue.
            space: the original search space (code is not persisted).
            objective: callable evaluated per trial.
            algorithm: matching algorithm when the original used a
                non-default one.
            pruner: early-stopping policy for the continuation.
            priority: fair-share weight for the resumed job.
            preempt: claim the fair share immediately on start (see
                :meth:`submit`).
            refs: optional ``module:attr`` code references recorded for
                crash auto-resume (see :meth:`submit`).
            trace_id: explicit correlation id for the resumed stream (see
                :meth:`submit`).

        Returns:
            The new job's id.

        Raises:
            TrialError: no storage attached, or unknown study name.
        """
        if self.storage is None:
            raise TrialError("server has no storage attached; pass storage= "
                             "to AntTuneServer to enable resume()")
        study = self.storage.load_study(study_name, space, algorithm=algorithm,
                                        pruner=pruner)
        job_id = next(self._next_job_id)
        return self._enqueue(job_id, study, objective, study_name, None,
                             priority=priority, preempt=preempt,
                             allow_stored=True, refs=refs, trace_id=trace_id)

    def _enqueue(self, job_id: int, study: Study, objective: Objective,
                 study_name: Optional[str], checkpoint_path: Optional[str],
                 priority: float = 1.0, preempt: bool = False,
                 allow_stored: bool = False,
                 refs: Optional[Dict[str, str]] = None,
                 trace_id: Optional[str] = None) -> int:
        if priority <= 0:
            raise ValueError("priority must be > 0")
        workers = [f"worker-{i}" for i in range(self.num_workers)]
        job = TuneJob(job_id=job_id, study=study, objective=objective,
                      workers=workers, priority=float(priority),
                      preempt=preempt,
                      study_name=study_name or f"job-{job_id}-{self._instance_id}",
                      checkpoint_path=checkpoint_path, refs=refs,
                      trace_id=trace_id or _metrics.new_trace_id())
        if self.backend == "ticket":
            # Pull workers import the objective from its module:attr ref —
            # pin it on the board now so an unimportable objective (lambda,
            # __main__ callable) is refused at submit, not mid-study.
            ref = (refs or {}).get("objective")
            self.ticket_board().register_objective(
                objective, ref if isinstance(ref, str) else None)
        if (self.storage is not None and study_name is not None
                and not allow_stored and self.storage.study_exists(study_name)):
            # A plain submit must not upsert over a persisted study's history;
            # that path is reserved for resume() (or after delete_study()).
            raise TrialError(
                f"study {study_name!r} already exists in storage; use "
                f"resume() to continue it or delete_study() to discard it")
        # Acquire the dispatcher *before* registering or persisting anything:
        # a shut-down server must refuse cleanly, not leave a zombie QUEUED
        # job whose _done event never fires.
        dispatcher = self._ensure_dispatcher()
        with self._jobs_lock:
            for other in self._jobs.values():
                if other.study_name == job.study_name and not other.finished:
                    raise TrialError(
                        f"study name {job.study_name!r} is already in use by "
                        f"active job {other.job_id}; pick a unique study_name")
            self._jobs[job_id] = job
        # Every lifecycle event the study (and its scheduler) publishes is
        # stamped with this job's id and fanned out on the server's bus.
        study._event_sink = self._event_sink_for(job_id, job.trace_id)
        log = self.event_log
        if log is not None:
            # Durable mirror of the stream: meta first (so recovery can map
            # the job back to its study and code refs), then a synchronous
            # callback subscription — every event is on disk before any
            # queue consumer sees it, so a killed process loses nothing it
            # delivered.  Registered before the QUEUED publish below: the
            # log observes the stream from its very first event.
            log.open_job(job_id, job.study_name, refs=job.refs,
                         priority=job.priority, preempt=job.preempt,
                         trace_id=job.trace_id)
            self._bus.subscribe(job_id, callback=log.append)
        if self.storage is not None:
            # Trial history persists off the event stream: terminal trials
            # land as rows shortly after their TrialFinished event publishes,
            # between (and independent of) full payload checkpoints.  The
            # writer is a background thread draining an iterator
            # subscription, so storage commits never run on (or block) the
            # publisher's thread.
            self._start_storage_writer(job)
            try:
                self.storage.save_study(job.study_name, study,
                                        status=JobState.QUEUED.value)
            except Exception:  # dying storage: no zombie QUEUED job may stay
                # registered whose _done event would never fire.
                with self._jobs_lock:
                    self._jobs.pop(job_id, None)
                with job._state_lock:
                    job.state = JobState.FAILED
                    job.error = "storage save failed at enqueue"
                self._publish_job_state(job, terminal=True)
                raise
        self._publish_job_state(job)  # QUEUED opens the job's stream
        try:
            dispatcher.submit(self._run_job, job)
        except RuntimeError as exc:  # shutdown() raced us: undo registration
            with self._jobs_lock:
                self._jobs.pop(job_id, None)
            if self.storage is not None:
                try:
                    self.storage.delete_study(job.study_name)
                except TrialError:
                    pass
            with job._state_lock:
                job.state = JobState.FAILED
                job.error = "server has been shut down"
            self._publish_job_state(job, terminal=True)
            raise TrialError("server has been shut down") from exc
        return job_id

    # ------------------------------------------------------------------ #
    # Event stream plumbing
    # ------------------------------------------------------------------ #
    def _event_sink_for(self, job_id: int,
                        trace_id: Optional[str] = None) -> Callable[[Event], None]:
        """The per-job sink a study publishes through: stamp ids, fan out.

        Every event is stamped with both the job id and the job's trace id,
        so the whole lifecycle — across subscribers, the durable log, and a
        crash-recovered resume — correlates under one trace.
        """
        bus = self._bus
        def sink(event: Event) -> None:
            bus.publish(dataclasses.replace(event, job_id=job_id,
                                            trace_id=trace_id))
        return sink

    def _publish_job_state(self, job: TuneJob,
                           terminal: bool = False) -> None:
        """Publish the job's current state onto its event stream."""
        self._bus.publish(JobStateChanged(
            state=job.state.value, error=job.error, terminal=terminal,
            job_id=job.job_id, trace_id=job.trace_id))

    def _start_storage_writer(self, job: TuneJob) -> None:
        """Persist this job's event stream from a background writer thread.

        The writer drains an iterator subscription (subscribed before the
        job's first event publishes, so it observes the whole stream) and
        exits when the terminal event arrives — every lifecycle path
        publishes one, so the thread never leaks.  :meth:`shutdown` joins the
        writers, flushing any still-queued rows before the server closes.

        Best effort by design: the dispatcher's checkpoint/finalise path
        still saves the authoritative study payload, so a dying storage here
        must neither crash the writer nor mark the job failed — and the
        publisher's thread is never involved at all.  The subscription queue
        is wide (8192 events) and only TrialFinished/JobStateChanged touch
        storage; should an extreme burst still shed rows, the final
        ``save_study`` backfills them.
        """
        subscription = self._bus.subscribe(job.job_id, max_queue=8192)
        storage, name = self.storage, job.study_name

        def drain() -> None:
            for event in subscription:
                try:
                    if isinstance(event, TrialFinished):
                        storage.record_trial(name, event.record)
                    elif isinstance(event, JobStateChanged):
                        storage.set_status(name, event.state)
                except Exception:  # noqa: BLE001 - keep draining to terminal
                    pass

        thread = threading.Thread(target=drain, daemon=True,
                                  name=f"anttune-storage-{job.job_id}")
        with self._writers_lock:
            # Finished jobs' writers have exited: prune them here so a
            # long-lived server doesn't accumulate one dead Thread per job.
            self._writers = [t for t in self._writers if t.is_alive()]
            self._writers.append(thread)
        thread.start()

    def subscribe(self, job_id: int,
                  callback: Optional[Callable[[Event], None]] = None,
                  max_queue: int = 1024) -> Subscription:
        """Follow one job's ordered event stream (push, not poll).

        Events arrive in publish order, sequenced per job: ``JobStateChanged``
        for every lifecycle transition, and ``TrialStarted`` /
        ``TrialReport`` / ``TrialKilled`` / ``TrialFinished`` per trial, with
        each trial's events in its own lifecycle order.  The stream always
        ends with a terminal ``JobStateChanged`` (``terminal=True``) —
        completion, failure or cancellation — after which iteration stops;
        subscribing to an already-finished job yields that terminal event
        immediately.

        Args:
            job_id: the job to follow.
            callback: optional callable invoked synchronously per event
                instead of queueing for iteration (keep it fast; never call
                back into the server from it).
            max_queue: bound on the iterator queue for live delivery; the
                oldest undelivered events are shed (``Subscription.dropped``
                counts them) when a consumer falls behind.  The initial
                replay is delivered in full regardless (bounded by the bus
                history limit).

        Returns:
            A :class:`~repro.automl.events.Subscription`.

        Raises:
            TrialError: unknown job id.
        """
        with self._jobs_lock:
            known = job_id in self._jobs
        if not known and job_id not in self._recovered:
            raise TrialError(f"unknown job id {job_id}")
        return self._bus.subscribe(job_id, callback=callback,
                                   max_queue=max_queue)

    def on_terminal(self, job_id: int,
                    callback: Callable[[], None]) -> Subscription:
        """Fire ``callback`` once when the job reaches a terminal state.

        The continuation behind the async edge's parked ``/wait``: no
        thread blocks on the job.  A job that is *already* terminal fires
        synchronously during registration (the bus replays history into new
        subscriptions), so a finish racing the registration is never lost.
        Close the returned subscription to cancel.

        Raises:
            TrialError: unknown job id.
        """
        fired = threading.Event()

        def observe(event: Event) -> None:
            if (isinstance(event, JobStateChanged) and event.terminal
                    and not fired.is_set()):
                fired.set()
                callback()

        return self.subscribe(job_id, callback=observe)

    def note_stream_drops(self, job_id: int, count: int) -> None:
        """Fold transport-side stream drops into the bus's drop accounting.

        The async edge bounds each streaming connection's frame queue
        itself (drop-oldest); this routes those drops into the same
        telemetry and ``anttune_event_queue_dropped_total`` series the
        bus's own subscription queues use.
        """
        self._bus.note_drops(job_id, count)

    def open_event_stream(self, job_id: int, last_seq: int = -1,
                          max_queue: int = 1024,
                          callback: Optional[Callable[[Event], None]] = None):
        """A job's full event history: durable backfill plus live stream.

        This is what the remote ``GET /v1/jobs/{id}/events?last_seq=`` serves
        from.  Unlike :meth:`subscribe` — whose replay is bounded by the bus's
        in-memory history and empty in a freshly restarted process — the
        backfill comes from the durable event log, so a client resuming with
        ``last_seq`` sees a seamless stream across bus-ring rotation *and*
        server restarts.

        The subscription is opened *before* the disk read starts, which is
        what makes the merge gapless: the subscription observes everything
        published after it attached (plus the bus's bounded replay), and the
        log — written synchronously at publish time — holds everything before
        it.  The two overlap rather than gap; consumers de-duplicate by
        skipping events whose ``seq`` they have already emitted.

        Args:
            job_id: the job to stream.
            last_seq: highest seq the caller already has; the backfill starts
                after it.
            max_queue: live-subscription queue bound (drop-oldest).
            callback: optional push delivery for the live side — forwarded
                to :meth:`subscribe`, so the subscription replays history
                and then delivers synchronously per publish instead of
                queueing for iteration (the async edge's mode).

        Returns:
            ``(backfill, subscription)`` — an iterator over logged events
            with ``seq > last_seq``, and a live
            :class:`~repro.automl.events.Subscription`, or None in its place
            when the job is known only to the log (a pre-restart job this
            process finished reconciling, or one recovered read-only):
            the backfill then already ends with the terminal event.

        Raises:
            TrialError: the job is unknown to both the server and the log.
        """
        with self._jobs_lock:
            known = job_id in self._jobs
        known = known or job_id in self._recovered
        log = self.event_log
        logged = log is not None and log.has_job(job_id)
        if not known and not logged:
            raise TrialError(f"unknown job id {job_id}")
        subscription = (self._bus.subscribe(job_id, callback=callback,
                                            max_queue=max_queue)
                        if known else None)
        backfill = (log.read(job_id, after_seq=last_seq) if logged
                    else iter(()))
        return backfill, subscription

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> Dict[str, List[Dict[str, object]]]:
        """Reconcile the durable event log with storage after a restart.

        For every job the log knows, compare its last logged event with the
        stored study status and take exactly one action:

        * **terminal logged** — the job ended before the crash; if storage
          still says ``queued``/``running`` (the status write lost the race
          with the kill), write the logged terminal status back
          (*reconciled*).  The terminal event re-registers on the bus at its
          original seq so late subscribers observe termination.
        * **non-terminal logged, storage terminal** — storage saw the end but
          the log's writer didn't; synthesize the matching terminal
          :class:`~repro.automl.events.JobStateChanged` (*finalised*).
        * **non-terminal logged, storage queued/running** — the process died
          mid-job.  When the log's metadata carries ``module:attr`` code
          refs, re-import them and re-enqueue the study's remainder under
          the job's **original id**, with its bus sequence primed past the
          last logged seq (*resumed*) — a client replaying from its last
          seen seq streams straight across the crash.  Without refs (or if
          the re-import fails) the job is finalised ``FAILED`` with an
          explanatory error.
        * **study missing from storage** — the rows were deleted behind the
          log; the orphan job log is dropped (*removed*).

        Job-id allocation continues after the highest recovered id, so new
        submits never collide with pre-crash ids.  Run this before serving
        traffic (``RemoteTuneServer(recover=True)`` / ``serve --recover``
        do); it must not race live publishes.

        Returns:
            A summary dict with ``resumed``, ``finalised``, ``reconciled``
            and ``removed`` lists of ``{"job_id", "study_name", ...}`` dicts.

        Raises:
            TrialError: the server has no file-backed storage (nothing to
                recover from).
        """
        log = self.event_log
        if log is None:
            raise TrialError("recover() needs file-backed storage with an "
                             "event log; pass storage= to AntTuneServer")
        summary: Dict[str, List[Dict[str, object]]] = {
            "resumed": [], "finalised": [], "reconciled": [], "removed": []}
        max_id = -1
        for job_id in log.jobs():
            max_id = max(max_id, job_id)
            meta = log.meta(job_id) or {}
            name = meta.get("study_name")
            if not isinstance(name, str) or not self.storage.study_exists(name):
                # The study's rows were deleted behind the log (or the meta
                # never landed): an event history annotating nothing.
                log.remove_job(job_id)
                summary["removed"].append(
                    {"job_id": job_id, "study_name": name})
                continue
            last = log.last_event(job_id)
            last_seq = -1 if last is None else last.seq
            stored = self.storage.study_status(name)
            if isinstance(last, JobStateChanged) and last.terminal:
                if stored in (JobState.QUEUED.value, JobState.RUNNING.value):
                    try:
                        self.storage.set_status(name, last.state)
                    except TrialError:  # pragma: no cover - raced delete
                        pass
                    summary["reconciled"].append(
                        {"job_id": job_id, "study_name": name,
                         "state": last.state})
                self._register_recovered_terminal(job_id, name, last, meta)
                continue
            if stored in (JobState.COMPLETED.value, JobState.FAILED.value,
                          JobState.CANCELLED.value):
                # Storage outran the log's writer at the crash: trust it.
                self._finalise_recovered(job_id, name, stored, None,
                                         last_seq + 1, meta)
                summary["finalised"].append(
                    {"job_id": job_id, "study_name": name, "state": stored})
                continue
            # The process died mid-job.  Auto-resume needs the code back.
            refs = meta.get("refs") if isinstance(meta.get("refs"), dict) \
                else {}
            error = None
            if "space" in refs and "objective" in refs:
                try:
                    self._resume_recovered(job_id, name, refs, meta, last_seq)
                    summary["resumed"].append(
                        {"job_id": job_id, "study_name": name})
                    continue
                except Exception as exc:  # noqa: BLE001 - an unimportable
                    # ref must fail this one job, not the whole recovery.
                    error = (f"auto-resume after server restart failed: "
                             f"{type(exc).__name__}: {exc}")
            else:
                error = ("interrupted by a server restart and not "
                         "auto-resumable: no space/objective code refs were "
                         "recorded at submit (resume() it manually)")
            self._finalise_recovered(job_id, name, JobState.FAILED.value,
                                     error, last_seq + 1, meta)
            summary["finalised"].append(
                {"job_id": job_id, "study_name": name,
                 "state": JobState.FAILED.value, "error": error})
        if max_id >= 0:
            self._next_job_id = itertools.count(max_id + 1)
        return summary

    def _resume_recovered(self, job_id: int, name: str,
                          refs: Dict[str, object], meta: Dict[str, object],
                          last_seq: int) -> None:
        """Re-enqueue an interrupted job from its logged code refs.

        The job keeps its **original id** and its bus stream is primed to
        continue one past the last durably logged seq, so the post-restart
        events extend the pre-restart history with no seq reuse — the
        contract ``?last_seq=`` replay depends on.
        """
        from repro.automl.remote.api import instantiate_ref, load_ref
        space = load_ref(refs["space"], "space")
        objective = load_ref(refs["objective"], "objective")
        if not callable(objective):
            raise TrialError(
                f"objective ref {refs['objective']!r} is not callable")
        algorithm = (instantiate_ref(refs["algorithm"], "algorithm")
                     if refs.get("algorithm") else None)
        pruner = (instantiate_ref(refs["pruner"], "pruner")
                  if refs.get("pruner") else None)
        study = self.storage.load_study(name, space, algorithm=algorithm,
                                        pruner=pruner)
        self._bus.prime(job_id, last_seq + 1)
        string_refs = {key: str(value) for key, value in refs.items()}
        trace_id = meta.get("trace_id")
        self._enqueue(job_id, study, objective, name, None,
                      priority=float(meta.get("priority", 1.0)),
                      preempt=bool(meta.get("preempt", False)),
                      allow_stored=True, refs=string_refs,
                      trace_id=trace_id if isinstance(trace_id, str) else None)

    def _finalise_recovered(self, job_id: int, name: str, state: str,
                            error: Optional[str], next_seq: int,
                            meta: Dict[str, object]) -> None:
        """End an unresumable job's stream with a synthesized terminal event.

        The event publishes through the bus (primed to continue the logged
        sequence) with the log's callback attached, so it is both durably
        appended and replayable from the bus — a reconnecting client sees the
        stream end instead of hanging on a job no process is running.
        """
        self._bus.prime(job_id, next_seq)
        self._bus.subscribe(job_id, callback=self.event_log.append)
        trace = meta.get("trace_id")
        self._bus.publish(JobStateChanged(
            state=state, error=error, terminal=True, job_id=job_id,
            trace_id=trace if isinstance(trace, str) else None))
        try:
            self.storage.set_status(name, state)
        except TrialError:  # pragma: no cover - raced delete
            pass
        self._recovered[job_id] = self._recovered_snapshot(
            job_id, name, state, error, meta, action="finalised")

    def _register_recovered_terminal(self, job_id: int, name: str,
                                     last: JobStateChanged,
                                     meta: Dict[str, object]) -> None:
        """Re-register an already-terminal logged job on the fresh bus.

        The logged terminal event is re-published at its **original seq**
        (bus primed to stamp exactly it) with no log subscription attached —
        the bus learns the stream ended without duplicating the log's last
        line, and in-process ``subscribe()`` on the old id replays the
        terminal immediately instead of hanging.
        """
        self._bus.prime(job_id, last.seq)
        self._bus.publish(JobStateChanged(state=last.state, error=last.error,
                                          terminal=True, job_id=job_id,
                                          trace_id=last.trace_id))
        self._recovered[job_id] = self._recovered_snapshot(
            job_id, name, last.state, last.error, meta, action="terminal")

    def _recovered_snapshot(self, job_id: int, name: str, state: str,
                            error: Optional[str], meta: Dict[str, object],
                            action: str) -> Dict[str, object]:
        """A status()-shaped terminal snapshot built from storage rows."""
        summary = self.storage.study_summary(name) or {}
        states = self.storage.trial_state_counts(name)
        return {
            "job_id": job_id,
            "state": state,
            "finished": True,
            "error": error,
            "num_trials": sum(states.values()),
            "states": states,
            "best_value": summary.get("best_value"),
            "priority": float(meta.get("priority", 1.0)),
            "preempt": bool(meta.get("preempt", False)),
            "workers": [],
            "study_name": name,
            "trace_id": (meta.get("trace_id")
                         if isinstance(meta.get("trace_id"), str) else None),
            "recovered": action,
            "telemetry": self._telemetry_snapshot(job_id),
        }

    def _run_job(self, job: TuneJob) -> None:
        """Dispatcher-side job body: run the study, never kill the dispatcher."""
        with job._state_lock:
            if job.cancel_requested or job.state is JobState.CANCELLED:
                # cancel() finalised the queued job already (or flagged it just
                # before we started): never run its study.  The terminal event
                # was (or is being) published by cancel() itself.
                job.state = JobState.CANCELLED
                job._done.set()
                return
            job.state = JobState.RUNNING
        self._publish_job_state(job)
        checkpoint_fn = None
        if self.storage is not None:
            storage, name, study = self.storage, job.study_name, job.study
            checkpoint_fn = lambda: storage.save_study(name, study,
                                                       status=JobState.RUNNING.value)
        self._governor.register(job.job_id, job.priority)
        if job.preempt:
            # Claim this job's share now: co-tenants' youngest excess trials
            # are killed (and requeued by their own schedulers) instead of
            # being waited out.
            self._preempt_for(job)
        executor = GovernedExecutor(self.executor, self._governor, job.job_id)
        try:
            job.study.optimize(job.objective, executor=executor,
                               scheduler=self.scheduler,
                               worker_names=job.workers,
                               checkpoint_path=job.checkpoint_path,
                               checkpoint_fn=checkpoint_fn)
            # The terminal transition takes the state lock so a concurrent
            # cancel() either lands before it (and wins: CANCELLED) or
            # observes `finished` and reports False — never a True return
            # against a job that finalises COMPLETED.
            with job._state_lock:
                job.state = (JobState.CANCELLED if job.cancel_requested
                             else JobState.COMPLETED)
        except TrialError as exc:
            with job._state_lock:
                cancelled = job.cancel_requested
                job.state = (JobState.CANCELLED if cancelled
                             else JobState.FAILED)
            if not cancelled:
                # A cancelled study may finish with zero completed trials;
                # that is cancellation, not failure.  Only the study's
                # all-trials-failed outcome gets the classic label; other
                # TrialErrors (e.g. a shut-down executor before any trial
                # ran) must not masquerade as trial failures.
                if job.study.trials and not completed_trials(job.study.trials):
                    job.error = f"every trial failed ({exc})"
                else:
                    job.error = str(exc)
        except BaseException as exc:  # noqa: BLE001 - a job must never take the
            # dispatcher thread (and with it every queued job) down with it.
            with job._state_lock:
                cancelled = job.cancel_requested
                job.state = (JobState.CANCELLED if cancelled
                             else JobState.FAILED)
            if not cancelled:
                job.error = f"{type(exc).__name__}: {exc}"
        finally:
            self._governor.unregister(job.job_id)
            if self.storage is not None:
                try:
                    self.storage.save_study(job.study_name, job.study,
                                            status=job.state.value)
                except Exception as exc:  # a dying storage must not leave the
                    # job un-finished: wait() would block forever on _done.
                    job.error = job.error or f"storage save failed: {exc}"
            # The terminal event: subscriptions drain and close on it.
            self._publish_job_state(job, terminal=True)
            job._done.set()

    @staticmethod
    def _select_victims(trials: List[Trial], excess: int) -> List[Trial]:
        """Pick ``excess`` preemption victims by least reported progress.

        The cost model sheds the cheapest work first: a trial that has
        streamed the fewest telemetry reports has the least invested compute
        to throw away (its requeued re-run repeats the least), with the
        youngest trial id breaking ties — so a nearly-done trial is spared
        even when it happens to be the youngest.
        """
        return sorted(
            trials,
            key=lambda t: (len(t.intermediate_values), -t.trial_id))[:excess]

    def _preempt_for(self, job: TuneJob) -> None:
        """Kill co-tenants' least-progressed trials beyond their new share.

        Called once when a ``preempt=True`` job starts (after its weight
        registered with the governor).  Victims are chosen by
        :meth:`_select_victims` — fewest streamed reports first, youngest
        trial id as the tiebreak — and get the ``preempted`` kill reason:
        their objectives stop at the next ``report()``, their schedulers
        requeue the same configurations without charging a budget slot or a
        retry, and the freed pool slots go to the new job within one
        scheduling tick.
        """
        with self._jobs_lock:
            others = [other for other in self._jobs.values()
                      if other.job_id != job.job_id
                      and other.state is JobState.RUNNING]
        if not others:
            return
        try:
            executor = self.executor
        except TrialError:
            return  # shutting down: nothing left to preempt for
        # Pull the freshest progress counts before costing victims: process
        # workers' reports only become visible to the parent on a drain.
        executor.drain_telemetry()
        running: Dict[int, List[Trial]] = {}
        for other in others:
            with other.study._lock:
                running[other.job_id] = [
                    trial for trial in other.study.trials
                    if trial.state is TrialState.RUNNING
                    and trial.kill_reason is None]
        overage = self._governor.overage(
            {job_id: len(trials) for job_id, trials in running.items()})
        for other in others:
            excess = overage.get(other.job_id, 0)
            if excess <= 0:
                continue
            for trial in self._select_victims(running[other.job_id], excess):
                # Kill only; the TrialKilled event publishes from the
                # victim's own scheduler when it settles the trial, so the
                # event stream never shows a kill for (or sequenced after) a
                # trial that actually finished normally.
                executor.kill_trial(trial, KILL_PREEMPTED)

    # ------------------------------------------------------------------ #
    # Cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, job_id: int) -> bool:
        """Cancel a queued or running job; terminal state is ``CANCELLED``.

        A queued job is finalised immediately (its ``_done`` event fires and
        its CANCELLED status persists to storage without waiting for a
        dispatcher slot).  A running job's study observes the stop request at
        its next scheduling tick: in-flight trials — including remote
        process-backend ones — are killed and recorded ``CANCELLED``.

        Args:
            job_id: the job to cancel.

        Returns:
            True if the job was (or will shortly be) cancelled; False if it
            had already finished.

        Raises:
            TrialError: unknown job id.
        """
        if job_id in self._recovered:
            return False  # terminal before this process started
        job = self._get(job_id)
        with job._state_lock:
            if job.finished:
                return False
            job.cancel_requested = True
            finalise_queued = job.state is JobState.QUEUED
            if finalise_queued:
                job.state = JobState.CANCELLED
        # Outside the state lock: the running study stops at its next tick.
        job.study.request_stop()
        if finalise_queued:
            if self.storage is not None:
                try:
                    self.storage.save_study(job.study_name, job.study,
                                            status=JobState.CANCELLED.value)
                except Exception as exc:  # noqa: BLE001 - never block cancel
                    job.error = f"storage save failed: {exc}"
            # Queued jobs terminate here (no dispatcher run will): close the
            # stream.  Running jobs get their terminal event from _run_job.
            self._publish_job_state(job, terminal=True)
            job._done.set()
        return True

    # ------------------------------------------------------------------ #
    # Client-facing queries
    # ------------------------------------------------------------------ #
    def poll(self, job_id: int) -> Dict[str, object]:
        """A non-blocking snapshot of one job's progress (see :meth:`status`)."""
        return self.status(job_id)

    def wait(self, job_id: int, timeout: Optional[float] = None) -> Trial:
        """Block until a job finishes and return its best trial.

        Args:
            job_id: the job to wait on.
            timeout: seconds to wait before giving up (None = forever).

        Returns:
            The best completed trial.

        Raises:
            TrialError: the job failed, was cancelled, timed out, or finished
                without any successful trial.
        """
        if job_id in self._recovered:
            return self._wait_recovered(job_id)
        job = self._get(job_id)
        if not job._done.wait(timeout):
            raise TrialError(f"job {job_id} still running after {timeout}s")
        if job.state is JobState.CANCELLED:
            raise TrialError(f"job {job_id} was cancelled")
        if job.state is JobState.FAILED:
            raise TrialError(f"job {job_id}: {job.error}")
        try:
            return job.study.best_trial
        except TrialError as exc:
            # raise_on_all_failed=False lets a study complete with zero
            # usable trials; surface that as this job's outcome, not as a
            # bare best-trial lookup error.
            raise TrialError(
                f"job {job_id} completed without any successful trial "
                f"(raise_on_all_failed=False)") from exc

    def _wait_recovered(self, job_id: int) -> Trial:
        """wait() for a pre-restart job: answer from its stored trial rows."""
        snapshot = self._recovered[job_id]
        state, name = snapshot["state"], snapshot["study_name"]
        if state == JobState.CANCELLED.value:
            raise TrialError(f"job {job_id} was cancelled")
        if state == JobState.FAILED.value:
            raise TrialError(f"job {job_id}: {snapshot['error']}")
        summary = self.storage.study_summary(name) or {}
        records = [record for record
                   in self.storage.load_payload(name)["trials"]
                   if record.get("state") == TrialState.COMPLETED.value
                   and record.get("value") is not None]
        if not records:
            raise TrialError(
                f"job {job_id} completed without any successful trial")
        best = (max if summary.get("maximize", True) else min)(
            records, key=lambda record: record["value"])
        from repro.automl.remote.api import trial_from_record
        return trial_from_record(best)

    def run(self, job_id: int, checkpoint_path: Optional[str] = None) -> Trial:
        """Blocking convenience kept from the synchronous server: wait for a job.

        The job was already started by :meth:`submit`, so ``checkpoint_path``
        can only take effect if the dispatcher has not picked the job up yet —
        pass it to :meth:`submit` instead; a warning is raised when it arrives
        too late to apply.

        Args:
            job_id: the job to wait on.
            checkpoint_path: late checkpoint target (queued jobs only).

        Returns:
            The best completed trial (see :meth:`wait` for raises).
        """
        job = self._get(job_id)
        if checkpoint_path is not None:
            if job.state is JobState.QUEUED:
                job.checkpoint_path = checkpoint_path
            else:
                warnings.warn(
                    f"job {job_id} is already {job.state.value}; checkpoint_path "
                    "was ignored — pass it to submit() instead", RuntimeWarning,
                    stacklevel=2)
        return self.wait(job_id)

    def status(self, job_id: int) -> Dict[str, object]:
        """Job state plus per-trial-state counts (consistent mid-run).

        Because in-flight trials stream their intermediate values live, the
        snapshot's ``num_trials``/``states`` reflect work in progress, not
        just finished trials.

        Args:
            job_id: the job to inspect.

        Returns:
            A dict with ``job_id``, ``state``, ``finished``, ``error``,
            ``num_trials``, per-state ``states`` counts, ``best_value``
            (COMPLETED trials only), ``priority``, ``workers``,
            ``study_name``, ``trace_id`` (the correlation id stamped on the
            job's events) and a ``telemetry`` sub-dict making backpressure
            observable end to end: ``transport_dropped`` (report records
            shed by the shared executor's telemetry channel — server-wide,
            the pool is shared) and ``event_queue_dropped`` (events shed by
            this job's lagging subscriber queues).

        Raises:
            TrialError: unknown job id.
        """
        snapshot = self._recovered.get(job_id)
        if snapshot is not None:
            # A pre-restart job: its snapshot (built from storage rows at
            # recovery time) answers, with "recovered" marking how it ended.
            return dict(snapshot)
        job = self._get(job_id)
        study = job.study
        with study._lock:
            trials = list(study.trials)
        states: Dict[str, int] = {}
        best_value: Optional[float] = None
        for trial in trials:
            states[trial.state.value] = states.get(trial.state.value, 0) + 1
            # Only COMPLETED trials count: a TIMED_OUT trial may carry a value
            # the job will never return through wait()/best_trial.
            if trial.state is TrialState.COMPLETED and trial.value is not None:
                if best_value is None or (trial.value > best_value
                                          if study.config.maximize
                                          else trial.value < best_value):
                    best_value = trial.value
        return {
            "job_id": job_id,
            "state": job.state.value,
            "finished": job.finished,
            "error": job.error,
            "num_trials": len(trials),
            "states": states,
            "best_value": best_value,
            "priority": job.priority,
            "preempt": job.preempt,
            "workers": list(job.workers),
            "study_name": job.study_name,
            "trace_id": job.trace_id,
            "telemetry": self._telemetry_snapshot(job_id),
        }

    def _transport_dropped(self) -> int:
        """Telemetry report records shed by the shared executor (0 if unbuilt)."""
        with self._init_lock:
            executor = self._executor
        return 0 if executor is None else executor.telemetry_dropped

    def _telemetry_snapshot(self, job_id: Optional[int] = None) -> Dict[str, int]:
        """The one backpressure dict every status shape embeds.

        ``transport_dropped`` is server-wide either way (the worker pool is
        shared); ``event_queue_dropped`` is scoped to ``job_id`` when given,
        or summed across every job's subscriber queues otherwise.  Both
        counters are cumulative for the process lifetime — they survive pool
        rebuilds and bus re-priming — and are also exported as the
        ``anttune_transport_dropped_total`` / ``anttune_event_queue_dropped_total``
        metric families.  The dict's keys are a **deprecated alias**: new
        consumers should scrape ``/v1/metrics`` or read
        ``server_status()["metrics"]`` instead.
        """
        dropped = (self._bus.dropped(job_id) if job_id is not None
                   else self._bus.dropped_total())
        return {
            "transport_dropped": self._transport_dropped(),
            "event_queue_dropped": dropped,
        }

    def jobs(self) -> List[Dict[str, object]]:
        """Status snapshots of every job on this server, oldest first.

        Includes terminal snapshots of pre-restart jobs registered by
        :meth:`recover`, so a reconnecting client's job listing is complete
        across a crash.
        """
        with self._jobs_lock:
            job_ids = set(self._jobs)
        job_ids.update(self._recovered)
        return [self.status(job_id) for job_id in sorted(job_ids)]

    def server_status(self) -> Dict[str, object]:
        """A server-wide snapshot: configuration, job counts, backpressure.

        This is what the remote layer serves as ``GET /v1/status``: pool
        sizing, how many jobs are in each lifecycle state, and a structured
        ``metrics`` section — the full
        :meth:`~repro.automl.metrics.MetricsRegistry.snapshot` of every
        instrumented hot path (scheduler ticks, ask/tell latency, trial
        queue-wait/run times, event publish/append/fsync timings, drop
        counters).  The flat ``telemetry`` sub-dict (``transport_dropped``,
        ``event_queue_dropped``) is kept as a deprecated alias of the
        corresponding counter families; prefer ``metrics`` or the
        ``GET /v1/metrics`` Prometheus exposition.
        """
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        job_states: Dict[str, int] = {}
        for job in jobs:
            job_states[job.state.value] = job_states.get(job.state.value, 0) + 1
        for snapshot in self._recovered.values():
            state = snapshot["state"]
            job_states[state] = job_states.get(state, 0) + 1
        log = self.event_log
        tickets = None
        if self.backend == "ticket" and self._executor is not None:
            board = getattr(self._executor, "board_status", None)
            if board is not None:
                tickets = board()
        return {
            "num_workers": self.num_workers,
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "backend": self.backend,
            "num_jobs": len(jobs) + len(self._recovered),
            "job_states": job_states,
            "tickets": tickets,
            "storage": None if self.storage is None else self.storage.path,
            "event_log": None if log is None else log.stats(),
            # Deprecated alias kept for older clients; the same counters (and
            # much more) live in the structured "metrics" section below.
            "telemetry": self._telemetry_snapshot(),
            "metrics": _metrics.REGISTRY.snapshot(),
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop the dispatcher and release the worker pool (idempotent).

        With ``wait=True`` (default) queued and running jobs drain on the
        existing pool first; the pool is released only afterwards, and no new
        pool can be created once the server is closed.

        Args:
            wait: block until in-flight jobs drain before closing the pool.
        """
        with self._jobs_lock:
            has_pending = any(not job.finished for job in self._jobs.values())
        if has_pending:
            try:
                # Materialise the lazy pool before closing so draining jobs
                # that haven't touched it yet don't hit the closed guard.
                self.executor
            except TrialError:
                pass  # already closed by a concurrent/repeated shutdown
        with self._init_lock:
            self._closed = True
            dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.shutdown(wait=wait)
        with self._init_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            # close(), not shutdown(): a job still draining (wait=False) must
            # not silently rebuild the pool and leak its workers.
            executor.close()
        # Flush-on-close: every finished job's terminal event has published
        # by now (the dispatcher drained above), so its storage writer is
        # finishing its last commits — join them so no trial rows are lost.
        # The timeout only bounds a wedged storage; writers are daemons.
        with self._writers_lock:
            writers, self._writers = self._writers, []
        for thread in writers:
            thread.join(timeout=10.0 if wait else 0.25)
        log = self.event_log
        if log is not None:
            # Everything published above is already flushed per append; this
            # settles the stronger fsync durability before the process exits.
            log.flush()

    def __enter__(self) -> "AntTuneServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _get(self, job_id: int) -> TuneJob:
        with self._jobs_lock:
            if job_id not in self._jobs:
                raise TrialError(f"unknown job id {job_id}")
            return self._jobs[job_id]


class AntTuneClient:
    """The SDK-side view: submit a space + objective, poll or wait, fetch the best."""

    def __init__(self, server: Optional[AntTuneServer] = None) -> None:
        self.server = server or AntTuneServer()

    def submit(self, space: SearchSpace, objective: Objective, **kwargs: object) -> int:
        """Enqueue a job on the server and return its id (non-blocking).

        Keyword arguments pass through to :meth:`AntTuneServer.submit`
        (``priority=``, ``pruner=``, ``study_name=``, ...).
        """
        return self.server.submit(space, objective, **kwargs)

    def poll(self, job_id: int) -> Dict[str, object]:
        """Non-blocking progress snapshot (see :meth:`AntTuneServer.status`)."""
        return self.server.poll(job_id)

    def wait(self, job_id: int, timeout: Optional[float] = None) -> Trial:
        """Block for a job's best trial (see :meth:`AntTuneServer.wait`)."""
        return self.server.wait(job_id, timeout=timeout)

    def cancel(self, job_id: int) -> bool:
        """Cancel a queued or running job (see :meth:`AntTuneServer.cancel`)."""
        return self.server.cancel(job_id)

    def subscribe(self, job_id: int, **kwargs: object) -> Subscription:
        """Follow a job's event stream (see :meth:`AntTuneServer.subscribe`)."""
        return self.server.subscribe(job_id, **kwargs)

    def tune(self, space: SearchSpace, objective: Objective,
             algorithm: Optional[SearchAlgorithm] = None,
             config: Optional[StudyConfig] = None,
             pruner: Optional[Pruner] = None,
             rng: Optional[np.random.Generator] = None) -> Trial:
        """Submit a job, run it to completion and return the best trial.

        Args:
            space: the search space to explore.
            objective: callable evaluated per trial.
            algorithm: search algorithm (default RACOS seeded per job).
            config: study limits and budget.
            pruner: early-stopping policy.
            rng: explicit RNG stream.

        Returns:
            The best completed trial.
        """
        job_id = self.server.submit(space, objective, algorithm=algorithm, config=config,
                                    pruner=pruner, rng=rng)
        return self.server.wait(job_id)
