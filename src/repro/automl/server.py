"""An in-process implementation of the AntTune client/server architecture (Fig. 8).

In the paper, an SDK submits a tuning request (search space + limits) to a
tune server, which generates candidate trials, dispatches them to distributed
executors, collects the metrics and finally returns the best model
configuration.  Offline we model the same flow: the server owns studies keyed
by job id and a shared worker pool (:mod:`repro.automl.executors`); running a
job executes batches of up to ``num_workers`` trials concurrently, each trial
attributed round-robin to a named worker, and the client polls for the best
result.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm
from repro.automl.executors import TrialExecutor, make_executor
from repro.automl.pruners import Pruner
from repro.automl.search_space import SearchSpace
from repro.automl.study import Study, StudyConfig
from repro.automl.trial import Trial
from repro.exceptions import TrialError
from repro.utils.rng import new_rng

__all__ = ["TuneJob", "AntTuneServer", "AntTuneClient"]

Objective = Callable[[Trial], float]


@dataclass
class TuneJob:
    """One submitted hyper-parameter optimisation job."""

    job_id: int
    study: Study
    objective: Objective
    workers: List[str] = field(default_factory=lambda: ["worker-0"])
    finished: bool = False

    @property
    def best_trial(self) -> Trial:
        return self.study.best_trial


class AntTuneServer:
    """Holds jobs, generates trials and dispatches them to a worker pool."""

    def __init__(self, num_workers: int = 4) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._jobs: Dict[int, TuneJob] = {}
        self._next_job_id = itertools.count()
        self._executor: Optional[TrialExecutor] = None

    @property
    def executor(self) -> TrialExecutor:
        """The worker pool shared by every job on this server (lazy)."""
        if self._executor is None:
            self._executor = make_executor(self.num_workers)
        return self._executor

    def submit(self, space: SearchSpace, objective: Objective,
               algorithm: Optional[SearchAlgorithm] = None,
               config: Optional[StudyConfig] = None,
               pruner: Optional[Pruner] = None,
               rng: Optional[np.random.Generator] = None) -> int:
        """Register a new tuning job and return its id."""
        study = Study(space, algorithm=algorithm, config=config, pruner=pruner,
                      rng=new_rng(rng if rng is not None else 0))
        job_id = next(self._next_job_id)
        workers = [f"worker-{i}" for i in range(self.num_workers)]
        self._jobs[job_id] = TuneJob(job_id=job_id, study=study, objective=objective,
                                     workers=workers)
        return job_id

    def run(self, job_id: int, checkpoint_path: Optional[str] = None) -> Trial:
        """Execute all trials of a job on the server's worker pool.

        Batches of up to ``num_workers`` trials run concurrently; each trial
        is attributed round-robin to one of the job's named workers.
        """
        job = self._get(job_id)
        try:
            job.study.optimize(job.objective, executor=self.executor,
                               worker_names=job.workers,
                               checkpoint_path=checkpoint_path)
            return job.study.best_trial
        except TrialError as exc:
            raise TrialError(f"job {job_id}: every trial failed") from exc
        finally:
            job.finished = True

    def status(self, job_id: int) -> Dict[str, object]:
        job = self._get(job_id)
        states: Dict[str, int] = {}
        for trial in job.study.trials:
            states[trial.state.value] = states.get(trial.state.value, 0) + 1
        return {
            "job_id": job_id,
            "finished": job.finished,
            "num_trials": len(job.study.trials),
            "states": states,
            "workers": list(job.workers),
        }

    def shutdown(self) -> None:
        """Release the shared worker pool (idempotent; pool is rebuilt on use)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def _get(self, job_id: int) -> TuneJob:
        if job_id not in self._jobs:
            raise TrialError(f"unknown job id {job_id}")
        return self._jobs[job_id]


class AntTuneClient:
    """The SDK-side view: submit a space + objective, wait, fetch the best config."""

    def __init__(self, server: Optional[AntTuneServer] = None) -> None:
        self.server = server or AntTuneServer()

    def tune(self, space: SearchSpace, objective: Objective,
             algorithm: Optional[SearchAlgorithm] = None,
             config: Optional[StudyConfig] = None,
             pruner: Optional[Pruner] = None,
             rng: Optional[np.random.Generator] = None) -> Trial:
        """Submit a job, run it to completion and return the best trial."""
        job_id = self.server.submit(space, objective, algorithm=algorithm, config=config,
                                    pruner=pruner, rng=rng)
        return self.server.run(job_id)
