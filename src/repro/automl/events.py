"""Typed lifecycle events and the in-process event bus of the tune service.

The control plane used to be three parallel ad-hoc channels (an uplink queue
for reports, a kill map for stops, poll-loop mirroring into storage).  This
module replaces all of that fan-out with **one ordered stream per job**: every
layer publishes typed events onto an :class:`EventBus`, and every consumer —
client subscriptions (:meth:`repro.automl.server.AntTuneServer.subscribe`),
storage persistence, tests — reads the same stream.

Event types
-----------

* :class:`TrialStarted` — the scheduler created a trial and handed it to the
  executor.
* :class:`TrialReport` — one intermediate value became visible to the
  scheduler (streamed over the shared-memory transport for process workers,
  observed directly for thread/sync workers).
* :class:`TrialKilled` — a kill signal (deadline / prune / cancel / preempt)
  was delivered to an in-flight trial.
* :class:`TrialFinished` — the trial reached a terminal state; carries the
  full JSON-serialisable record, which is what storage persists.
* :class:`JobStateChanged` — the owning job moved through its lifecycle;
  ``terminal=True`` marks the last event a subscription will ever see.

Events are immutable.  ``job_id`` and ``seq`` are stamped by the bus at
publish time: ``seq`` increases monotonically *per job*, so any two consumers
of the same job observe the same total order.  ``trace_id`` is the owning
job's correlation id (stamped by the server's event sink, carried end-to-end
from the submitting HTTP request's ``X-Request-Id`` header — see
:mod:`repro.automl.metrics`); it is omitted from the wire payload while
unset, so pre-trace streams and documentation round-trip unchanged.

Delivery semantics
------------------

:meth:`EventBus.subscribe` has two forms.  With ``callback=`` the callable is
invoked synchronously on the publisher's thread (keep it fast, never call
back into the bus from inside it — publishing from a callback deadlocks the
job's delivery turnstile — and note that its exceptions are swallowed and
counted in :attr:`Subscription.callback_errors`).  Without a callback the subscription is an iterator
backed by a **bounded** queue: when a slow consumer falls more than
``max_queue`` events behind, the oldest queued events are dropped (counted in
:attr:`Subscription.dropped`) — delivery stays ordered (a subsequence of the
stream) and the terminal event is never dropped, so iteration always
terminates once the job does.

The bus keeps a bounded per-job **replay history**: a consumer subscribing
after a job already made progress receives the earlier events first (oldest
shed beyond ``history_limit``), then live ones — so ``submit()`` followed by
``subscribe()`` observes the whole stream, and subscribing to an
already-finished job replays it up to its terminal event.
"""

from __future__ import annotations

import dataclasses
import json
import queue as queue_module
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.automl import metrics as _metrics

__all__ = [
    "TrialEvent",
    "TrialStarted",
    "TrialReport",
    "TrialKilled",
    "TrialFinished",
    "JobStateChanged",
    "Event",
    "EventBus",
    "Subscription",
    "EVENT_TYPES",
    "event_to_wire",
    "event_from_wire",
    "event_wire_bytes",
]


class TrialEvent:
    """Marker base class for per-trial lifecycle events."""


@dataclass(frozen=True)
class TrialStarted(TrialEvent):
    """A trial was created and submitted to the executor.

    Attributes:
        trial_id: the trial's study-local id.
        params: the sampled configuration (a copy).
        worker: the worker attribution label.
        job_id: owning job (stamped by the bus; None for bare studies).
        seq: per-job publish sequence number (stamped by the bus).
        trace_id: the owning job's trace id (stamped by the server's event
            sink; None for bare studies).
    """

    trial_id: int
    params: Dict[str, object] = field(default_factory=dict)
    worker: Optional[str] = None
    job_id: Optional[int] = None
    seq: int = -1
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class TrialReport(TrialEvent):
    """One intermediate value became visible to the scheduler.

    ``step`` is the index into the trial's ``intermediate_values`` — for one
    trial, reports are always published in increasing step order.
    """

    trial_id: int
    step: int = 0
    value: float = 0.0
    job_id: Optional[int] = None
    seq: int = -1
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class TrialKilled(TrialEvent):
    """A kill signal was delivered to an in-flight trial.

    ``reason`` is one of the kill reasons from :mod:`repro.automl.trial`
    (``deadline``, ``pruned``, ``cancelled``, ``preempted``).  The matching
    terminal state arrives later as a :class:`TrialFinished`.
    """

    trial_id: int
    reason: str = "cancelled"
    job_id: Optional[int] = None
    seq: int = -1
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class TrialFinished(TrialEvent):
    """The trial reached a terminal state.

    Attributes:
        trial_id: the trial's study-local id.
        state: the terminal :class:`~repro.automl.trial.TrialState` value
            (as its string value, e.g. ``"completed"``).
        value: the objective value (None unless completed).
        record: the full JSON-serialisable trial snapshot
            (:meth:`~repro.automl.trial.Trial.as_record`) — what storage
            persists off the stream.
    """

    trial_id: int
    state: str = "completed"
    value: Optional[float] = None
    record: Dict[str, object] = field(default_factory=dict)
    job_id: Optional[int] = None
    seq: int = -1
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class JobStateChanged:
    """The owning job moved through its lifecycle.

    ``state`` is a :class:`~repro.automl.server.JobState` value string.  With
    ``terminal=True`` this is the final event of the job's stream: the bus
    closes every subscription after delivering it, and later subscribers
    receive it immediately.
    """

    state: str
    error: Optional[str] = None
    terminal: bool = False
    job_id: Optional[int] = None
    seq: int = -1
    trace_id: Optional[str] = None


Event = Union[TrialStarted, TrialReport, TrialKilled, TrialFinished,
              JobStateChanged]

#: Wire name -> event class, the registry both serialisation directions use.
EVENT_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (TrialStarted, TrialReport, TrialKilled, TrialFinished,
                JobStateChanged)
}

# Publish latency per event type; the histogram's _count doubles as the
# events-published-total counter.  Children are resolved once here — the
# publish hot path does a dict lookup, never a labels() call.
_PUBLISH_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_event_publish_seconds",
    "EventBus.publish latency (stamp + ordered delivery) by event type.",
    labels=("type",))
_PUBLISH_CHILDREN = {name: _PUBLISH_SECONDS.labels(type=name)
                     for name in EVENT_TYPES}
_QUEUE_DROPPED = _metrics.REGISTRY.counter(
    "anttune_event_queue_dropped_total",
    "Events shed by lagging subscriber queues, by job. Cumulative for the "
    "process lifetime: never reset by consumer churn or bus re-priming.",
    labels=("job",))


def event_to_wire(event: Event) -> Dict[str, object]:
    """Serialise an event into a JSON-compatible dict (``type`` + fields).

    The payload round-trips through :func:`event_from_wire`:
    ``event_from_wire(event_to_wire(e)) == e`` for every event type, so the
    remote layer can ship the exact in-process stream over HTTP.

    Args:
        event: any :data:`Event` instance.

    Returns:
        A dict of the event's fields plus a ``"type"`` discriminator.

    Raises:
        TypeError: for an object that is not a known event type.
    """
    name = type(event).__name__
    if EVENT_TYPES.get(name) is not type(event):
        raise TypeError(f"not a known event type: {type(event)!r}")
    payload = dataclasses.asdict(event)
    payload["type"] = name
    if payload.get("trace_id") is None:
        # Keep pre-trace payloads byte-identical: streams logged before the
        # metrics plane existed (and documented NDJSON examples) round-trip
        # without a spurious null field.
        payload.pop("trace_id", None)
    return payload


def event_wire_bytes(event: Event) -> bytes:
    """The event's NDJSON wire line, serialised exactly once per event.

    One published event fans out to many consumers — the durable event log
    and every HTTP stream subscriber all ship the *same* bytes:
    ``json.dumps(event_to_wire(e), sort_keys=True) + "\\n"`` encoded UTF-8.
    The first call serialises and caches the buffer on the (frozen) event
    instance, so N subscribers cost one serialisation instead of N — the
    zero-copy half of the C10k serving edge.

    The returned ``bytes`` object is immutable and shared; callers must
    never mutate-in-place via ``memoryview`` tricks.

    Args:
        event: any :data:`Event` instance.

    Returns:
        The event's canonical NDJSON line (terminated by ``\\n``).

    Raises:
        TypeError: for an object that is not a known event type.
    """
    cached = event.__dict__.get("_wire_bytes")
    if cached is not None:
        return cached
    data = (json.dumps(event_to_wire(event), sort_keys=True) + "\n").encode(
        "utf-8")
    # Frozen dataclasses forbid normal attribute writes; the cache is not a
    # field (it never participates in __eq__/asdict/replace), so storing it
    # through object.__setattr__ keeps the event's value semantics intact.
    object.__setattr__(event, "_wire_bytes", data)
    return data


def event_from_wire(payload: Dict[str, object]) -> Event:
    """Rebuild a typed event from its :func:`event_to_wire` dict.

    Unknown keys are ignored (a newer server may add fields; an older client
    must still parse the stream), but the ``type`` discriminator must name a
    known event class and its required fields must be present.

    Args:
        payload: a dict produced by :func:`event_to_wire` (possibly after a
            JSON round trip).

    Returns:
        The reconstructed event.

    Raises:
        ValueError: missing/unknown ``type`` or missing required fields.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"event payload must be a dict, got {type(payload).__name__}")
    name = payload.get("type")
    cls = EVENT_TYPES.get(name) if isinstance(name, str) else None
    if cls is None:
        raise ValueError(f"unknown event type {name!r}; expected one of "
                         f"{sorted(EVENT_TYPES)}")
    known = {f.name for f in dataclasses.fields(cls)}
    kwargs = {key: value for key, value in payload.items() if key in known}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(f"malformed {name} event payload: {exc}") from None


class Subscription:
    """One consumer of a job's event stream (iterator or callback form).

    Iterator form: iterate (or call :meth:`get`) to receive events in publish
    order; iteration ends after the terminal :class:`JobStateChanged`.  The
    backing queue is bounded — see :attr:`dropped`.

    Callback form (``callback=`` passed to :meth:`EventBus.subscribe`): the
    callable runs synchronously on the publisher's thread and the queue/
    iterator surface stays empty.
    """

    _CLOSED = object()  # sentinel: no further events, stream did not terminate

    def __init__(self, bus: "EventBus", job_id: Optional[int], max_queue: int,
                 callback: Optional[Callable[[Event], None]]) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._bus = bus
        self.job_id = job_id
        self._callback = callback
        self._queue: "queue_module.Queue[object]" = queue_module.Queue()
        self._max_queue = max_queue
        self._lock = threading.Lock()
        self._finished = False   # terminal event delivered (or close() called)
        self._exhausted = False  # iterator already yielded the last event
        #: Events dropped because the consumer fell > max_queue behind.
        self.dropped = 0
        #: Exceptions swallowed from the callback (observers must never be
        #: able to fail the publisher — e.g. mark an observed job FAILED or
        #: strand a wait() by breaking the terminal publish).
        self.callback_errors = 0

    # -- bus side ------------------------------------------------------- #
    def _deliver(self, event: Event, replay: bool = False) -> None:
        terminal = isinstance(event, JobStateChanged) and event.terminal
        if self._callback is not None:
            try:
                self._callback(event)
            except Exception:  # noqa: BLE001 - a broken observer must not
                # propagate into the publishing scheduler/dispatcher thread.
                self.callback_errors += 1
            finally:
                if terminal:
                    self._finished = True
            return
        with self._lock:
            if self._finished:
                return
            # Bounded for *live* delivery: shed the oldest queued event so a
            # lagging consumer stays an ordered subsequence and the terminal
            # event always fits.  Replay is exempt — it lands synchronously
            # inside subscribe(), before the consumer could possibly have
            # read anything, and is already bounded by the bus history limit.
            if not replay:
                while self._queue.qsize() >= self._max_queue:
                    try:
                        self._queue.get_nowait()
                        self.dropped += 1
                        self._bus._note_drop(self.job_id)
                    except queue_module.Empty:  # pragma: no cover - raced
                        break                   # consumer
            self._queue.put(event)
            if terminal:
                self._finished = True

    # -- consumer side -------------------------------------------------- #
    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """Next event in publish order; None once the stream ended.

        Args:
            timeout: seconds to wait for the next event.

        Returns:
            The next event, or None when the stream has ended (terminal
            event consumed, or :meth:`close` was called).

        Raises:
            TimeoutError: no event arrived within ``timeout``.
        """
        if self._exhausted:
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue_module.Empty:
            raise TimeoutError(
                f"no event within {timeout}s on job {self.job_id!r}") from None
        if item is self._CLOSED:
            self._exhausted = True
            return None
        if isinstance(item, JobStateChanged) and item.terminal:
            self._exhausted = True
        return item  # type: ignore[return-value]

    def __iter__(self) -> Iterator[Event]:
        while True:
            event = self.get()
            if event is None:
                return
            yield event
            if self._exhausted:
                return

    def close(self) -> None:
        """Detach from the bus; a blocked :meth:`get` wakes and returns None."""
        self._bus._unsubscribe(self)
        with self._lock:
            if not self._finished:
                self._finished = True
                self._queue.put(self._CLOSED)


class _DeliveryTurnstile:
    """Per-job delivery gate: events leave the bus strictly in seq order.

    Stamping happens under the (global) bus lock; delivery happens outside
    it, serialised per job by this turnstile, so one job's slow consumer
    (e.g. a storage commit) never blocks other jobs' publishers.
    """

    def __init__(self, first_seq: int) -> None:
        self.cond = threading.Condition()
        self.next_seq = first_seq


class EventBus:
    """Per-job ordered publish/subscribe hub for lifecycle events.

    ``publish`` stamps the event with the job's next sequence number under
    the bus lock, then delivers it to that job's subscriptions through a
    per-job turnstile that releases events strictly in sequence order — so
    all consumers observe the same total order, while a slow consumer of one
    job never stalls another job's publishers.  A terminal
    :class:`JobStateChanged` closes the job's stream: existing subscriptions
    receive it as their last event, and later :meth:`subscribe` calls get the
    (bounded) replay ending in it.

    Memory stays bounded: each live job keeps at most ``history_limit``
    events for replay, and once more than ``retained_jobs`` jobs have
    terminated, the oldest-terminated jobs' stream state is evicted down to
    the terminal event alone (late subscribers still observe termination; a
    compact per-job terminal is the only thing retained for the bus's
    lifetime, mirroring the server's own job registry).
    """

    def __init__(self, history_limit: int = 8192,
                 retained_jobs: int = 128) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        if retained_jobs < 1:
            raise ValueError("retained_jobs must be >= 1")
        self._lock = threading.Lock()
        self._history_limit = history_limit
        self._retained_jobs = retained_jobs
        self._seq: Dict[Optional[int], int] = {}
        self._subs: Dict[Optional[int], List[Subscription]] = {}
        self._terminal: Dict[Optional[int], JobStateChanged] = {}
        # Bounded replay buffer per job (deque(maxlen): O(1) shed-oldest on
        # the publish hot path), so subscribe() after submit() still observes
        # the whole stream.  The terminal event is always the last append and
        # can never be shed.
        self._history: Dict[Optional[int], Deque[Event]] = {}
        self._turnstiles: Dict[Optional[int], _DeliveryTurnstile] = {}
        self._finished_jobs: List[Optional[int]] = []  # terminal order
        # Events shed by lagging subscriber queues, tallied per job across
        # every subscription (including closed ones) so backpressure stays
        # observable through server.status() after the consumer went away.
        self._dropped: Dict[Optional[int], int] = {}
        self._dropped_lock = threading.Lock()

    def publish(self, event: Event) -> Event:
        """Stamp ``event`` with its per-job sequence number and deliver it.

        Args:
            event: the event to publish; its ``job_id`` selects the stream.

        Returns:
            The stamped (sequenced) event that subscribers received.
        """
        publish_start = perf_counter()
        terminal = isinstance(event, JobStateChanged) and event.terminal
        with self._lock:
            job_id = event.job_id
            seq = self._seq.get(job_id, 0)
            self._seq[job_id] = seq + 1
            stamped = dataclasses.replace(event, seq=seq)
            history = self._history.get(job_id)
            if history is None:
                history = self._history[job_id] = deque(
                    maxlen=self._history_limit)
            history.append(stamped)
            if terminal:
                # The stream ends here: remember the terminal event for late
                # subscribers.  (The subscriber list is dropped at delivery
                # time below, so subscribers that register while this event
                # waits at the turnstile still receive it.)
                self._terminal[job_id] = stamped
                self._finished_jobs.append(job_id)
                if len(self._finished_jobs) > self._retained_jobs:
                    # Evict the oldest-terminated job's stream state: only
                    # its terminal event survives (late subscribers still
                    # observe termination), so bus memory is bounded by
                    # retained_jobs * history_limit plus one compact event
                    # per job ever run — a constant factor below the
                    # server's own job registry.
                    evicted = self._finished_jobs.pop(0)
                    self._history.pop(evicted, None)
                    self._seq.pop(evicted, None)
                    self._turnstiles.pop(evicted, None)
            turnstile = self._turnstiles.get(job_id)
            if turnstile is None:
                turnstile = self._turnstiles[job_id] = _DeliveryTurnstile(seq)
        # Delivery outside the bus lock, serialised per job in seq order:
        # concurrent publishers of the *same* job queue up at the turnstile,
        # publishers of other jobs (and seq stamping) are unaffected.
        with turnstile.cond:
            while turnstile.next_seq != seq:
                turnstile.cond.wait()
            with self._lock:
                # The subscriber list is re-read at delivery time: a consumer
                # that subscribed (and replayed) while this event waited at
                # the turnstile must not miss it.
                subs = list(self._subs.get(job_id, ()))
                if terminal:
                    self._subs.pop(job_id, None)
            try:
                for sub in subs:
                    sub._deliver(stamped)
            finally:
                turnstile.next_seq = seq + 1
                turnstile.cond.notify_all()
        _PUBLISH_CHILDREN[type(event).__name__].observe(
            perf_counter() - publish_start)
        return stamped

    def prime(self, job_id: Optional[int], next_seq: int) -> None:
        """Continue a job's sequence numbering across a process restart.

        A recovered server replays a job's history from the durable
        :class:`~repro.automl.eventlog.EventLog`, then publishes *new* events
        for it — those must be stamped after the last logged seq, or clients
        resuming with ``last_seq`` would silently drop them as duplicates.
        ``prime`` sets the next sequence number a fresh (event-less) job
        stream will stamp.  Priming touches *only* the seq numbering: the
        bus's drop counters (:meth:`dropped` / :meth:`dropped_total`) are
        cumulative and survive re-priming untouched.

        Args:
            job_id: the job stream to prime.
            next_seq: the first sequence number the next publish will get
                (one past the last durably logged seq).

        Raises:
            ValueError: negative ``next_seq``, or the job already has events
                on this bus (priming must happen before the first publish).
        """
        if next_seq < 0:
            raise ValueError("next_seq must be >= 0")
        with self._lock:
            if (self._seq.get(job_id, 0) > 0 or job_id in self._history
                    or job_id in self._terminal):
                raise ValueError(
                    f"job {job_id} already has events on this bus; "
                    f"prime() must run before the first publish")
            self._seq[job_id] = next_seq
            self._turnstiles[job_id] = _DeliveryTurnstile(next_seq)

    def subscribe(self, job_id: Optional[int],
                  callback: Optional[Callable[[Event], None]] = None,
                  max_queue: int = 1024) -> Subscription:
        """Attach a consumer to one job's event stream.

        The job's (bounded) history replays into the subscription first, so a
        consumer attaching after the job made progress still observes the
        stream from its start; for an already-terminated job the replay ends
        with the terminal event and iteration stops there.

        Args:
            job_id: the stream to follow.
            callback: optional callable invoked synchronously per event
                (instead of queueing for iteration).  Must be fast and must
                not call back into the bus; its exceptions are swallowed
                (counted in :attr:`Subscription.callback_errors`).
            max_queue: bound on the iterator queue for *live* delivery; the
                oldest events are shed when the consumer falls further
                behind.  The initial replay is exempt — it arrives in full
                (bounded by the bus ``history_limit``), so a late subscriber
                never loses history to its own queue bound.

        Returns:
            A :class:`Subscription`.
        """
        sub = Subscription(self, job_id, max_queue, callback)
        with self._lock:
            turnstile = self._turnstiles.get(job_id)
            if turnstile is None:
                turnstile = self._turnstiles[job_id] = _DeliveryTurnstile(
                    self._seq.get(job_id, 0))
        # Holding the turnstile freezes this job's deliveries (stamping and
        # other jobs are unaffected): everything with seq < next_seq has been
        # delivered to the existing subscribers and is replayed to the new
        # one from history; everything >= next_seq is queued behind us and
        # reaches the new subscriber through publish()'s delivery-time
        # re-read.  No gaps, no duplicates, and replay (which may run user
        # callbacks) never holds the global bus lock.
        with turnstile.cond:
            with self._lock:
                watermark = turnstile.next_seq
                history = self._history.get(job_id)
                terminal = self._terminal.get(job_id)
                if history is None and terminal is not None:
                    # Stream state evicted (old terminated job): only the
                    # terminal event survives to replay.
                    replay: List[Event] = [terminal]
                else:
                    replay = [e for e in (history or ())
                              if e.seq < watermark]
                    if terminal is None or terminal.seq >= watermark:
                        # Stream still open (or its terminal event is still
                        # in flight and will be delivered live): register.
                        self._subs.setdefault(job_id, []).append(sub)
            for event in replay:
                sub._deliver(event, replay=True)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            subs = self._subs.get(sub.job_id)
            if subs and sub in subs:
                subs.remove(sub)
                if not subs:
                    self._subs.pop(sub.job_id, None)

    def _note_drop(self, job_id: Optional[int]) -> None:
        # Called from Subscription._deliver under the subscription's own
        # lock; a dedicated lock avoids any interplay with the bus lock.
        self.note_drops(job_id, 1)

    def note_drops(self, job_id: Optional[int], count: int) -> None:
        """Fold externally shed events into this job's drop accounting.

        Downstream per-consumer buffers (the async edge's per-connection
        write queues) apply the same drop-oldest bound as subscriber queues
        but shed outside the bus; this hook keeps all backpressure sheds in
        one place — the :meth:`dropped` tallies and the
        ``anttune_event_queue_dropped_total{job=...}`` metric.

        Args:
            job_id: the job whose stream shed events.
            count: how many events were shed (must be >= 1 to count).
        """
        if count < 1:
            return
        with self._dropped_lock:
            self._dropped[job_id] = self._dropped.get(job_id, 0) + count
        _QUEUE_DROPPED.labels(job="none" if job_id is None else job_id).inc(
            count)

    def dropped(self, job_id: Optional[int]) -> int:
        """Events shed by ``job_id``'s subscriber queues (all subscriptions).

        Counts live and already-closed subscriptions alike, so a burst that
        outran a consumer stays visible in :meth:`AntTuneServer.status
        <repro.automl.server.AntTuneServer.status>` after the fact.  The
        tally is **cumulative for the bus's lifetime**: neither subscription
        churn nor :meth:`prime` (the recovery path re-priming a job's seq
        numbering) ever resets it.  The same counts are exported as the
        ``anttune_event_queue_dropped_total{job=...}`` metric.
        """
        with self._dropped_lock:
            return self._dropped.get(job_id, 0)

    def dropped_total(self) -> int:
        """Events shed by subscriber queues across every job on this bus.

        Like :meth:`dropped`, cumulative and never reset while the bus
        lives; monotonically equal to the sum of the per-job counts.
        """
        with self._dropped_lock:
            return sum(self._dropped.values())

    def terminated(self, job_id: Optional[int]) -> bool:
        """Whether ``job_id``'s stream has seen its terminal event."""
        with self._lock:
            return job_id in self._terminal
