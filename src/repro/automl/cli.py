"""Command-line interface for inspecting and managing stored studies.

The tune service persists its studies into a SQLite file
(:class:`~repro.automl.storage.StudyStorage`); this module is the operator's
view onto that file::

    python -m repro.automl.cli --db anttune.db list
    python -m repro.automl.cli --db anttune.db show my-study
    python -m repro.automl.cli --db anttune.db resume my-study \
        --space mypkg.search:SPACE --objective mypkg.search:objective
    python -m repro.automl.cli --db anttune.db delete my-study --yes
    python -m repro.automl.cli --db anttune.db gc --max-age-days 30 --dry-run

``list`` and ``show`` are read-only (WAL mode lets them run while a server
checkpoints into the same file).  ``resume`` re-runs a study's remaining
trial budget: because only *state* is persisted — never code — the search
space and objective are imported from ``module:attribute`` references the
caller provides.  ``delete`` drops a study and its trial rows after a
confirmation prompt (``--yes`` skips it).  ``gc`` bulk-deletes terminal
studies older than ``--max-age-days`` (``--dry-run`` previews, ``--states``
narrows the statuses, ``--yes`` skips the prompt).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.automl.storage import StudyStorage
from repro.exceptions import TrialError

__all__ = ["main", "build_parser"]


def _load_object(spec: str) -> object:
    """Import ``module:attribute`` (e.g. ``mypkg.search:objective``).

    Args:
        spec: dotted module path and attribute name joined by ``:``.

    Returns:
        The imported attribute.

    Raises:
        SystemExit: malformed spec, unimportable module or missing attribute
            (argparse-style exit code 2).
    """
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise SystemExit(f"error: expected 'module:attribute', got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(f"error: cannot import module {module_name!r}: {exc}")
    try:
        return getattr(module, attr)
    except AttributeError:
        raise SystemExit(
            f"error: module {module_name!r} has no attribute {attr!r}")


def _format_row(values: Sequence[object], widths: Sequence[int]) -> str:
    return "  ".join(str(v).ljust(w) for v, w in zip(values, widths)).rstrip()


def _print_table(headers: List[str], rows: List[List[object]],
                 out: Callable[[str], None]) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    out(_format_row(headers, widths))
    out(_format_row(["-" * w for w in widths], widths))
    for row in rows:
        out(_format_row(row, widths))


def _cmd_list(storage: StudyStorage, args: argparse.Namespace,
              out: Callable[[str], None]) -> int:
    studies = storage.list_studies()
    if not studies:
        out("no studies stored")
        return 0
    rows = [[s["name"], s["algorithm"], s["status"],
             s["num_trials"], s["completed"] or 0,
             "-" if s["best_value"] is None else f"{s['best_value']:.6g}",
             time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(s["updated_at"]))]
            for s in studies]
    _print_table(["name", "algorithm", "status", "trials", "completed",
                  "best", "updated"], rows, out)
    return 0


def _cmd_show(storage: StudyStorage, args: argparse.Namespace,
              out: Callable[[str], None]) -> int:
    payload = storage.load_payload(args.name)
    config = payload.get("config", {})
    trials = payload.get("trials", [])
    out(f"study:      {args.name}")
    out(f"algorithm:  {payload.get('algorithm')}")
    out(f"checkpoint: v{payload.get('version')}")
    out(f"budget:     {payload.get('budget_used')}/{config.get('n_trials')} slots used")
    out(f"maximize:   {config.get('maximize')}")
    out("")
    if not trials:
        out("no trials recorded")
        return 0
    rows = [[t["trial_id"], t["state"],
             "-" if t["value"] is None else f"{t['value']:.6g}",
             f"{t.get('duration_seconds', 0.0):.3f}s",
             len(t.get("intermediate_values", [])),
             t.get("worker") or "-"]
            for t in trials]
    _print_table(["trial", "state", "value", "duration", "reports", "worker"],
                 rows, out)
    return 0


def _cmd_resume(storage: StudyStorage, args: argparse.Namespace,
                out: Callable[[str], None]) -> int:
    space = _load_object(args.space)
    objective = _load_object(args.objective)
    algorithm = _load_object(args.algorithm) if args.algorithm else None
    if isinstance(algorithm, type) or (
            callable(algorithm) and not hasattr(algorithm, "ask")):
        algorithm = algorithm()  # a class/factory reference, not an instance
    study = storage.load_study(args.name, space, algorithm=algorithm)
    remaining = study.config.n_trials - study._resume_offset
    if remaining <= 0:
        out(f"study {args.name!r} has no remaining trial budget")
        storage.set_status(args.name, "completed")
        return 0
    out(f"resuming {args.name!r}: {remaining} of {study.config.n_trials} "
        f"trial slots left")
    checkpoint = lambda: storage.save_study(args.name, study, status="running")
    try:
        study.optimize(objective, n_workers=args.workers, backend=args.backend,
                       checkpoint_fn=checkpoint)
    except TrialError as exc:
        storage.save_study(args.name, study, status="failed")
        out(f"study failed: {exc}")
        return 1
    storage.save_study(args.name, study, status="completed")
    best = study.best_trial
    out(f"done: best value {best.value:.6g} from trial {best.trial_id} "
        f"with params {best.params}")
    return 0


def _cmd_delete(storage: StudyStorage, args: argparse.Namespace,
                out: Callable[[str], None]) -> int:
    if not args.yes:
        answer = input(f"delete study {args.name!r} and all its trials? [y/N] ")
        if answer.strip().lower() not in ("y", "yes"):
            out("aborted")
            return 1
    storage.delete_study(args.name)
    out(f"deleted {args.name!r}")
    return 0


def _cmd_gc(storage: StudyStorage, args: argparse.Namespace,
            out: Callable[[str], None]) -> int:
    states = ([s.strip() for s in args.states.split(",") if s.strip()]
              if args.states else None)
    try:
        candidates = storage.gc(max_age_days=args.max_age_days, states=states,
                                dry_run=True)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    if not candidates:
        out("nothing to collect")
        return 0
    label = "would delete" if args.dry_run else "deleting"
    out(f"{label} {len(candidates)} study(ies):")
    for name in candidates:
        out(f"  {name}")
    if args.dry_run:
        return 0
    if not args.yes:
        answer = input(f"delete these {len(candidates)} study(ies) and all "
                       f"their trials? [y/N] ")
        if answer.strip().lower() not in ("y", "yes"):
            out("aborted")
            return 1
    # Delete at most the names the user saw (and confirmed), re-checked
    # against the age/status predicate in the same transaction: a study that
    # crossed the cutoff while the prompt waited is not collected, and one
    # that was resumed (running again) or deleted meanwhile is skipped.
    deleted = storage.gc(max_age_days=args.max_age_days, states=states,
                         names=candidates)
    out(f"deleted {len(deleted)} study(ies)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.automl.cli`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.automl.cli",
        description="Inspect and manage studies stored by the AntTune service.")
    parser.add_argument("--db", default="anttune.db",
                        help="path to the StudyStorage SQLite file "
                             "(default: %(default)s)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="summarise every stored study")

    show = sub.add_parser("show", help="per-trial detail of one study")
    show.add_argument("name", help="study name")

    resume = sub.add_parser(
        "resume", help="re-run a study's remaining trial budget")
    resume.add_argument("name", help="study name")
    resume.add_argument("--space", required=True, metavar="MODULE:ATTR",
                        help="import path of the SearchSpace the study used")
    resume.add_argument("--objective", required=True, metavar="MODULE:ATTR",
                        help="import path of the objective callable")
    resume.add_argument("--algorithm", metavar="MODULE:ATTR",
                        help="import path of the algorithm instance/factory "
                             "(required when the study used a non-default one)")
    resume.add_argument("--workers", type=int, default=1,
                        help="worker pool size (default: %(default)s)")
    resume.add_argument("--backend", default="auto",
                        choices=("auto", "sync", "thread", "process"),
                        help="executor backend (default: %(default)s)")

    delete = sub.add_parser("delete", help="drop a study and its trial rows")
    delete.add_argument("name", help="study name")
    delete.add_argument("--yes", action="store_true",
                        help="skip the confirmation prompt")

    gc = sub.add_parser(
        "gc", help="bulk-delete old terminal studies (and their trials)")
    gc.add_argument("--max-age-days", type=float, default=30.0,
                    help="collect studies not updated for this many days "
                         "(default: %(default)s; 0 collects regardless of age)")
    gc.add_argument("--states", metavar="S1,S2,...",
                    help="comma-separated statuses eligible for collection "
                         "(default: completed,failed,cancelled)")
    gc.add_argument("--dry-run", action="store_true",
                    help="only report what would be deleted")
    gc.add_argument("--yes", action="store_true",
                    help="skip the confirmation prompt")
    return parser


def main(argv: Optional[Sequence[str]] = None,
         out: Callable[[str], None] = print) -> int:
    """CLI entry point.

    Args:
        argv: argument list (defaults to ``sys.argv[1:]``).
        out: line sink, injectable for tests.

    Returns:
        Process exit code (0 on success).
    """
    args = build_parser().parse_args(argv)
    commands = {"list": _cmd_list, "show": _cmd_show,
                "resume": _cmd_resume, "delete": _cmd_delete, "gc": _cmd_gc}
    if args.db != ":memory:" and not Path(args.db).exists():
        # Opening a mistyped path would silently create an empty database
        # and report "no studies stored" — error out instead.
        out(f"error: no such database file: {args.db}")
        return 1
    with StudyStorage(args.db) as storage:
        try:
            return commands[args.command](storage, args, out)
        except TrialError as exc:
            out(f"error: {exc}")
            return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
