"""Command-line interface for the tune service: local studies and live servers.

The tune service persists its studies into a SQLite file
(:class:`~repro.automl.storage.StudyStorage`); this module is the operator's
view onto that file — and, with ``--server URL``, onto a *live*
:class:`~repro.automl.remote.http_server.RemoteTuneServer`::

    python -m repro.automl.cli --db anttune.db list
    python -m repro.automl.cli --db anttune.db show my-study
    python -m repro.automl.cli --db anttune.db resume my-study \
        --space mypkg.search:SPACE --objective mypkg.search:objective
    python -m repro.automl.cli --db anttune.db delete my-study --yes
    python -m repro.automl.cli --db anttune.db gc --max-age-days 30 --dry-run

    # the service itself
    python -m repro.automl.cli --db anttune.db serve --port 8123
    python -m repro.automl.cli --db anttune.db serve --port 8123 --recover
    python -m repro.automl.cli --db anttune.db log
    python -m repro.automl.cli --db anttune.db log 3 --after-seq 17
    python -m repro.automl.cli --db anttune.db metrics
    python -m repro.automl.cli metrics --server http://127.0.0.1:8123
    python -m repro.automl.cli metrics --server http://127.0.0.1:8123 \
        --watch 1 --count 5
    python -m repro.automl.cli list --server http://127.0.0.1:8123
    python -m repro.automl.cli show 3 --server http://127.0.0.1:8123
    python -m repro.automl.cli resume my-study --server http://127.0.0.1:8123 \
        --space mypkg.search:SPACE --objective mypkg.search:objective
    python -m repro.automl.cli cancel 3 --server http://127.0.0.1:8123

    # the fleet tier: a router in front of many servers, pull workers behind
    python -m repro.automl.cli route --port 8123 \
        --backend http://127.0.0.1:8124 --backend http://127.0.0.1:8125
    python -m repro.automl.cli work http://127.0.0.1:8124 http://127.0.0.1:8125

``list`` and ``show`` are read-only (WAL mode lets them run while a server
checkpoints into the same file).  ``resume`` re-runs a study's remaining
trial budget: because only *state* is persisted — never code — the search
space and objective are imported from ``module:attribute`` references the
caller provides.  ``delete`` drops a study and its trial rows after a
confirmation prompt (``--yes`` skips it).  ``gc`` bulk-deletes terminal
studies older than ``--max-age-days`` (``--dry-run`` previews, ``--states``
narrows the statuses, ``--yes`` skips the prompt).

``serve`` starts the HTTP front end on this machine's storage file; with
``--recover`` it first reconciles the durable event log against storage —
auto-resuming or finalising jobs a previous process left RUNNING — before
binding the port (the restart drill in ``docs/operations.md``).  ``log``
inspects that event log directly: without arguments it tables every logged
job, with a job id it prints the job's events as NDJSON (one
``event_to_wire`` payload per line, ``--after-seq`` to start mid-stream) —
the exact bytes the ``/v1/jobs/{id}/events`` stream would serve.

``metrics`` prints service metrics: with ``--server`` the live server's
``/v1/metrics`` Prometheus text exposition verbatim (every instrumented hot
path — scheduler ticks, ask/tell latency, trial timings, event-log fsyncs,
HTTP routes); without it a storage-side snapshot derived from the local
``--db`` file and its event log (study/trial counts, logged seq high-water)
in the same exposition syntax.  ``--watch SECONDS`` re-renders on an
interval (``--count`` bounds the renders), making a poor-man's dashboard:
``watch -n1`` without leaving the CLI.

With ``--server URL`` the ``resume``/``list``/``show``/``cancel`` commands
talk to a live server through the SDK client instead of touching any local
file: ``resume`` *submits* the continuation into the live server (sharing
its worker pool, fair-share governor and event bus) and streams the job's
event feed until it finishes — completing the story where the old
in-process resume ran outside the service.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.automl.storage import StudyStorage
from repro.exceptions import TrialError

__all__ = ["main", "build_parser"]


def _load_object(spec: str) -> object:
    """Import ``module:attribute`` (e.g. ``mypkg.search:objective``).

    Args:
        spec: dotted module path and attribute name joined by ``:``.

    Returns:
        The imported attribute.

    Raises:
        SystemExit: malformed spec, unimportable module or missing attribute
            (argparse-style exit code 2).
    """
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise SystemExit(f"error: expected 'module:attribute', got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(f"error: cannot import module {module_name!r}: {exc}")
    try:
        return getattr(module, attr)
    except AttributeError:
        raise SystemExit(
            f"error: module {module_name!r} has no attribute {attr!r}")


def _format_row(values: Sequence[object], widths: Sequence[int]) -> str:
    return "  ".join(str(v).ljust(w) for v, w in zip(values, widths)).rstrip()


def _print_table(headers: List[str], rows: List[List[object]],
                 out: Callable[[str], None]) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    out(_format_row(headers, widths))
    out(_format_row(["-" * w for w in widths], widths))
    for row in rows:
        out(_format_row(row, widths))


def _cmd_list(storage: StudyStorage, args: argparse.Namespace,
              out: Callable[[str], None]) -> int:
    studies = storage.list_studies()
    if not studies:
        out("no studies stored")
        return 0
    rows = [[s["name"], s["algorithm"], s["status"],
             s["num_trials"], s["completed"] or 0,
             "-" if s["best_value"] is None else f"{s['best_value']:.6g}",
             time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(s["updated_at"]))]
            for s in studies]
    _print_table(["name", "algorithm", "status", "trials", "completed",
                  "best", "updated"], rows, out)
    return 0


def _cmd_show(storage: StudyStorage, args: argparse.Namespace,
              out: Callable[[str], None]) -> int:
    payload = storage.load_payload(args.name)
    config = payload.get("config", {})
    trials = payload.get("trials", [])
    out(f"study:      {args.name}")
    out(f"algorithm:  {payload.get('algorithm')}")
    out(f"checkpoint: v{payload.get('version')}")
    out(f"budget:     {payload.get('budget_used')}/{config.get('n_trials')} slots used")
    out(f"maximize:   {config.get('maximize')}")
    out("")
    if not trials:
        out("no trials recorded")
        return 0
    rows = [[t["trial_id"], t["state"],
             "-" if t["value"] is None else f"{t['value']:.6g}",
             f"{t.get('duration_seconds', 0.0):.3f}s",
             len(t.get("intermediate_values", [])),
             t.get("worker") or "-"]
            for t in trials]
    _print_table(["trial", "state", "value", "duration", "reports", "worker"],
                 rows, out)
    return 0


def _cmd_resume(storage: StudyStorage, args: argparse.Namespace,
                out: Callable[[str], None]) -> int:
    space = _load_object(args.space)
    objective = _load_object(args.objective)
    algorithm = _load_object(args.algorithm) if args.algorithm else None
    if isinstance(algorithm, type) or (
            callable(algorithm) and not hasattr(algorithm, "ask")):
        algorithm = algorithm()  # a class/factory reference, not an instance
    study = storage.load_study(args.name, space, algorithm=algorithm)
    remaining = study.config.n_trials - study._resume_offset
    if remaining <= 0:
        out(f"study {args.name!r} has no remaining trial budget")
        storage.set_status(args.name, "completed")
        return 0
    out(f"resuming {args.name!r}: {remaining} of {study.config.n_trials} "
        f"trial slots left")
    checkpoint = lambda: storage.save_study(args.name, study, status="running")
    try:
        study.optimize(objective, n_workers=args.workers, backend=args.backend,
                       checkpoint_fn=checkpoint)
    except TrialError as exc:
        storage.save_study(args.name, study, status="failed")
        out(f"study failed: {exc}")
        return 1
    storage.save_study(args.name, study, status="completed")
    best = study.best_trial
    out(f"done: best value {best.value:.6g} from trial {best.trial_id} "
        f"with params {best.params}")
    return 0


def _cmd_delete(storage: StudyStorage, args: argparse.Namespace,
                out: Callable[[str], None]) -> int:
    if not args.yes:
        answer = input(f"delete study {args.name!r} and all its trials? [y/N] ")
        if answer.strip().lower() not in ("y", "yes"):
            out("aborted")
            return 1
    storage.delete_study(args.name)
    out(f"deleted {args.name!r}")
    return 0


def _cmd_gc(storage: StudyStorage, args: argparse.Namespace,
            out: Callable[[str], None]) -> int:
    states = ([s.strip() for s in args.states.split(",") if s.strip()]
              if args.states else None)
    try:
        candidates = storage.gc(max_age_days=args.max_age_days, states=states,
                                dry_run=True)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    if not candidates:
        out("nothing to collect")
        return 0
    label = "would delete" if args.dry_run else "deleting"
    out(f"{label} {len(candidates)} study(ies):")
    for name in candidates:
        out(f"  {name}")
    if args.dry_run:
        return 0
    if not args.yes:
        answer = input(f"delete these {len(candidates)} study(ies) and all "
                       f"their trials? [y/N] ")
        if answer.strip().lower() not in ("y", "yes"):
            out("aborted")
            return 1
    # Delete at most the names the user saw (and confirmed), re-checked
    # against the age/status predicate in the same transaction: a study that
    # crossed the cutoff while the prompt waited is not collected, and one
    # that was resumed (running again) or deleted meanwhile is skipped.
    deleted = storage.gc(max_age_days=args.max_age_days, states=states,
                         names=candidates)
    out(f"deleted {len(deleted)} study(ies)")
    return 0


def _cmd_log(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Inspect the durable event log that lives next to the storage file.

    Without a job id: one table row per logged job (segments on disk, last
    seq, how the stream ended).  With a job id: the job's events as NDJSON —
    byte-identical to what ``GET /v1/jobs/{id}/events`` would replay, so the
    output pipes straight into ``jq`` or a file for later comparison.
    """
    import json

    from repro.automl.eventlog import EventLog
    from repro.automl.events import JobStateChanged, event_to_wire

    events_dir = args.db + ".events"
    try:
        log = EventLog(events_dir, create=False)
    except FileNotFoundError:
        out(f"error: no event log at {events_dir} (has this --db ever "
            f"served jobs?)")
        return 1
    if args.job is None:
        rows = []
        for job_id in log.jobs():
            meta = log.meta(job_id) or {}
            last = log.last_event(job_id)
            if isinstance(last, JobStateChanged) and last.terminal:
                ended = last.state
            elif last is None:
                ended = "(empty)"
            else:
                ended = "(open)"
            rows.append([job_id, meta.get("study_name", "-"),
                         len(log._segments(job_id)), log.last_seq(job_id),
                         ended])
        if not rows:
            out("no jobs logged")
            return 0
        _print_table(["job", "study", "segments", "last_seq", "ended"],
                     rows, out)
        return 0
    if not str(args.job).isdigit():
        out(f"error: job id must be an integer, got {args.job!r}")
        return 2
    job_id = int(args.job)
    if not log.has_job(job_id):
        out(f"error: job {job_id} is not in the event log")
        return 1
    printed = 0
    for event in log.read(job_id, after_seq=args.after_seq):
        out(json.dumps(event_to_wire(event), sort_keys=True))
        printed += 1
        if args.limit is not None and printed >= args.limit:
            break
    return 0


def _local_metrics_lines(args: argparse.Namespace,
                         out: Callable[[str], None]) -> int:
    """A storage-side metrics snapshot in Prometheus exposition syntax.

    Derived purely from the ``--db`` file and its event log directory — no
    live process involved, so there are no hot-path timings here (scrape a
    running server's ``/v1/metrics`` for those); what the disk *can* answer
    is study/trial accounting and the durable log's shape.
    """
    from repro.automl.eventlog import EventLog

    if args.db != ":memory:" and not Path(args.db).exists():
        out(f"error: no such database file: {args.db}")
        return 1
    out(f"# Storage-side snapshot of {args.db} (no live timings; scrape a "
        f"running server's /v1/metrics for those).")
    with StudyStorage(args.db) as storage:
        studies = storage.list_studies()
        status_counts: dict = {}
        trials = completed = 0
        for study in studies:
            status = study["status"]
            status_counts[status] = status_counts.get(status, 0) + 1
            trials += study["num_trials"] or 0
            completed += study["completed"] or 0
        out("# TYPE anttune_db_studies gauge")
        for status in sorted(status_counts):
            out(f'anttune_db_studies{{status="{status}"}} '
                f'{status_counts[status]}')
        out("# TYPE anttune_db_trials gauge")
        out(f"anttune_db_trials {trials}")
        out(f'anttune_db_trials{{state="completed"}} {completed}')
    events_dir = args.db + ".events"
    try:
        log = EventLog(events_dir, create=False)
    except FileNotFoundError:
        return 0  # this --db never served jobs; the storage lines stand alone
    job_ids = log.jobs()
    segments = sum(len(log._segments(job_id)) for job_id in job_ids)
    out("# TYPE anttune_eventlog_jobs gauge")
    out(f"anttune_eventlog_jobs {len(job_ids)}")
    out("# TYPE anttune_eventlog_segments gauge")
    out(f"anttune_eventlog_segments {segments}")
    out("# TYPE anttune_eventlog_last_seq gauge")
    for job_id in job_ids:
        out(f'anttune_eventlog_last_seq{{job="{job_id}"}} '
            f'{log.last_seq(job_id)}')
    return 0


def _cmd_metrics(args: argparse.Namespace,
                 out: Callable[[str], None]) -> int:
    """Render metrics once, or repeatedly with ``--watch`` (see module docs).

    In watch mode an unreachable ``--server`` (restarting, briefly
    partitioned) is survived: one warning line per outage, then the loop
    keeps polling and resumes rendering when the server returns.  One-shot
    mode still fails loudly.
    """
    remaining = args.count
    warned = False
    while True:
        if args.server:
            try:
                out(_remote_client(args).metrics().rstrip("\n"))
                warned = False
            except TrialError as exc:
                if args.watch is None:
                    raise  # one-shot: main() renders this as an error exit
                if not warned:
                    out(f"warning: cannot fetch metrics from {args.server} "
                        f"({exc}); retrying every {args.watch}s")
                    warned = True
        else:
            code = _local_metrics_lines(args, out)
            if code != 0:
                return code
        if args.watch is None:
            return 0
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        time.sleep(args.watch)
        out("")  # blank separator between refreshes


# --------------------------------------------------------------------------- #
# Server-mode commands (--server URL): talk to a live RemoteTuneServer
# --------------------------------------------------------------------------- #
def _cmd_serve(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Start the HTTP front end over this storage file (blocks until ^C)."""
    from repro.automl.remote.http_server import RemoteTuneServer

    if args.recover and args.db == ":memory:":
        out("error: --recover needs a file-backed --db (the durable event "
            "log lives next to it)")
        return 2
    if args.lease_seconds is not None and args.backend != "ticket":
        out("error: --lease-seconds only applies to --backend ticket")
        return 2
    remote = RemoteTuneServer(
        host=args.host, port=args.port, token=args.token,
        num_workers=args.workers, max_concurrent_jobs=args.max_jobs,
        backend=args.backend, scheduler=args.scheduler,
        lease_seconds=args.lease_seconds,
        storage=args.db if args.db != ":memory:" else None,
        recover=args.recover,
        edge=args.edge, edge_workers=args.edge_workers,
        flush_interval=args.flush_interval,
        write_buffer_limit=args.write_buffer)
    if remote.recovery is not None:
        summary = remote.recovery
        out(f"recovery: resumed={len(summary['resumed'])} "
            f"finalised={len(summary['finalised'])} "
            f"reconciled={len(summary['reconciled'])} "
            f"removed={len(summary['removed'])}")
        for entry in summary["resumed"]:
            out(f"  resumed job {entry['job_id']} "
                f"(study {entry['study_name']!r})")
        for entry in summary["finalised"]:
            out(f"  finalised job {entry['job_id']} as {entry['state']} "
                f"(study {entry['study_name']!r})")
    remote.start()
    out(f"serving AntTune on {remote.url} "
        f"(edge={remote.edge}, workers={args.workers}, "
        f"backend={args.backend}, "
        f"storage={args.db if args.db != ':memory:' else 'off'})")
    try:
        if args.run_seconds is not None:
            time.sleep(args.run_seconds)
        else:  # pragma: no cover - interactive mode, exercised manually
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        out("shutting down")
    finally:
        remote.stop()
    return 0


def _cmd_route(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Serve the fleet router over HTTP in front of backend tune servers."""
    from repro.automl.remote.router import RemoteRouterServer

    if not args.backend:
        out("error: route needs at least one --backend URL")
        return 2
    remote = RemoteRouterServer(
        args.backend, host=args.host, port=args.port, token=args.token,
        replicas=args.replicas, health_interval=args.health_interval,
        health_timeout=args.health_timeout, edge=args.edge)
    remote.start()
    out(f"routing AntTune on {remote.url} (edge={remote.edge}) across "
        f"{len(args.backend)} backend(s): {' '.join(args.backend)}")
    try:
        if args.run_seconds is not None:
            time.sleep(args.run_seconds)
        else:  # pragma: no cover - interactive mode, exercised manually
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        out("shutting down")
    finally:
        remote.stop()
    return 0


def _cmd_work(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Run a pull worker against one or more ``--backend ticket`` servers."""
    from repro.automl.remote.worker import TuneWorker

    worker = TuneWorker(args.servers, name=args.name, token=args.token,
                        poll_interval=args.poll_interval)
    out(f"worker {args.name!r} pulling tickets from {len(args.servers)} "
        f"server(s): {' '.join(args.servers)}")
    try:
        worker.run(run_seconds=args.run_seconds,
                   max_tickets=args.max_tickets)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        worker.stop()
    out(f"worker {args.name!r} done: completed={worker.completed} "
        f"lost={worker.lost}")
    return 0


def _remote_client(args: argparse.Namespace):
    from repro.automl.remote.client import AntTuneClient

    return AntTuneClient(args.server, token=getattr(args, "token", None))


def _cmd_remote_list(args: argparse.Namespace,
                     out: Callable[[str], None]) -> int:
    jobs = _remote_client(args).jobs()
    if not jobs:
        out("no jobs on the server")
        return 0
    rows = [[j["job_id"], j["study_name"], j["state"], j["num_trials"],
             "-" if j["best_value"] is None else f"{j['best_value']:.6g}",
             j["priority"]]
            for j in jobs]
    _print_table(["job", "study", "state", "trials", "best", "priority"],
                 rows, out)
    return 0


def _remote_job_id(args: argparse.Namespace) -> int:
    if not str(args.name).isdigit():
        raise SystemExit(
            f"error: with --server, expected a numeric job id, got {args.name!r} "
            f"(use 'list --server ...' to find job ids)")
    return int(args.name)


def _cmd_remote_show(args: argparse.Namespace,
                     out: Callable[[str], None]) -> int:
    status = _remote_client(args).poll(_remote_job_id(args))
    out(f"job:        {status['job_id']}")
    out(f"study:      {status['study_name']}")
    out(f"state:      {status['state']}")
    out(f"trials:     {status['num_trials']} {status['states']}")
    best = status["best_value"]
    out("best:       " + ("-" if best is None else f"{best:.6g}"))
    out(f"priority:   {status['priority']}")
    telemetry = status.get("telemetry", {})
    out(f"backpressure: transport_dropped={telemetry.get('transport_dropped', 0)} "
        f"event_queue_dropped={telemetry.get('event_queue_dropped', 0)}")
    if status["error"]:
        out(f"error:      {status['error']}")
    return 0


def _cmd_remote_cancel(args: argparse.Namespace,
                       out: Callable[[str], None]) -> int:
    job_id = _remote_job_id(args)
    if _remote_client(args).cancel(job_id):
        out(f"job {job_id} cancelled")
        return 0
    out(f"job {job_id} had already finished")
    return 1


def _cmd_remote_resume(args: argparse.Namespace,
                       out: Callable[[str], None]) -> int:
    """Submit a stored study's continuation into the live server and follow it."""
    client = _remote_client(args)
    job_id = client.resume(args.name, args.space, args.objective,
                           algorithm=args.algorithm,
                           priority=args.priority, preempt=args.preempt)
    out(f"resumed {args.name!r} as job {job_id} on {args.server}")
    if args.no_wait:
        return 0
    from repro.automl.events import JobStateChanged, TrialFinished

    for event in client.subscribe(job_id):
        if isinstance(event, TrialFinished):
            value = "-" if event.value is None else f"{event.value:.6g}"
            out(f"  trial {event.trial_id}: {event.state} value={value}")
        elif isinstance(event, JobStateChanged):
            out(f"  job {job_id}: {event.state}")
    status = client.poll(job_id)
    if status["state"] != "completed":
        out(f"job {job_id} finished {status['state']}"
            + (f": {status['error']}" if status["error"] else ""))
        return 1
    best = client.wait(job_id, timeout=30.0)
    out(f"done: best value {best.value:.6g} from trial {best.trial_id} "
        f"with params {best.params}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.automl.cli`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.automl.cli",
        description="Inspect and manage studies stored by the AntTune service.")
    parser.add_argument("--db", default="anttune.db",
                        help="path to the StudyStorage SQLite file "
                             "(default: %(default)s)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_server_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--server", metavar="URL",
                       help="talk to a live tune server at this base URL "
                            "instead of the local --db file")
        p.add_argument("--token",
                       help="bearer token for --server (when it requires one)")

    lst = sub.add_parser(
        "list", help="summarise every stored study (or, with --server, "
                     "every job on a live server)")
    add_server_options(lst)

    show = sub.add_parser(
        "show", help="per-trial detail of one study (with --server: one "
                     "job's live status by job id)")
    show.add_argument("name", help="study name (or job id with --server)")
    add_server_options(show)

    resume = sub.add_parser(
        "resume", help="re-run a study's remaining trial budget (with "
                       "--server: submit the continuation into a live "
                       "server and stream its events)")
    resume.add_argument("name", help="study name")
    resume.add_argument("--space", required=True, metavar="MODULE:ATTR",
                        help="import path of the SearchSpace the study used")
    resume.add_argument("--objective", required=True, metavar="MODULE:ATTR",
                        help="import path of the objective callable")
    resume.add_argument("--algorithm", metavar="MODULE:ATTR",
                        help="import path of the algorithm instance/factory "
                             "(required when the study used a non-default one)")
    resume.add_argument("--workers", type=int, default=1,
                        help="worker pool size (default: %(default)s; "
                             "local mode only)")
    resume.add_argument("--backend", default="auto",
                        choices=("auto", "sync", "thread", "process"),
                        help="executor backend (default: %(default)s; "
                             "local mode only)")
    resume.add_argument("--priority", type=float, default=1.0,
                        help="fair-share weight on the server "
                             "(default: %(default)s; --server only)")
    resume.add_argument("--preempt", action="store_true",
                        help="claim the fair share immediately on start "
                             "(--server only)")
    resume.add_argument("--no-wait", action="store_true",
                        help="print the job id and return instead of "
                             "streaming events (--server only)")
    add_server_options(resume)

    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running job on a live server "
                       "(requires --server)")
    cancel.add_argument("name", help="job id")
    add_server_options(cancel)

    serve = sub.add_parser(
        "serve", help="serve the tune service over HTTP on this --db file")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8123,
                       help="bind port; 0 picks a free one "
                            "(default: %(default)s)")
    serve.add_argument("--workers", type=int, default=4,
                       help="shared trial worker pool size "
                            "(default: %(default)s)")
    serve.add_argument("--max-jobs", type=int, default=2,
                       help="jobs advancing concurrently "
                            "(default: %(default)s)")
    serve.add_argument("--backend", default="auto",
                       choices=("auto", "sync", "thread", "process",
                                "ticket"),
                       help="executor backend; 'ticket' publishes trials on "
                            "a board for pull workers ('work' command) "
                            "instead of running them locally "
                            "(default: %(default)s)")
    serve.add_argument("--lease-seconds", type=float, default=None,
                       help="ticket lease duration before an unheard-from "
                            "worker's trial is requeued "
                            "(--backend ticket only; default: 15)")
    serve.add_argument("--scheduler", default=None,
                       choices=("round", "async"),
                       help="trial scheduling discipline "
                            "(default: round)")
    serve.add_argument("--token", default=None,
                       help="require 'Authorization: Bearer <token>' on "
                            "every request")
    serve.add_argument("--run-seconds", type=float, default=None,
                       help="serve for this long then exit "
                            "(default: until interrupted; mainly for tests)")
    serve.add_argument("--recover", action="store_true",
                       help="before serving, reconcile the durable event log "
                            "with storage: auto-resume or finalise jobs a "
                            "previous process left RUNNING")
    serve.add_argument("--edge", default=None,
                       choices=("async", "threaded"),
                       help="serving edge: 'async' multiplexes every "
                            "connection on one selectors event loop (holds "
                            "thousands of streams), 'threaded' is the "
                            "thread-per-connection fallback "
                            "(default: $ANTTUNE_EDGE or async)")
    serve.add_argument("--edge-workers", type=int, default=8,
                       help="async edge only: bounded worker pool for "
                            "control handlers and stream backfills "
                            "(default: %(default)s)")
    serve.add_argument("--flush-interval", type=float, default=0.005,
                       help="async edge only: minimum seconds between two "
                            "batched flushes of one event stream — raise to "
                            "trade latency for bigger frames per send "
                            "(default: %(default)s)")
    serve.add_argument("--write-buffer", type=int, default=256 * 1024,
                       help="async edge only: per-connection cap in bytes on "
                            "buffered unsent output before backpressure "
                            "engages (default: %(default)s)")

    route = sub.add_parser(
        "route", help="serve a fleet router: fan submits across backend "
                      "tune servers, heal their streams, migrate jobs off "
                      "dead backends")
    route.add_argument("--backend", action="append", metavar="URL",
                       help="a backend tune server's base URL (repeat for "
                            "each backend; at least one required)")
    route.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    route.add_argument("--port", type=int, default=8123,
                       help="bind port; 0 picks a free one "
                            "(default: %(default)s)")
    route.add_argument("--token", default=None,
                       help="bearer token required of clients and forwarded "
                            "to every backend (a fleet shares one token)")
    route.add_argument("--replicas", type=int, default=64,
                       help="virtual points per backend on the placement "
                            "ring (default: %(default)s)")
    route.add_argument("--health-interval", type=float, default=0.5,
                       help="seconds between backend health sweeps "
                            "(default: %(default)s)")
    route.add_argument("--health-timeout", type=float, default=2.0,
                       help="per-probe timeout before a sweep counts a "
                            "failure (default: %(default)s)")
    route.add_argument("--run-seconds", type=float, default=None,
                       help="route for this long then exit "
                            "(default: until interrupted; mainly for tests)")
    route.add_argument("--edge", default=None,
                       choices=("async", "threaded"),
                       help="serving edge for proxied streams: 'async' "
                            "(event loop) or 'threaded' (fallback) "
                            "(default: $ANTTUNE_EDGE or async)")

    work = sub.add_parser(
        "work", help="run a pull worker: claim trial tickets from "
                     "'serve --backend ticket' servers and execute them here")
    work.add_argument("servers", nargs="+", metavar="URL",
                      help="base URLs of the tune servers to poll "
                           "(round-robin)")
    work.add_argument("--name", default="pull-worker",
                      help="worker label stamped into claimed trials "
                           "(default: %(default)s)")
    work.add_argument("--token", default=None,
                      help="bearer token shared with the servers")
    work.add_argument("--poll-interval", type=float, default=0.2,
                      help="sleep between claim sweeps that found no work "
                           "(default: %(default)s)")
    work.add_argument("--run-seconds", type=float, default=None,
                      help="work for this long then exit "
                           "(default: until interrupted)")
    work.add_argument("--max-tickets", type=int, default=None,
                      help="exit after completing this many tickets "
                           "(default: unbounded)")

    metrics_cmd = sub.add_parser(
        "metrics", help="print service metrics: a live server's Prometheus "
                        "/v1/metrics exposition (--server), or a "
                        "storage-side snapshot of the local --db")
    metrics_cmd.add_argument("--watch", type=float, default=None,
                             metavar="SECONDS",
                             help="re-render every SECONDS (default: print "
                                  "once and exit)")
    metrics_cmd.add_argument("--count", type=int, default=None,
                             help="with --watch, stop after this many "
                                  "renders (default: until interrupted)")
    add_server_options(metrics_cmd)

    log_cmd = sub.add_parser(
        "log", help="inspect the durable event log next to --db "
                    "(<db>.events): list logged jobs, or dump one job's "
                    "events as NDJSON")
    log_cmd.add_argument("job", nargs="?", default=None,
                         help="job id to dump; omitted lists every logged job")
    log_cmd.add_argument("--after-seq", type=int, default=-1,
                         help="dump only events with seq greater than this "
                              "(default: the whole log)")
    log_cmd.add_argument("--limit", type=int, default=None,
                         help="stop after this many events")

    delete = sub.add_parser("delete", help="drop a study and its trial rows")
    delete.add_argument("name", help="study name")
    delete.add_argument("--yes", action="store_true",
                        help="skip the confirmation prompt")

    gc = sub.add_parser(
        "gc", help="bulk-delete old terminal studies (and their trials)")
    gc.add_argument("--max-age-days", type=float, default=30.0,
                    help="collect studies not updated for this many days "
                         "(default: %(default)s; 0 collects regardless of age)")
    gc.add_argument("--states", metavar="S1,S2,...",
                    help="comma-separated statuses eligible for collection "
                         "(default: completed,failed,cancelled)")
    gc.add_argument("--dry-run", action="store_true",
                    help="only report what would be deleted")
    gc.add_argument("--yes", action="store_true",
                    help="skip the confirmation prompt")
    return parser


def main(argv: Optional[Sequence[str]] = None,
         out: Callable[[str], None] = print) -> int:
    """CLI entry point.

    Args:
        argv: argument list (defaults to ``sys.argv[1:]``).
        out: line sink, injectable for tests.

    Returns:
        Process exit code (0 on success).
    """
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        # serve creates the storage file if missing (a fresh service).
        return _cmd_serve(args, out)
    if args.command == "route":
        return _cmd_route(args, out)
    if args.command == "work":
        return _cmd_work(args, out)
    if args.command == "log":
        # log reads the events directory next to --db, not the db itself.
        return _cmd_log(args, out)
    if args.command == "metrics":
        try:
            return _cmd_metrics(args, out)
        except KeyboardInterrupt:  # pragma: no cover - interactive --watch
            return 0
        except TrialError as exc:
            out(f"error: {exc}")
            return 1
    if getattr(args, "server", None):
        remote_commands = {"list": _cmd_remote_list, "show": _cmd_remote_show,
                           "resume": _cmd_remote_resume,
                           "cancel": _cmd_remote_cancel}
        try:
            return remote_commands[args.command](args, out)
        except TrialError as exc:
            out(f"error: {exc}")
            return 1
        except ValueError as exc:  # the server rejected the request shape
            out(f"error: {exc}")
            return 2
    if args.command == "cancel":
        out("error: cancel needs --server URL; jobs live on a running "
            "tune server, not in the storage file")
        return 2
    commands = {"list": _cmd_list, "show": _cmd_show,
                "resume": _cmd_resume, "delete": _cmd_delete, "gc": _cmd_gc}
    if args.db != ":memory:" and not Path(args.db).exists():
        # Opening a mistyped path would silently create an empty database
        # and report "no studies stored" — error out instead.
        out(f"error: no such database file: {args.db}")
        return 1
    with StudyStorage(args.db) as storage:
        try:
            return commands[args.command](storage, args, out)
        except TrialError as exc:
            out(f"error: {exc}")
            return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
