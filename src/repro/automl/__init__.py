"""AntTune-style hyper-parameter optimisation (Sec. IV-C, Fig. 8)."""

from repro.automl.algorithms import (
    RACOS,
    BayesianOptimization,
    EvolutionarySearch,
    GridSearch,
    RandomSearch,
    SearchAlgorithm,
)
from repro.automl.executors import (
    SynchronousExecutor,
    ThreadPoolTrialExecutor,
    TrialExecutor,
    make_executor,
)
from repro.automl.presets import apply_params_to_config, pre_designed_model_space
from repro.automl.pruners import MedianPruner, NoPruner, Pruner
from repro.automl.search_space import Choice, IntUniform, LogUniform, ParamSpec, SearchSpace, Uniform
from repro.automl.server import AntTuneClient, AntTuneServer, TuneJob
from repro.automl.study import Study, StudyConfig
from repro.automl.trial import PrunedTrial, Trial, TrialCancelled, TrialState

__all__ = [
    "SearchSpace",
    "ParamSpec",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "Choice",
    "Trial",
    "TrialState",
    "PrunedTrial",
    "TrialCancelled",
    "Study",
    "StudyConfig",
    "TrialExecutor",
    "SynchronousExecutor",
    "ThreadPoolTrialExecutor",
    "make_executor",
    "Pruner",
    "NoPruner",
    "MedianPruner",
    "SearchAlgorithm",
    "RandomSearch",
    "GridSearch",
    "EvolutionarySearch",
    "BayesianOptimization",
    "RACOS",
    "AntTuneServer",
    "AntTuneClient",
    "TuneJob",
    "pre_designed_model_space",
    "apply_params_to_config",
]
