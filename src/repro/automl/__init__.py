"""AntTune-style hyper-parameter optimisation (Sec. IV-C, Fig. 8)."""

from repro.automl.algorithms import (
    RACOS,
    BayesianOptimization,
    EvolutionarySearch,
    GridSearch,
    RandomSearch,
    SearchAlgorithm,
)
from repro.automl.eventlog import EventLog
from repro.automl.events import (
    EventBus,
    JobStateChanged,
    Subscription,
    TrialEvent,
    TrialFinished,
    TrialKilled,
    TrialReport,
    TrialStarted,
)
from repro.automl.executors import (
    ProcessPoolTrialExecutor,
    SynchronousExecutor,
    ThreadPoolTrialExecutor,
    TrialExecutor,
    make_executor,
    worker_rng,
)
from repro.automl.presets import apply_params_to_config, pre_designed_model_space
from repro.automl.pruners import MedianPruner, NoPruner, Pruner
from repro.automl.scheduler import (
    AsyncScheduler,
    FairShareGovernor,
    GovernedExecutor,
    RoundScheduler,
    TelemetryMonitor,
    TrialScheduler,
    make_scheduler,
)
from repro.automl.search_space import Choice, IntUniform, LogUniform, ParamSpec, SearchSpace, Uniform
from repro.automl.server import AntTuneClient, AntTuneServer, JobState, TuneJob
from repro.automl.storage import StudyStorage
from repro.automl.transport import TelemetryTransport
from repro.automl.study import Study, StudyConfig
from repro.automl.trial import PrunedTrial, Trial, TrialCancelled, TrialState

# Imported last: the remote layer sits on top of every module above.
from repro.automl.remote import RemoteTuneClient, RemoteTuneServer  # noqa: E402

__all__ = [
    "SearchSpace",
    "ParamSpec",
    "Uniform",
    "LogUniform",
    "IntUniform",
    "Choice",
    "Trial",
    "TrialState",
    "PrunedTrial",
    "TrialCancelled",
    "Study",
    "StudyConfig",
    "StudyStorage",
    "TrialExecutor",
    "SynchronousExecutor",
    "ThreadPoolTrialExecutor",
    "ProcessPoolTrialExecutor",
    "worker_rng",
    "make_executor",
    "TrialScheduler",
    "RoundScheduler",
    "AsyncScheduler",
    "make_scheduler",
    "TelemetryMonitor",
    "TelemetryTransport",
    "FairShareGovernor",
    "GovernedExecutor",
    "EventBus",
    "EventLog",
    "Subscription",
    "TrialEvent",
    "TrialStarted",
    "TrialReport",
    "TrialKilled",
    "TrialFinished",
    "JobStateChanged",
    "Pruner",
    "NoPruner",
    "MedianPruner",
    "SearchAlgorithm",
    "RandomSearch",
    "GridSearch",
    "EvolutionarySearch",
    "BayesianOptimization",
    "RACOS",
    "AntTuneServer",
    "AntTuneClient",
    "RemoteTuneServer",
    "RemoteTuneClient",
    "JobState",
    "TuneJob",
    "pre_designed_model_space",
    "apply_params_to_config",
]
