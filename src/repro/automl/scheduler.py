"""Trial schedulers: how a study keeps its worker pool busy (Fig. 8 dispatch).

Two scheduling disciplines drive the executor pool:

* :class:`RoundScheduler` — the deterministic default.  Up to ``n_workers``
  configurations are asked from the algorithm, evaluated concurrently as one
  batch, then told back in submission order.  Because the batch forms a
  barrier, a fixed seed always yields the same trial set, but one straggler
  idles every other worker until the round ends.
* :class:`AsyncScheduler` — slot refill.  All ``n_workers`` slots are kept
  busy at all times: the moment any trial finishes it is told back (under the
  study lock, so every sequential algorithm still works unchanged) and a new
  configuration is asked and submitted into the freed slot.  A straggler only
  occupies its own slot.  Completion order feeds the algorithm, so the trial
  *sequence* is not reproducible across runs — use the round scheduler when
  bit-identical replays matter.

Both schedulers share the study's retry policy (a failed configuration is
resubmitted up to ``max_retries`` times without consuming extra budget slots),
per-trial deadlines and the total time limit.  On every refill tick they also:

* **drain live telemetry** (:class:`TelemetryMonitor`) — intermediate values
  streamed back by in-flight trials (including process-backend ones, over the
  shared-memory transport) are published to the study's event sink as
  :class:`~repro.automl.events.TrialReport` events and fed to the study's
  pruner; a futureless trial is killed mid-run instead of running to its
  deadline;
* **observe cancellation** — a :meth:`Study.request_stop` (e.g. the tune
  server's ``cancel(job_id)``) expires everything in flight with the
  ``CANCELLED`` terminal state within one tick;
* **requeue preempted trials** — a trial killed with
  :data:`~repro.automl.trial.KILL_PREEMPTED` (the tune server yielding slots
  to a ``preempt=True`` high-priority job) is resubmitted with the same
  configuration, without charging a budget slot or a retry.

Fair sharing of one pool between jobs is provided by
:class:`FairShareGovernor` and :class:`GovernedExecutor`: the governor
apportions the pool's slots among registered jobs by priority weight, and the
governed view caps each job's refill width at its current allowance, so a
latency-sensitive job overtakes a bulk sweep as slots free up instead of
queueing behind it FIFO.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.automl import metrics as _metrics
from repro.automl.events import TrialKilled, TrialReport
from repro.automl.executors import (
    STARVATION_GRACE_FACTOR,
    TICK_INTERVAL,
    TrialExecutor,
    expire_trial,
)
from repro.automl.pruners import NoPruner
from repro.automl.trial import (
    KILL_CANCELLED,
    KILL_DEADLINE,
    KILL_PREEMPTED,
    KILL_PRUNED,
    KILLED_STATES,
    Trial,
    TrialState,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.automl.study import Study

__all__ = [
    "TrialScheduler",
    "RoundScheduler",
    "AsyncScheduler",
    "make_scheduler",
    "TelemetryMonitor",
    "FairShareGovernor",
    "GovernedExecutor",
]

Objective = Callable[[Trial], float]
CheckpointFn = Optional[Callable[[], None]]
SchedulerLike = Union[None, str, "TrialScheduler"]

# Tick work (telemetry drain, pruning, deadline checks, refill) — the wait
# itself is excluded, so the histogram shows scheduling cost, not idleness.
_TICK_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_scheduler_tick_seconds",
    "Scheduler tick work duration (drain, prune, deadlines, refill), "
    "excluding the inter-tick wait.", labels=("scheduler",))
_TICKS_TOTAL = _metrics.REGISTRY.counter(
    "anttune_scheduler_ticks_total", "Scheduler ticks run.",
    labels=("scheduler",))
_SLOTS_BUSY = _metrics.REGISTRY.gauge(
    "anttune_scheduler_slots_busy",
    "In-flight trials occupying executor slots (last tick's view).",
    labels=("scheduler",))


class TelemetryMonitor:
    """Turns live telemetry into events and prune decisions between ticks.

    Schedulers call :meth:`observe` on every refill tick.  The executor's
    telemetry is drained (mirroring process-backend reports into the local
    trial objects through the shared-memory transport), every newly visible
    intermediate value is published to the study's event sink as a
    :class:`~repro.automl.events.TrialReport` — one ordered stream regardless
    of backend — and any trial with new reports is judged by the study's
    pruner.  A futureless trial is killed with
    :data:`~repro.automl.trial.KILL_PRUNED` (published as
    :class:`~repro.automl.events.TrialKilled`), which its objective observes
    at the next ``report()`` — so even a remote straggler stops mid-run.

    With a :class:`~repro.automl.pruners.NoPruner` the monitor only drains
    and publishes (keeping intermediate values visible to ``status()`` and
    subscriptions mid-run) and never kills, so the round scheduler's
    determinism is unaffected.
    """

    def __init__(self, study: "Study", executor: TrialExecutor) -> None:
        self.study = study
        self.executor = executor
        self.prune_active = not isinstance(study.pruner, NoPruner)
        # Reports already published/judged per trial id, so each new report
        # hits the bus (and the pruner) exactly once.
        self._seen: Dict[int, int] = {}

    def _publish_new_reports(self, trial: Trial) -> bool:
        """Publish the trial's reports not yet on the stream (step order).

        The stream mirrors ``intermediate_values`` faithfully — including
        NaN entries, whether a user-reported diverged loss or a
        ring-overflow pad — so subscribers and ``status()`` agree.

        Returns:
            Whether any new report was published (i.e. the pruner has new
            evidence to judge).
        """
        seen = self._seen.get(trial.trial_id, 0)
        if len(trial.intermediate_values) <= seen:
            return False  # cheap pre-check before taking the lock
        with trial._state_lock:
            fresh = trial.intermediate_values[seen:]
        if not fresh:
            return False
        self._seen[trial.trial_id] = seen + len(fresh)
        for offset, value in enumerate(fresh):
            self.study.publish_event(TrialReport(
                trial_id=trial.trial_id, step=seen + offset, value=value))
        return True

    def observe(self, trials: Sequence[Trial]) -> None:
        """Drain telemetry, publish new reports, prune futureless trials.

        Args:
            trials: the caller's in-flight trials (other jobs' trials on a
                shared executor are mirrored too, but only published and
                judged by their own scheduler).
        """
        self.executor.drain_telemetry()
        if not self.prune_active and self.study._event_sink is None:
            # Bare study, no pruner: the drain above keeps intermediate
            # values visible; there is nobody to publish to or judge for.
            return
        for trial in trials:
            if trial.is_finished or trial.is_cancelled:
                continue
            if not self._publish_new_reports(trial):
                continue
            if not self.prune_active:
                continue
            with self.study._lock:
                prune = self.study.pruner.should_prune(
                    trial, self.study.trials, self.study.config.maximize)
            if prune:
                self.executor.kill_trial(trial, KILL_PRUNED)
                if trial.kill_reason == KILL_PRUNED:
                    # First kill wins: only the reason that actually landed
                    # is published, so a trial's stream never carries
                    # contradictory kill events.  Reports are flushed first
                    # so the kill never precedes values it was based on.
                    self._publish_new_reports(trial)
                    self.study.publish_event(TrialKilled(
                        trial_id=trial.trial_id, reason=KILL_PRUNED))

    def flush(self, trial: Trial) -> None:
        """Publish a settling trial's not-yet-published reports.

        Called right before the trial is told back (and its
        :class:`~repro.automl.events.TrialFinished` publishes), so even a
        trial faster than one tick gets every report onto the stream, in step
        order, ahead of its terminal event.
        """
        self._publish_new_reports(trial)

    def forget(self, trial: Trial) -> None:
        """Stop tracking a settled trial (frees the seen-report counter)."""
        self._seen.pop(trial.trial_id, None)


class TrialScheduler:
    """Strategy for feeding asked configurations into a :class:`TrialExecutor`."""

    name: str = "base"

    def run(self, study: "Study", objective: Objective, executor: TrialExecutor,
            remaining: int, worker_names: Sequence[str],
            checkpoint_fn: CheckpointFn = None) -> None:
        """Consume ``remaining`` budget slots of ``study`` on ``executor``.

        Args:
            study: the study whose algorithm is asked/told (under its lock).
            objective: the user callable evaluated per trial.
            executor: the worker pool to keep busy.
            remaining: how many budget slots are left to consume.
            worker_names: round-robin worker attribution labels.
            checkpoint_fn: invoked after every consumed budget slot.
        """
        raise NotImplementedError


class RoundScheduler(TrialScheduler):
    """Round-barrier batches: deterministic, but stragglers idle the batch."""

    name = "round"

    def run(self, study: "Study", objective: Objective, executor: TrialExecutor,
            remaining: int, worker_names: Sequence[str],
            checkpoint_fn: CheckpointFn = None) -> None:
        """Run batches of up to ``executor.n_workers`` trials behind a barrier.

        Each batch waits with a tick callback, so live telemetry still feeds
        the pruner mid-batch and a cancellation expires the batch within one
        tick instead of at the barrier.
        """
        names = list(worker_names)
        config = study.config
        monitor = TelemetryMonitor(study, executor)
        tick_seconds = _TICK_SECONDS.labels(scheduler=self.name)
        ticks_total = _TICKS_TOTAL.labels(scheduler=self.name)
        slots_busy = _SLOTS_BUSY.labels(scheduler=self.name)
        start_time = time.perf_counter()
        hard_deadline = (None if config.total_time_limit is None
                         else start_time + config.total_time_limit)
        while (remaining > 0 and not study.stop_requested
               and not study._total_time_exceeded(start_time)):
            batch_size = min(executor.n_workers, remaining)
            asked = [study.ask_params() for _ in range(batch_size)]
            # One entry per asked config: retries mutate in place, and
            # ``charged`` marks configs that reached a budget-consuming
            # outcome — a config the time limit abandons before it ever ran
            # (or whose preempted requeue never re-ran) must not consume a
            # slot, so a resume re-runs it.
            entries = [{"params": params, "retries": 0, "charged": False}
                       for params in asked]
            pending = list(entries)
            while pending and not study._total_time_exceeded(start_time):
                # Cap each retry/requeue wave at the *current* pool width: a
                # GovernedExecutor's allowance may have shrunk since the ask
                # (a preempt=True co-tenant arrived), and resubmitting more
                # than the share would re-saturate the slots the preemptor
                # was owed.  The remainder waits for the next wave.
                width = max(1, executor.n_workers)
                active, pending = pending[:width], pending[width:]
                batch: List[Trial] = []
                with study._lock:
                    for entry in active:
                        batch.append(study._new_trial(
                            dict(entry["params"]),
                            names[len(study.trials) % len(names)]))
                for trial in batch:
                    # Outside the study lock: event delivery may block.
                    study._publish_started(trial)

                def tick() -> bool:
                    tick_start = time.perf_counter()
                    monitor.observe(batch)
                    slots_busy.set(sum(1 for t in batch
                                       if not t.is_finished))
                    ticks_total.inc()
                    tick_seconds.observe(time.perf_counter() - tick_start)
                    return study.stop_requested

                executor.run_batch(objective, batch, config.trial_time_limit,
                                   hard_deadline=hard_deadline, tick_fn=tick)
                for trial in batch:
                    monitor.flush(trial)
                    reason = trial.kill_reason
                    if (reason is not None and reason != KILL_PRUNED
                            and trial.state is KILLED_STATES.get(reason)):
                        # The round path's kills (cancel/deadline inside
                        # run_batch, preemption from the server) publish here
                        # — after the report flush, before TrialFinished —
                        # matching the async path's event contract.  Prune
                        # kills were already published by the monitor, and a
                        # killed trial that still finished normally (or never
                        # started: FAILED) gets no kill event.
                        study.publish_event(TrialKilled(
                            trial_id=trial.trial_id, reason=reason))
                    study.tell(trial)
                    monitor.forget(trial)
                if study.stop_requested:
                    # Cancelled mid-batch: the batch's trials were expired as
                    # CANCELLED by run_batch; nothing is retried and the
                    # consumed slots are not charged to the budget.
                    return
                requeue = []
                for entry, trial in zip(active, batch):
                    if (trial.state == TrialState.FAILED
                            and entry["retries"] < config.max_retries):
                        entry["retries"] += 1
                        requeue.append(entry)
                    elif (trial.state == TrialState.CANCELLED
                            and trial.kill_reason == KILL_PREEMPTED):
                        # Preempted by a higher-priority job: re-run the same
                        # configuration without charging a retry.
                        requeue.append(entry)
                    else:
                        entry["charged"] = True
                pending = requeue + pending
            # Only configs that reached a terminal, budget-consuming outcome
            # are charged; anything the time limit abandoned (never ran, or a
            # preempted/retry requeue that never re-ran) stays unconsumed for
            # a later resume.
            study._budget_used += sum(
                1 for entry in entries if entry["charged"])
            remaining -= batch_size
            if checkpoint_fn is not None:
                checkpoint_fn()
        slots_busy.set(0)


@dataclass
class _Flight:
    """One in-flight trial: the asked params, its retry count and deadlines."""

    params: Dict[str, object]
    retries: int
    trial: Trial
    deadline: Optional[float]
    submitted_at: float


class AsyncScheduler(TrialScheduler):
    """Slot refill: every finished trial immediately frees a slot for the next.

    ask/tell stay serialised under the study lock, so algorithms see a
    consistent history; only the *order* in which results arrive depends on
    completion timing.
    """

    name = "async"

    def run(self, study: "Study", objective: Objective, executor: TrialExecutor,
            remaining: int, worker_names: Sequence[str],
            checkpoint_fn: CheckpointFn = None) -> None:
        """Keep up to ``executor.n_workers`` slots busy until the budget drains.

        The loop wakes at least every :data:`~repro.automl.executors.TICK_INTERVAL`
        to drain telemetry, feed the pruner, enforce deadlines and observe
        cancellation; ``executor.n_workers`` is re-read on every refill, so a
        :class:`GovernedExecutor` allowance change takes effect within a tick.
        """
        names = list(worker_names)
        config = study.config
        monitor = TelemetryMonitor(study, executor)
        tick_seconds = _TICK_SECONDS.labels(scheduler=self.name)
        ticks_total = _TICKS_TOTAL.labels(scheduler=self.name)
        slots_busy = _SLOTS_BUSY.labels(scheduler=self.name)
        start_time = time.perf_counter()
        in_flight: Dict["Future[Trial]", _Flight] = {}
        # Configurations killed by preemption, waiting to re-run.  They go
        # through refill() — not straight back to launch() — so the requeue
        # honours the job's (now smaller) fair-share allowance instead of
        # instantly re-saturating the slots the preemptor was owed.
        requeued: List = []
        submitted = 0

        def launch(params: Dict[str, object], retries: int) -> None:
            with study._lock:
                trial = study._new_trial(dict(params),
                                         names[len(study.trials) % len(names)])
            # Outside the study lock (event delivery may block), before the
            # submit so TrialStarted precedes anything the worker produces.
            study._publish_started(trial)
            future = executor.submit(objective, trial, config.trial_time_limit)
            now = time.perf_counter()
            deadline = (None if config.trial_time_limit is None
                        else now + config.trial_time_limit)
            in_flight[future] = _Flight(params, retries, trial, deadline, now)

        def refill() -> None:
            nonlocal submitted
            while (len(in_flight) < executor.n_workers
                   and not study.stop_requested
                   and not study._total_time_exceeded(start_time)):
                if requeued:
                    params, retries = requeued.pop(0)
                    launch(params, retries)
                    continue
                if submitted >= remaining:
                    break
                launch(study.ask_params(), retries=0)
                submitted += 1

        def settle(flight: _Flight) -> None:
            """Tell a finished trial back and either retry it or consume a slot."""
            monitor.flush(flight.trial)
            if (flight.trial.state == TrialState.CANCELLED
                    and flight.trial.kill_reason == KILL_PREEMPTED):
                # The kill event publishes here — the victim's own scheduler
                # thread — not from the preemptor's, so a subscriber never
                # sees TrialKilled for (or after) a normally-finished trial:
                # per-trial order stays started → reports → killed → finished.
                study.publish_event(TrialKilled(
                    trial_id=flight.trial.trial_id, reason=KILL_PREEMPTED))
            study.tell(flight.trial)
            monitor.forget(flight.trial)
            if (flight.trial.state == TrialState.CANCELLED
                    and flight.trial.kill_reason == KILL_PREEMPTED
                    and not study.stop_requested
                    and not study._total_time_exceeded(start_time)):
                # Preempted by a higher-priority job: requeue the same
                # configuration — no budget slot and no retry is charged.
                # Queued for refill() so the re-run waits for an allowance
                # slot: the whole point was to hand this slot to the
                # preemptor.
                requeued.append((flight.params, flight.retries))
            elif flight.trial.state == TrialState.CANCELLED:
                # Cancelled slots are not charged (matching the round path):
                # a later resume re-runs them with the remaining budget.
                if checkpoint_fn is not None:
                    checkpoint_fn()
            elif (flight.trial.state == TrialState.FAILED
                    and flight.retries < config.max_retries
                    and not study.stop_requested
                    and not study._total_time_exceeded(start_time)):
                launch(flight.params, flight.retries + 1)
            else:
                study._budget_used += 1
                if checkpoint_fn is not None:
                    checkpoint_fn()

        def drain_all(reason: str) -> None:
            """Expire everything still in flight (cancellation / time budget)."""
            for future, flight in list(in_flight.items()):
                in_flight.pop(future)
                if not future.done():
                    # A future that already completed finished normally; a
                    # kill (event) for it would contradict its TrialFinished.
                    executor.kill_trial(flight.trial, reason)
                expire_trial(flight.trial, future,
                             config.trial_time_limit or 0.0, reason=reason)
                if (flight.trial.kill_reason == reason
                        and flight.trial.state is KILLED_STATES.get(reason)):
                    # Publish only when this kill actually decided the
                    # terminal state: first kill wins (no contradictory
                    # reasons), and a never-started trial recorded FAILED
                    # for retry gets no kill event — matching the round
                    # path.  Pending reports flush ahead of the kill event.
                    monitor.flush(flight.trial)
                    study.publish_event(TrialKilled(
                        trial_id=flight.trial.trial_id, reason=reason))
                settle(flight)

        refill()
        while in_flight:
            if study.stop_requested:
                # Job cancelled: everything in flight is expired CANCELLED
                # within this tick; settle() never retries a cancelled trial.
                drain_all(KILL_CANCELLED)
                break
            if study._total_time_exceeded(start_time):
                # Total study budget spent: nothing may outlive it (matches
                # the round path's hard deadline) — expire everything still
                # in flight; settle() won't retry past the limit.
                drain_all(KILL_DEADLINE)
                break
            deadlines = [f.deadline for f in in_flight.values() if f.deadline is not None]
            if config.total_time_limit is not None:
                deadlines.append(start_time + config.total_time_limit)
            timeout = (max(0.0, min(deadlines) - time.perf_counter()) + 0.01
                       if deadlines else None)
            # Wake at least every tick: telemetry, pruning and cancellation
            # must not wait for the next completion or deadline.
            timeout = TICK_INTERVAL if timeout is None else min(timeout, TICK_INTERVAL)
            done, _ = wait(list(in_flight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            tick_start = time.perf_counter()
            for future in done:
                flight = in_flight.pop(future)
                exc = future.exception()
                if exc is not None:
                    # Only non-Exception BaseExceptions (e.g. KeyboardInterrupt)
                    # escape execute_trial: surface them on the scheduling
                    # thread so the study aborts instead of spinning.
                    raise exc
                settle(flight)
            now = time.perf_counter()
            for future, flight in list(in_flight.items()):
                if flight.deadline is None or now <= flight.deadline or future.done():
                    continue
                limit = config.trial_time_limit or 0.0
                started = flight.trial.started_at
                if started is None and future.running():
                    # Process workers never ship started_at back mid-run; the
                    # first time the future reports running is the best proxy.
                    flight.trial.started_at = started = now
                if started is not None and now <= started + limit:
                    # The trial spent part of its window queued behind other
                    # work (e.g. another job sharing the pool): the clock runs
                    # from actual start, so re-arm to the true deadline.
                    flight.deadline = started + limit
                    continue
                if started is None and not future.running():
                    # Still queued: don't fail a healthy trial for pool
                    # contention; its clock starts when it does — but bound
                    # the wait so a wedged pool can't hang the study.
                    # (Process workers never report started_at back, but they
                    # also turn running only when handed to a worker.)
                    grace_deadline = (flight.submitted_at
                                      + limit * STARVATION_GRACE_FACTOR)
                    if now < grace_deadline:
                        flight.deadline = min(now + limit, grace_deadline)
                        continue
                executor.kill_trial(flight.trial, KILL_DEADLINE)
                expire_trial(flight.trial, future, limit)
                if (flight.trial.kill_reason == KILL_DEADLINE
                        and flight.trial.state is TrialState.TIMED_OUT):
                    # Publish only when the deadline kill decided the
                    # terminal state: a never-started trial records FAILED
                    # (retryable) and gets no kill event.  Pending reports
                    # flush ahead of the kill event.
                    monitor.flush(flight.trial)
                    study.publish_event(TrialKilled(
                        trial_id=flight.trial.trial_id, reason=KILL_DEADLINE))
                in_flight.pop(future)
                settle(flight)
            monitor.observe([f.trial for f in in_flight.values()])
            refill()
            slots_busy.set(len(in_flight))
            ticks_total.inc()
            tick_seconds.observe(time.perf_counter() - tick_start)
        slots_busy.set(0)


# --------------------------------------------------------------------------- #
# Fair sharing of one executor between jobs
# --------------------------------------------------------------------------- #
class FairShareGovernor:
    """Weighted apportionment of a pool's slots among concurrently running jobs.

    Each registered owner (a tune-server job) holds a positive priority
    weight; :meth:`allowance` apportions ``total_slots`` proportionally to
    the weights using the largest-remainder method, with deterministic
    tie-breaking by registration order and a guaranteed minimum of one slot
    per owner (so a low-priority job is slowed, never starved).  Schedulers
    re-read their allowance on every refill tick through
    :class:`GovernedExecutor`, so shares rebalance within a tick whenever a
    job registers or finishes.
    """

    def __init__(self, total_slots: int) -> None:
        if total_slots < 1:
            raise ValueError("total_slots must be >= 1")
        self.total_slots = int(total_slots)
        self._lock = threading.Lock()
        # dicts preserve insertion order: registration order breaks ties.
        self._weights: Dict[object, float] = {}

    def register(self, owner: object, weight: float = 1.0) -> None:
        """Add (or re-weight) an owner competing for slots.

        Args:
            owner: any hashable job identity.
            weight: positive priority weight; larger means a bigger share.

        Raises:
            ValueError: for a non-positive weight.
        """
        if weight <= 0:
            raise ValueError("priority weight must be > 0")
        with self._lock:
            self._weights[owner] = float(weight)

    def unregister(self, owner: object) -> None:
        """Remove an owner; its slots redistribute on the next allowance call."""
        with self._lock:
            self._weights.pop(owner, None)

    def allowance(self, owner: object) -> int:
        """How many slots ``owner`` may keep in flight right now.

        Returns:
            The owner's current apportioned share (>= 1), or the full pool
            for an unregistered owner (no contention bookkeeping to honour).
        """
        with self._lock:
            if owner not in self._weights:
                return self.total_slots
            return self._apportion()[owner]

    def shares(self) -> Dict[object, int]:
        """The current slot apportionment over all registered owners."""
        with self._lock:
            return self._apportion()

    def overage(self, in_flight: Dict[object, int]) -> Dict[object, int]:
        """How many in-flight trials each owner holds beyond its fair share.

        The tune server uses this when a ``preempt=True`` job arrives: each
        owner's overage is the number of its youngest running trials to kill
        (and requeue) so the pool converges to the new apportionment within
        one scheduling tick instead of waiting for trials to finish.

        Args:
            in_flight: current in-flight trial count per owner.

        Returns:
            Per-owner counts to shed (0 for owners within their share; an
            unregistered owner is treated as entitled to the full pool).
        """
        shares = self.shares()
        return {owner: max(0, count - shares.get(owner, self.total_slots))
                for owner, count in in_flight.items()}

    def _apportion(self) -> Dict[object, int]:
        # Largest-remainder apportionment; caller holds the lock.
        total_weight = sum(self._weights.values())
        quotas = {owner: self.total_slots * weight / total_weight
                  for owner, weight in self._weights.items()}
        shares = {owner: int(quota) for owner, quota in quotas.items()}
        leftover = self.total_slots - sum(shares.values())
        remainders = sorted(
            quotas, key=lambda o: quotas[o] - shares[o], reverse=True)
        for owner in remainders[:leftover]:
            shares[owner] += 1
        for owner in shares:
            # Never starve: a job always gets at least one slot, even if that
            # briefly oversubscribes the pool (bounded by the number of jobs).
            shares[owner] = max(1, shares[owner])
        return shares


class GovernedExecutor(TrialExecutor):
    """A per-job view of a shared executor, capped at its fair-share allowance.

    ``n_workers`` is dynamic: it re-reads the governor's current apportionment
    on every access, so a scheduler that checks its width per refill tick
    (both built-ins do) shrinks or grows its in-flight set as co-tenant jobs
    come and go.  All execution, telemetry and kill traffic delegates to the
    shared inner executor; lifecycle calls are no-ops because the pool belongs
    to the server, not to any single job.
    """

    def __init__(self, inner: TrialExecutor, governor: FairShareGovernor,
                 owner: object) -> None:
        self.inner = inner
        self.governor = governor
        self.owner = owner

    @property
    def n_workers(self) -> int:  # type: ignore[override]
        """This job's current slot allowance (>= 1)."""
        return max(1, self.governor.allowance(self.owner))

    def submit(self, objective: Objective, trial: Trial,
               trial_time_limit: Optional[float] = None) -> "Future[Trial]":
        return self.inner.submit(objective, trial, trial_time_limit)

    def drain_telemetry(self) -> int:
        return self.inner.drain_telemetry()

    @property
    def telemetry_dropped(self) -> int:  # type: ignore[override]
        return self.inner.telemetry_dropped

    def kill_trial(self, trial: Trial, reason: str = KILL_CANCELLED) -> None:
        self.inner.kill_trial(trial, reason)

    def shutdown(self) -> None:
        """No-op: the shared pool's lifecycle belongs to the server."""

    def close(self) -> None:
        """No-op: the shared pool's lifecycle belongs to the server."""


def make_scheduler(spec: SchedulerLike) -> TrialScheduler:
    """Resolve ``None``/``"round"``/``"async"``/instance into a scheduler.

    Args:
        spec: None (round default), a scheduler name, or an instance.

    Returns:
        A :class:`TrialScheduler` ready to ``run``.

    Raises:
        ValueError: for an unknown scheduler name.
    """
    if spec is None:
        return RoundScheduler()
    if isinstance(spec, TrialScheduler):
        return spec
    if spec == RoundScheduler.name:
        return RoundScheduler()
    if spec == AsyncScheduler.name:
        return AsyncScheduler()
    raise ValueError(f"unknown scheduler {spec!r}; expected 'round', 'async' "
                     f"or a TrialScheduler instance")
