"""Trial schedulers: how a study keeps its worker pool busy (Fig. 8 dispatch).

Two scheduling disciplines drive the executor pool:

* :class:`RoundScheduler` — the deterministic default.  Up to ``n_workers``
  configurations are asked from the algorithm, evaluated concurrently as one
  batch, then told back in submission order.  Because the batch forms a
  barrier, a fixed seed always yields the same trial set, but one straggler
  idles every other worker until the round ends.
* :class:`AsyncScheduler` — slot refill.  All ``n_workers`` slots are kept
  busy at all times: the moment any trial finishes it is told back (under the
  study lock, so every sequential algorithm still works unchanged) and a new
  configuration is asked and submitted into the freed slot.  A straggler only
  occupies its own slot.  Completion order feeds the algorithm, so the trial
  *sequence* is not reproducible across runs — use the round scheduler when
  bit-identical replays matter.

Both schedulers share the study's retry policy (a failed configuration is
resubmitted up to ``max_retries`` times without consuming extra budget slots),
per-trial deadlines and the total time limit.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.automl.executors import (
    STARVATION_GRACE_FACTOR,
    TrialExecutor,
    expire_trial,
)
from repro.automl.trial import Trial, TrialState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.automl.study import Study

__all__ = ["TrialScheduler", "RoundScheduler", "AsyncScheduler", "make_scheduler"]

Objective = Callable[[Trial], float]
CheckpointFn = Optional[Callable[[], None]]
SchedulerLike = Union[None, str, "TrialScheduler"]


class TrialScheduler:
    """Strategy for feeding asked configurations into a :class:`TrialExecutor`."""

    name: str = "base"

    def run(self, study: "Study", objective: Objective, executor: TrialExecutor,
            remaining: int, worker_names: Sequence[str],
            checkpoint_fn: CheckpointFn = None) -> None:
        """Consume ``remaining`` budget slots of ``study`` on ``executor``."""
        raise NotImplementedError


class RoundScheduler(TrialScheduler):
    """Round-barrier batches: deterministic, but stragglers idle the batch."""

    name = "round"

    def run(self, study: "Study", objective: Objective, executor: TrialExecutor,
            remaining: int, worker_names: Sequence[str],
            checkpoint_fn: CheckpointFn = None) -> None:
        names = list(worker_names)
        config = study.config
        start_time = time.perf_counter()
        hard_deadline = (None if config.total_time_limit is None
                         else start_time + config.total_time_limit)
        while remaining > 0 and not study._total_time_exceeded(start_time):
            batch_size = min(executor.n_workers, remaining)
            with study._lock:
                asked = [study.algorithm.ask(study.space, study.trials, config.maximize)
                         for _ in range(batch_size)]
            pending = [(params, 0) for params in asked]
            while pending and not study._total_time_exceeded(start_time):
                batch: List[Trial] = []
                with study._lock:
                    for params, _ in pending:
                        batch.append(study._new_trial(
                            dict(params), names[len(study.trials) % len(names)]))
                executor.run_batch(objective, batch, config.trial_time_limit,
                                   hard_deadline=hard_deadline)
                for trial in batch:
                    study.tell(trial)
                pending = [(params, retries + 1)
                           for (params, retries), trial in zip(pending, batch)
                           if trial.state == TrialState.FAILED
                           and retries < config.max_retries]
            study._budget_used += batch_size
            remaining -= batch_size
            if checkpoint_fn is not None:
                checkpoint_fn()


@dataclass
class _Flight:
    """One in-flight trial: the asked params, its retry count and deadlines."""

    params: Dict[str, object]
    retries: int
    trial: Trial
    deadline: Optional[float]
    submitted_at: float


class AsyncScheduler(TrialScheduler):
    """Slot refill: every finished trial immediately frees a slot for the next.

    ask/tell stay serialised under the study lock, so algorithms see a
    consistent history; only the *order* in which results arrive depends on
    completion timing.
    """

    name = "async"

    def run(self, study: "Study", objective: Objective, executor: TrialExecutor,
            remaining: int, worker_names: Sequence[str],
            checkpoint_fn: CheckpointFn = None) -> None:
        names = list(worker_names)
        config = study.config
        start_time = time.perf_counter()
        in_flight: Dict["Future[Trial]", _Flight] = {}
        submitted = 0

        def launch(params: Dict[str, object], retries: int) -> None:
            with study._lock:
                trial = study._new_trial(dict(params),
                                         names[len(study.trials) % len(names)])
            future = executor.submit(objective, trial, config.trial_time_limit)
            now = time.perf_counter()
            deadline = (None if config.trial_time_limit is None
                        else now + config.trial_time_limit)
            in_flight[future] = _Flight(params, retries, trial, deadline, now)

        def refill() -> None:
            nonlocal submitted
            while (submitted < remaining and len(in_flight) < executor.n_workers
                   and not study._total_time_exceeded(start_time)):
                with study._lock:
                    params = study.algorithm.ask(study.space, study.trials,
                                                 config.maximize)
                launch(params, retries=0)
                submitted += 1

        def settle(flight: _Flight) -> None:
            """Tell a finished trial back and either retry it or consume a slot."""
            study.tell(flight.trial)
            if (flight.trial.state == TrialState.FAILED
                    and flight.retries < config.max_retries
                    and not study._total_time_exceeded(start_time)):
                launch(flight.params, flight.retries + 1)
            else:
                study._budget_used += 1
                if checkpoint_fn is not None:
                    checkpoint_fn()

        refill()
        while in_flight:
            if study._total_time_exceeded(start_time):
                # Total study budget spent: nothing may outlive it (matches
                # the round path's hard deadline) — expire everything still
                # in flight; settle() won't retry past the limit.
                for future, flight in list(in_flight.items()):
                    in_flight.pop(future)
                    expire_trial(flight.trial, future,
                                 config.trial_time_limit or 0.0)
                    settle(flight)
                break
            deadlines = [f.deadline for f in in_flight.values() if f.deadline is not None]
            if config.total_time_limit is not None:
                deadlines.append(start_time + config.total_time_limit)
            timeout = (max(0.0, min(deadlines) - time.perf_counter()) + 0.01
                       if deadlines else None)
            done, _ = wait(list(in_flight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            for future in done:
                flight = in_flight.pop(future)
                exc = future.exception()
                if exc is not None:
                    # Only non-Exception BaseExceptions (e.g. KeyboardInterrupt)
                    # escape execute_trial: surface them on the scheduling
                    # thread so the study aborts instead of spinning.
                    raise exc
                settle(flight)
            now = time.perf_counter()
            for future, flight in list(in_flight.items()):
                if flight.deadline is None or now <= flight.deadline or future.done():
                    continue
                limit = config.trial_time_limit or 0.0
                started = flight.trial.started_at
                if started is None and future.running():
                    # Process workers never ship started_at back mid-run; the
                    # first time the future reports running is the best proxy.
                    flight.trial.started_at = started = now
                if started is not None and now <= started + limit:
                    # The trial spent part of its window queued behind other
                    # work (e.g. another job sharing the pool): the clock runs
                    # from actual start, so re-arm to the true deadline.
                    flight.deadline = started + limit
                    continue
                if started is None and not future.running():
                    # Still queued: don't fail a healthy trial for pool
                    # contention; its clock starts when it does — but bound
                    # the wait so a wedged pool can't hang the study.
                    # (Process workers never report started_at back, but they
                    # also turn running only when handed to a worker.)
                    grace_deadline = (flight.submitted_at
                                      + limit * STARVATION_GRACE_FACTOR)
                    if now < grace_deadline:
                        flight.deadline = min(now + limit, grace_deadline)
                        continue
                expire_trial(flight.trial, future, limit)
                in_flight.pop(future)
                settle(flight)
            refill()


def make_scheduler(spec: SchedulerLike) -> TrialScheduler:
    """Resolve ``None``/``"round"``/``"async"``/instance into a scheduler."""
    if spec is None:
        return RoundScheduler()
    if isinstance(spec, TrialScheduler):
        return spec
    if spec == RoundScheduler.name:
        return RoundScheduler()
    if spec == AsyncScheduler.name:
        return AsyncScheduler()
    raise ValueError(f"unknown scheduler {spec!r}; expected 'round', 'async' "
                     f"or a TrialScheduler instance")
