"""Pre-built search spaces for the pre-designed architecture (Fig. 3).

The paper's example configuration searches the learning rate, the MLP layer
dimensions of the profile encoding module, the number of transformer encoders
in the behaviour encoding module, and the MLP layer dimensions of the
prediction module.
"""

from __future__ import annotations

from typing import Dict

from repro.automl.search_space import Choice, IntUniform, LogUniform, SearchSpace
from repro.models.config import ModelConfig

__all__ = ["pre_designed_model_space", "apply_params_to_config"]


def pre_designed_model_space(max_encoder_layers: int = 6) -> SearchSpace:
    """The Fig. 3 hyper-parameter space for the pre-designed heavy architecture."""
    return SearchSpace({
        "learning_rate": LogUniform(1e-4, 1e-2),
        "profile_hidden": Choice((
            (16, 8),
            (32, 16),
            (64, 16),
            (64, 32),
        )),
        "num_encoder_layers": IntUniform(1, max_encoder_layers),
        "head_hidden": Choice((
            (8,),
            (16,),
            (32,),
            (32, 16),
        )),
    })


def apply_params_to_config(config: ModelConfig, params: Dict[str, object]) -> ModelConfig:
    """Apply a sampled Fig. 3 configuration to a base :class:`ModelConfig`."""
    overrides: Dict[str, object] = {}
    if "learning_rate" in params:
        overrides["learning_rate"] = float(params["learning_rate"])
    if "profile_hidden" in params:
        overrides["profile_hidden"] = tuple(params["profile_hidden"])
    if "num_encoder_layers" in params:
        overrides["num_encoder_layers"] = int(params["num_encoder_layers"])
    if "head_hidden" in params:
        overrides["head_hidden"] = tuple(params["head_hidden"])
    return config.with_overrides(**overrides)
