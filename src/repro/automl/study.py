"""The study object: AntTune's trial-generation and bookkeeping loop (Fig. 8).

A :class:`Study` pairs a search space with a search algorithm, runs an
objective function over a sequence of trials and keeps the full trial history.
The systematic features described in the paper are modelled explicitly:

* per-trial time limit and an overall job time limit,
* early stopping of futureless trials (via a :class:`~repro.automl.pruners.Pruner`)
  — live trial telemetry streams intermediate reports back from every
  backend, including process-pool workers, so the scheduler prunes
  stragglers mid-run instead of waiting for their deadline,
* cooperative cancellation (:meth:`Study.request_stop`, driven by the tune
  server's ``cancel(job_id)``): in-flight trials stop within one scheduling
  tick and are recorded ``CANCELLED``,
* a fault-tolerant mechanism (failed trials are recorded and retried up to a
  configurable number of times without aborting the study),
* parallel trial execution on a worker pool (``optimize(..., n_workers=4)``),
  mirroring the paper's dispatch of trials to distributed executors,
* JSON checkpointing so an interrupted study can resume where it stopped —
  version 2 checkpoints capture the algorithm's and study's RNG state, so a
  resumed study replays *identically* to an uninterrupted one.

Parallel runs default to round-based scheduling: up to ``n_workers``
configurations are asked from the algorithm, evaluated concurrently, then
told back in submission order under a lock.  Because ask/tell stay
serialised, every sequential algorithm works unchanged and a fixed seed
gives a deterministic trial set.  ``scheduler="async"`` switches to the
slot-refill :class:`~repro.automl.scheduler.AsyncScheduler`, which keeps all
workers busy past stragglers at the cost of run-to-run reproducibility of
the trial sequence.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.automl import metrics as _metrics
from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.algorithms.racos import RACOS
from repro.automl.events import TrialEvent, TrialFinished, TrialStarted
from repro.automl.executors import (
    TrialExecutor,
    execute_trial,
    make_executor,
)
from repro.automl.pruners import NoPruner, Pruner
from repro.automl.scheduler import SchedulerLike, make_scheduler
from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial, TrialState
from repro.exceptions import TrialError
from repro.utils.rng import new_rng
from repro.utils.serialization import load_json, save_json

__all__ = ["StudyConfig", "Study", "CHECKPOINT_VERSION"]

Objective = Callable[[Trial], float]

# v1: config, budget and trial history only.
# v2: + algorithm internal state and RNG streams for bit-identical resume.
CHECKPOINT_VERSION = 2

# ask/tell run under the study lock on the scheduling path: their latency is
# exactly the serialised portion every parallel run pays per trial.
_ASK_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_ask_seconds",
    "Search-algorithm ask latency (configuration proposal), by algorithm.",
    labels=("algorithm",))
_TELL_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_tell_seconds",
    "Search-algorithm tell latency (result ingestion), by algorithm.",
    labels=("algorithm",))
# Synthesised per-trial span (the objective's runtime, wherever it ran).
_TRIAL_RUN_SPAN = _metrics.REGISTRY.histogram(
    "anttune_span_seconds", "Duration of named trace spans.",
    labels=("span",)).labels(span="trial.run")


@dataclass(frozen=True)
class StudyConfig:
    """Study-level limits and behaviour.

    Attributes:
        maximize: whether larger objective values are better (AUC: yes).
        n_trials: number of trials to run.
        trial_time_limit: wall-clock seconds allowed per trial (None = unlimited).
        total_time_limit: wall-clock seconds allowed for the whole study.
        max_retries: how many times a failed configuration is re-attempted.
        raise_on_all_failed: raise :class:`TrialError` if no trial completes.
    """

    maximize: bool = True
    n_trials: int = 10
    trial_time_limit: Optional[float] = None
    total_time_limit: Optional[float] = None
    max_retries: int = 1
    raise_on_all_failed: bool = True


class Study:
    """Hyper-parameter study: sequential by default, pooled with ``n_workers>1``."""

    def __init__(self, space: SearchSpace, algorithm: Optional[SearchAlgorithm] = None,
                 config: Optional[StudyConfig] = None, pruner: Optional[Pruner] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.space = space
        self._rng = new_rng(rng if rng is not None else 0)
        self.algorithm = algorithm if algorithm is not None else RACOS(rng=self._rng)
        self.config = config or StudyConfig()
        self.pruner = pruner or NoPruner()
        self.trials: List[Trial] = []
        # Serialises ask/tell and trial-list mutation between worker batches.
        self._lock = threading.RLock()
        # Trial-budget slots consumed: restored from a checkpoint so a resumed
        # study only runs the remainder; retries do not consume extra slots.
        self._budget_used = 0
        self._resume_offset = 0
        # Monotonic id source: len(self.trials) would collide after a resume
        # drops in-flight trials out of the middle of the history.
        self._next_trial_id = 0
        # Cooperative cancellation: set by request_stop() (e.g. the tune
        # server's cancel(job_id)); schedulers observe it within one tick.
        self._stop = threading.Event()
        # Event sink: the tune server wires this to its EventBus (stamping the
        # owning job id); None means lifecycle events are dropped.  The study,
        # monitor and schedulers publish through publish_event().
        self._event_sink: Optional[Callable[[TrialEvent], None]] = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def best_trial(self) -> Trial:
        finished = completed_trials(self.trials)
        if not finished:
            raise TrialError("no completed trials in the study")
        key = (lambda t: t.value) if self.config.maximize else (lambda t: -t.value)
        return max(finished, key=key)

    @property
    def best_params(self) -> Dict[str, object]:
        return dict(self.best_trial.params)

    @property
    def best_value(self) -> float:
        return float(self.best_trial.value)

    def history_records(self) -> List[Dict[str, object]]:
        """JSON-serialisable snapshots of every trial, in creation order."""
        return [t.as_record() for t in self.trials]

    # ------------------------------------------------------------------ #
    # Cancellation
    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Ask a running :meth:`optimize` to stop at its next scheduling tick.

        In-flight trials are killed and recorded ``CANCELLED``; consumed
        budget slots are not charged, so a later :meth:`optimize` (after
        :meth:`reset_stop`) re-runs them.  Sticky until :meth:`reset_stop`.
        """
        self._stop.set()

    def reset_stop(self) -> None:
        """Clear a previous :meth:`request_stop` so the study may run again."""
        self._stop.clear()

    @property
    def stop_requested(self) -> bool:
        """Whether cancellation has been requested (sticky)."""
        return self._stop.is_set()

    # ------------------------------------------------------------------ #
    # Optimisation loop
    # ------------------------------------------------------------------ #
    def optimize(self, objective: Objective, worker_name: str = "worker-0", *,
                 n_workers: int = 1, executor: Optional[TrialExecutor] = None,
                 backend: str = "auto", base_seed: int = 0,
                 scheduler: SchedulerLike = None,
                 worker_names: Optional[Sequence[str]] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_fn: Optional[Callable[[], None]] = None) -> Optional[Trial]:
        """Run the configured number of trials and return the best one.

        With ``n_workers=1`` (and no explicit ``executor``, ``backend`` or
        ``scheduler``) trials run inline on the calling thread, exactly as the
        historical sequential loop did.  Otherwise trials are evaluated
        concurrently on a worker pool (``backend``: ``"thread"`` or
        ``"process"``, with ``base_seed`` feeding the process workers' RNG
        streams; see :func:`repro.automl.executors.make_executor`),
        driven by the requested scheduler: ``"round"`` (deterministic batches,
        the default) or ``"async"`` (slot refill — stragglers don't idle the
        other workers).  ask/tell remain serialised in both modes.

        ``checkpoint_path`` saves the study state as JSON after every trial
        (sequential) or scheduling step (parallel); ``checkpoint_fn`` is an
        arbitrary callback invoked at the same points (e.g. persisting into a
        :class:`~repro.automl.storage.StudyStorage`).  See
        :meth:`restore_checkpoint`.  Returns ``None`` when no trial completed
        and ``raise_on_all_failed`` is False.
        """
        remaining = max(0, self.config.n_trials - self._resume_offset)
        self._budget_used, self._resume_offset = self._resume_offset, 0
        checkpoint_cb = self._checkpoint_callback(checkpoint_path, checkpoint_fn)
        sequential = (executor is None and n_workers == 1
                      and backend in ("auto", "sync") and scheduler is None)
        if sequential:
            self._run_sequential(objective, worker_name, remaining, checkpoint_cb)
        else:
            self._run_parallel(objective, remaining, n_workers=n_workers,
                               executor=executor, backend=backend,
                               base_seed=base_seed, scheduler=scheduler,
                               worker_names=worker_names,
                               checkpoint_fn=checkpoint_cb)
        if not completed_trials(self.trials):
            if self.config.raise_on_all_failed:
                raise TrialError("every trial in the study failed")
            return None
        return self.best_trial

    def _checkpoint_callback(self, checkpoint_path: Optional[str],
                             checkpoint_fn: Optional[Callable[[], None]]
                             ) -> Optional[Callable[[], None]]:
        if checkpoint_path is None and checkpoint_fn is None:
            return None

        def _checkpoint() -> None:
            if checkpoint_path is not None:
                self.save_checkpoint(checkpoint_path)
            if checkpoint_fn is not None:
                checkpoint_fn()
        return _checkpoint

    def publish_event(self, event: TrialEvent) -> None:
        """Publish one lifecycle event to the attached sink (no-op without one).

        The tune server attaches a sink that stamps the owning job id and
        forwards onto its :class:`~repro.automl.events.EventBus`; a bare study
        has no sink and events are dropped.
        """
        sink = self._event_sink
        if sink is not None:
            sink(event)

    def ask_params(self) -> Dict[str, object]:
        """Ask the algorithm for the next configuration (thread-safe, timed).

        The single ask entry point for every scheduling mode: the proposal is
        made under the study lock (sequential algorithms work unchanged) and
        its latency lands in ``anttune_ask_seconds{algorithm=...}``.
        """
        with self._lock:
            start = time.perf_counter()
            params = self.algorithm.ask(self.space, self.trials,
                                        self.config.maximize)
            _ASK_SECONDS.labels(algorithm=self.algorithm.name).observe(
                time.perf_counter() - start)
            return params

    def tell(self, trial: Trial) -> None:
        """Feed a finished trial back into the algorithm (thread-safe).

        Also publishes the trial's :class:`~repro.automl.events.TrialFinished`
        event (with the full record) — every terminal trial reaches the event
        stream through this single point, on every scheduler.  Tell latency
        lands in ``anttune_tell_seconds{algorithm=...}``, and the trial's
        runtime is recorded as a ``trial.run`` span
        (``anttune_span_seconds{span="trial.run"}``).
        """
        with self._lock:
            start = time.perf_counter()
            self.algorithm.tell(trial)
            _TELL_SECONDS.labels(algorithm=self.algorithm.name).observe(
                time.perf_counter() - start)
        if trial.duration_seconds:
            _TRIAL_RUN_SPAN.observe(trial.duration_seconds)
        with trial._state_lock:
            record = trial.as_record()
        self.publish_event(TrialFinished(
            trial_id=trial.trial_id, state=trial.state.value,
            value=trial.value, record=record))

    def _run_sequential(self, objective: Objective, worker_name: str,
                        remaining: int,
                        checkpoint_fn: Optional[Callable[[], None]]) -> None:
        start_time = time.perf_counter()
        for _ in range(remaining):
            if self.stop_requested or self._total_time_exceeded(start_time):
                break
            params = self.ask_params()
            trial = self._run_single(objective, params, worker_name)
            retries = 0
            while trial.state == TrialState.FAILED and retries < self.config.max_retries:
                retries += 1
                trial = self._run_single(objective, dict(params), worker_name)
            self._budget_used += 1
            if checkpoint_fn is not None:
                checkpoint_fn()

    def _run_parallel(self, objective: Objective, remaining: int, *, n_workers: int,
                      executor: Optional[TrialExecutor], backend: str,
                      base_seed: int, scheduler: SchedulerLike,
                      worker_names: Optional[Sequence[str]],
                      checkpoint_fn: Optional[Callable[[], None]]) -> None:
        owns_executor = executor is None
        executor = executor if executor is not None else make_executor(
            n_workers, backend=backend, base_seed=base_seed)
        names = list(worker_names) if worker_names else [
            f"worker-{i}" for i in range(executor.n_workers)]
        try:
            make_scheduler(scheduler).run(self, objective, executor, remaining,
                                          names, checkpoint_fn)
        finally:
            if owns_executor:
                executor.shutdown()

    def _new_trial(self, params: Dict[str, object], worker: str) -> Trial:
        # No event publish here: callers hold the study lock, and event
        # delivery can block (turnstile, subscriber callbacks, storage
        # commits) — a callback that re-enters the server (e.g. poll())
        # would deadlock on the study lock.  Callers publish TrialStarted
        # via _publish_started() after releasing the lock.
        trial = Trial(trial_id=self._next_trial_id, params=params, worker=worker)
        self._next_trial_id += 1
        trial._prune_check = lambda t: self.pruner.should_prune(t, self.trials, self.config.maximize)
        trial.state = TrialState.RUNNING
        self.trials.append(trial)
        return trial

    def _publish_started(self, trial: Trial) -> None:
        """Publish a trial's TrialStarted event (call *outside* the lock)."""
        self.publish_event(TrialStarted(trial_id=trial.trial_id,
                                        params=dict(trial.params),
                                        worker=trial.worker))

    def _run_single(self, objective: Objective, params: Dict[str, object], worker: str) -> Trial:
        trial = self._new_trial(params, worker)
        self._publish_started(trial)
        execute_trial(objective, trial, self.config.trial_time_limit)
        self.tell(trial)
        return trial

    def _total_time_exceeded(self, start_time: float) -> bool:
        limit = self.config.total_time_limit
        return limit is not None and (time.perf_counter() - start_time) > limit

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def state_payload(self) -> Dict[str, object]:
        """The full JSON-serialisable study state (checkpoint v2 format).

        Besides the config, budget and trial history (v1), the payload carries
        the algorithm's internal state and the study RNG stream so a resumed
        study asks exactly the configurations an uninterrupted run would have.
        """
        with self._lock:
            return {
                "version": CHECKPOINT_VERSION,
                "algorithm": self.algorithm.name,
                "algorithm_state": self.algorithm.get_state(),
                "rng_state": self._rng.bit_generator.state,
                "config": asdict(self.config),
                "budget_used": self._budget_used,
                "trials": [t.as_record() for t in self.trials],
            }

    def load_state_payload(self, payload: Dict[str, object]) -> "Study":
        """Restore state produced by :meth:`state_payload` into this study.

        The study must be freshly constructed with the same space, algorithm
        and config as the original run.  The trial history is rebuilt, finished
        trials are re-told to the algorithm, and the next :meth:`optimize`
        call runs only the remaining trial budget.  Version 1 payloads (no
        algorithm/RNG state) are accepted and migrated: history and budget are
        restored, and the algorithm continues from its fresh-seeded state.

        Trials that were still in flight when the payload was captured (the
        async scheduler checkpoints while other slots keep running) carry no
        result and consumed no budget: they are dropped rather than kept as
        zombie RUNNING entries, and their slots re-run on resume.
        """
        version = payload.get("version")
        if version not in (1, CHECKPOINT_VERSION):
            raise TrialError(f"unsupported study checkpoint version: {version!r}")
        saved_algorithm = payload.get("algorithm")
        if saved_algorithm != self.algorithm.name:
            raise TrialError(
                f"checkpoint was written by algorithm {saved_algorithm!r} but this "
                f"study uses {self.algorithm.name!r}")
        with self._lock:
            self.config = StudyConfig(**payload["config"])
            self.trials = [trial
                           for trial in (self._trial_from_record(r)
                                         for r in payload["trials"])
                           if trial.is_finished]
            self._next_trial_id = 1 + max(
                (t.trial_id for t in self.trials), default=-1)
            self._resume_offset = int(payload["budget_used"])
            for trial in self.trials:
                if trial.is_finished:
                    self.algorithm.tell(trial)
            # v2: saved state wins over whatever re-telling mutated — it was
            # captured *after* those tells in the original run.
            if version >= 2:
                rng_state = payload.get("rng_state")
                if rng_state is not None:
                    self._rng.bit_generator.state = rng_state
                algorithm_state = payload.get("algorithm_state")
                if algorithm_state is not None:
                    self.algorithm.set_state(algorithm_state)
        return self

    def save_checkpoint(self, path: str) -> None:
        """Write the study state (config, budget, history, RNG state) as JSON."""
        save_json(path, self.state_payload())

    def restore_checkpoint(self, path: str) -> "Study":
        """Load a checkpoint written by :meth:`save_checkpoint` into this study."""
        return self.load_state_payload(load_json(path))

    def _trial_from_record(self, record: Dict[str, object]) -> Trial:
        trial = Trial(trial_id=int(record["trial_id"]), params=dict(record["params"]),
                      state=TrialState(record["state"]),
                      value=None if record["value"] is None else float(record["value"]),
                      duration_seconds=float(record.get("duration_seconds", 0.0)),
                      error=record.get("error"), worker=record.get("worker"))
        trial.intermediate_values = [float(v) for v in record.get("intermediate_values", [])]
        trial._prune_check = lambda t: self.pruner.should_prune(t, self.trials, self.config.maximize)
        return trial
