"""The study object: AntTune's trial-generation and bookkeeping loop (Fig. 8).

A :class:`Study` pairs a search space with a search algorithm, runs an
objective function over a sequence of trials and keeps the full trial history.
The systematic features described in the paper are modelled explicitly:

* per-trial time limit and an overall job time limit,
* early stopping of futureless trials (via a :class:`~repro.automl.pruners.Pruner`),
* a fault-tolerant mechanism (failed trials are recorded and retried up to a
  configurable number of times without aborting the study).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.algorithms.racos import RACOS
from repro.automl.pruners import NoPruner, Pruner
from repro.automl.search_space import SearchSpace
from repro.automl.trial import PrunedTrial, Trial, TrialState
from repro.exceptions import TrialError
from repro.utils.rng import new_rng

__all__ = ["StudyConfig", "Study"]

Objective = Callable[[Trial], float]


@dataclass(frozen=True)
class StudyConfig:
    """Study-level limits and behaviour.

    Attributes:
        maximize: whether larger objective values are better (AUC: yes).
        n_trials: number of trials to run.
        trial_time_limit: wall-clock seconds allowed per trial (None = unlimited).
        total_time_limit: wall-clock seconds allowed for the whole study.
        max_retries: how many times a failed configuration is re-attempted.
        raise_on_all_failed: raise :class:`TrialError` if no trial completes.
    """

    maximize: bool = True
    n_trials: int = 10
    trial_time_limit: Optional[float] = None
    total_time_limit: Optional[float] = None
    max_retries: int = 1
    raise_on_all_failed: bool = True


class Study:
    """Sequential (optionally simulated-distributed) hyper-parameter study."""

    def __init__(self, space: SearchSpace, algorithm: Optional[SearchAlgorithm] = None,
                 config: Optional[StudyConfig] = None, pruner: Optional[Pruner] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.space = space
        self._rng = new_rng(rng if rng is not None else 0)
        self.algorithm = algorithm if algorithm is not None else RACOS(rng=self._rng)
        self.config = config or StudyConfig()
        self.pruner = pruner or NoPruner()
        self.trials: List[Trial] = []

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def best_trial(self) -> Trial:
        finished = completed_trials(self.trials)
        if not finished:
            raise TrialError("no completed trials in the study")
        key = (lambda t: t.value) if self.config.maximize else (lambda t: -t.value)
        return max(finished, key=key)

    @property
    def best_params(self) -> Dict[str, object]:
        return dict(self.best_trial.params)

    @property
    def best_value(self) -> float:
        return float(self.best_trial.value)

    def history_records(self) -> List[Dict[str, object]]:
        return [t.as_record() for t in self.trials]

    # ------------------------------------------------------------------ #
    # Optimisation loop
    # ------------------------------------------------------------------ #
    def optimize(self, objective: Objective, worker_name: str = "worker-0") -> Optional[Trial]:
        """Run the configured number of trials and return the best one.

        Returns ``None`` when no trial completed and ``raise_on_all_failed`` is
        False (e.g. every trial failed or was pruned).
        """
        start_time = time.perf_counter()
        for _ in range(self.config.n_trials):
            if self._total_time_exceeded(start_time):
                break
            params = self.algorithm.ask(self.space, self.trials, self.config.maximize)
            trial = self._run_single(objective, params, worker_name)
            retries = 0
            while trial.state == TrialState.FAILED and retries < self.config.max_retries:
                retries += 1
                trial = self._run_single(objective, dict(params), worker_name)
        if not completed_trials(self.trials):
            if self.config.raise_on_all_failed:
                raise TrialError("every trial in the study failed")
            return None
        return self.best_trial

    def _run_single(self, objective: Objective, params: Dict[str, object], worker: str) -> Trial:
        trial = Trial(trial_id=len(self.trials), params=params, worker=worker)
        trial._prune_check = lambda t: self.pruner.should_prune(t, self.trials, self.config.maximize)
        trial.state = TrialState.RUNNING
        self.trials.append(trial)
        start = time.perf_counter()
        try:
            value = objective(trial)
            trial.value = float(value)
            trial.state = TrialState.COMPLETED
        except PrunedTrial:
            trial.state = TrialState.PRUNED
        except Exception as exc:  # noqa: BLE001 - fault tolerance requires catching everything
            trial.state = TrialState.FAILED
            trial.error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=3)}"
        trial.duration_seconds = time.perf_counter() - start
        if (trial.state == TrialState.COMPLETED
                and self.config.trial_time_limit is not None
                and trial.duration_seconds > self.config.trial_time_limit):
            trial.state = TrialState.TIMED_OUT
        self.algorithm.tell(trial)
        return trial

    def _total_time_exceeded(self, start_time: float) -> bool:
        limit = self.config.total_time_limit
        return limit is not None and (time.perf_counter() - start_time) > limit
