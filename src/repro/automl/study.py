"""The study object: AntTune's trial-generation and bookkeeping loop (Fig. 8).

A :class:`Study` pairs a search space with a search algorithm, runs an
objective function over a sequence of trials and keeps the full trial history.
The systematic features described in the paper are modelled explicitly:

* per-trial time limit and an overall job time limit,
* early stopping of futureless trials (via a :class:`~repro.automl.pruners.Pruner`),
* a fault-tolerant mechanism (failed trials are recorded and retried up to a
  configurable number of times without aborting the study),
* parallel trial execution on a worker pool (``optimize(..., n_workers=4)``),
  mirroring the paper's dispatch of trials to distributed executors,
* JSON checkpointing so an interrupted study can resume where it stopped.

Parallel runs are round-based: up to ``n_workers`` configurations are asked
from the algorithm, evaluated concurrently, then told back in submission
order under a lock.  Because ask/tell stay serialised, every sequential
algorithm works unchanged and a fixed seed gives a deterministic trial set.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm, completed_trials
from repro.automl.algorithms.racos import RACOS
from repro.automl.executors import TrialExecutor, execute_trial, make_executor
from repro.automl.pruners import NoPruner, Pruner
from repro.automl.search_space import SearchSpace
from repro.automl.trial import Trial, TrialState
from repro.exceptions import TrialError
from repro.utils.rng import new_rng
from repro.utils.serialization import load_json, save_json

__all__ = ["StudyConfig", "Study", "CHECKPOINT_VERSION"]

Objective = Callable[[Trial], float]

CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class StudyConfig:
    """Study-level limits and behaviour.

    Attributes:
        maximize: whether larger objective values are better (AUC: yes).
        n_trials: number of trials to run.
        trial_time_limit: wall-clock seconds allowed per trial (None = unlimited).
        total_time_limit: wall-clock seconds allowed for the whole study.
        max_retries: how many times a failed configuration is re-attempted.
        raise_on_all_failed: raise :class:`TrialError` if no trial completes.
    """

    maximize: bool = True
    n_trials: int = 10
    trial_time_limit: Optional[float] = None
    total_time_limit: Optional[float] = None
    max_retries: int = 1
    raise_on_all_failed: bool = True


class Study:
    """Hyper-parameter study: sequential by default, pooled with ``n_workers>1``."""

    def __init__(self, space: SearchSpace, algorithm: Optional[SearchAlgorithm] = None,
                 config: Optional[StudyConfig] = None, pruner: Optional[Pruner] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.space = space
        self._rng = new_rng(rng if rng is not None else 0)
        self.algorithm = algorithm if algorithm is not None else RACOS(rng=self._rng)
        self.config = config or StudyConfig()
        self.pruner = pruner or NoPruner()
        self.trials: List[Trial] = []
        # Serialises ask/tell and trial-list mutation between worker batches.
        self._lock = threading.RLock()
        # Trial-budget slots consumed: restored from a checkpoint so a resumed
        # study only runs the remainder; retries do not consume extra slots.
        self._budget_used = 0
        self._resume_offset = 0

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def best_trial(self) -> Trial:
        finished = completed_trials(self.trials)
        if not finished:
            raise TrialError("no completed trials in the study")
        key = (lambda t: t.value) if self.config.maximize else (lambda t: -t.value)
        return max(finished, key=key)

    @property
    def best_params(self) -> Dict[str, object]:
        return dict(self.best_trial.params)

    @property
    def best_value(self) -> float:
        return float(self.best_trial.value)

    def history_records(self) -> List[Dict[str, object]]:
        return [t.as_record() for t in self.trials]

    # ------------------------------------------------------------------ #
    # Optimisation loop
    # ------------------------------------------------------------------ #
    def optimize(self, objective: Objective, worker_name: str = "worker-0", *,
                 n_workers: int = 1, executor: Optional[TrialExecutor] = None,
                 worker_names: Optional[Sequence[str]] = None,
                 checkpoint_path: Optional[str] = None) -> Optional[Trial]:
        """Run the configured number of trials and return the best one.

        With ``n_workers=1`` (and no explicit ``executor``) trials run inline
        on the calling thread, exactly as the historical sequential loop did.
        Otherwise batches of up to ``n_workers`` trials are evaluated
        concurrently on a thread pool; ask/tell remain serialised so results
        are deterministic for a fixed seed and deterministic objective.

        ``checkpoint_path`` saves the study state as JSON after every trial
        (sequential) or batch (parallel); see :meth:`restore_checkpoint`.
        Returns ``None`` when no trial completed and ``raise_on_all_failed``
        is False (e.g. every trial failed or was pruned).
        """
        remaining = max(0, self.config.n_trials - self._resume_offset)
        self._budget_used, self._resume_offset = self._resume_offset, 0
        if executor is None and n_workers == 1:
            self._run_sequential(objective, worker_name, remaining, checkpoint_path)
        else:
            self._run_parallel(objective, remaining, n_workers=n_workers,
                               executor=executor, worker_names=worker_names,
                               checkpoint_path=checkpoint_path)
        if not completed_trials(self.trials):
            if self.config.raise_on_all_failed:
                raise TrialError("every trial in the study failed")
            return None
        return self.best_trial

    def tell(self, trial: Trial) -> None:
        """Feed a finished trial back into the algorithm (thread-safe)."""
        with self._lock:
            self.algorithm.tell(trial)

    def _run_sequential(self, objective: Objective, worker_name: str,
                        remaining: int, checkpoint_path: Optional[str]) -> None:
        start_time = time.perf_counter()
        for _ in range(remaining):
            if self._total_time_exceeded(start_time):
                break
            params = self.algorithm.ask(self.space, self.trials, self.config.maximize)
            trial = self._run_single(objective, params, worker_name)
            retries = 0
            while trial.state == TrialState.FAILED and retries < self.config.max_retries:
                retries += 1
                trial = self._run_single(objective, dict(params), worker_name)
            self._budget_used += 1
            if checkpoint_path is not None:
                self.save_checkpoint(checkpoint_path)

    def _run_parallel(self, objective: Objective, remaining: int, *, n_workers: int,
                      executor: Optional[TrialExecutor],
                      worker_names: Optional[Sequence[str]],
                      checkpoint_path: Optional[str]) -> None:
        owns_executor = executor is None
        executor = executor if executor is not None else make_executor(n_workers)
        names = list(worker_names) if worker_names else [
            f"worker-{i}" for i in range(executor.n_workers)]
        start_time = time.perf_counter()
        try:
            while remaining > 0 and not self._total_time_exceeded(start_time):
                batch_size = min(executor.n_workers, remaining)
                with self._lock:
                    asked = [self.algorithm.ask(self.space, self.trials, self.config.maximize)
                             for _ in range(batch_size)]
                pending = [(params, 0) for params in asked]
                while pending:
                    batch: List[Trial] = []
                    with self._lock:
                        for params, _ in pending:
                            batch.append(self._new_trial(
                                dict(params), names[len(self.trials) % len(names)]))
                    executor.run_batch(objective, batch, self.config.trial_time_limit)
                    for trial in batch:
                        self.tell(trial)
                    pending = [(params, retries + 1)
                               for (params, retries), trial in zip(pending, batch)
                               if trial.state == TrialState.FAILED
                               and retries < self.config.max_retries]
                self._budget_used += batch_size
                remaining -= batch_size
                if checkpoint_path is not None:
                    self.save_checkpoint(checkpoint_path)
        finally:
            if owns_executor:
                executor.shutdown()

    def _new_trial(self, params: Dict[str, object], worker: str) -> Trial:
        trial = Trial(trial_id=len(self.trials), params=params, worker=worker)
        trial._prune_check = lambda t: self.pruner.should_prune(t, self.trials, self.config.maximize)
        trial.state = TrialState.RUNNING
        self.trials.append(trial)
        return trial

    def _run_single(self, objective: Objective, params: Dict[str, object], worker: str) -> Trial:
        trial = self._new_trial(params, worker)
        execute_trial(objective, trial, self.config.trial_time_limit)
        self.tell(trial)
        return trial

    def _total_time_exceeded(self, start_time: float) -> bool:
        limit = self.config.total_time_limit
        return limit is not None and (time.perf_counter() - start_time) > limit

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path: str) -> None:
        """Write the study state (config, budget, trial history) as JSON."""
        with self._lock:
            payload = {
                "version": CHECKPOINT_VERSION,
                "algorithm": self.algorithm.name,
                "config": asdict(self.config),
                "budget_used": self._budget_used,
                "trials": [t.as_record() for t in self.trials],
            }
        save_json(path, payload)

    def restore_checkpoint(self, path: str) -> "Study":
        """Load a checkpoint written by :meth:`save_checkpoint` into this study.

        The study must be freshly constructed with the same space, algorithm
        and config as the original run.  The trial history is rebuilt, finished
        trials are re-told to the algorithm, and the next :meth:`optimize`
        call runs only the remaining trial budget.
        """
        payload = load_json(path)
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise TrialError(f"unsupported study checkpoint version: {version!r}")
        saved_algorithm = payload.get("algorithm")
        if saved_algorithm != self.algorithm.name:
            raise TrialError(
                f"checkpoint was written by algorithm {saved_algorithm!r} but this "
                f"study uses {self.algorithm.name!r}")
        with self._lock:
            self.config = StudyConfig(**payload["config"])
            self.trials = [self._trial_from_record(r) for r in payload["trials"]]
            self._resume_offset = int(payload["budget_used"])
            for trial in self.trials:
                if trial.is_finished:
                    self.algorithm.tell(trial)
        return self

    def _trial_from_record(self, record: Dict[str, object]) -> Trial:
        trial = Trial(trial_id=int(record["trial_id"]), params=dict(record["params"]),
                      state=TrialState(record["state"]),
                      value=None if record["value"] is None else float(record["value"]),
                      duration_seconds=float(record.get("duration_seconds", 0.0)),
                      error=record.get("error"), worker=record.get("worker"))
        trial.intermediate_values = [float(v) for v in record.get("intermediate_values", [])]
        trial._prune_check = lambda t: self.pruner.should_prune(t, self.trials, self.config.maximize)
        return trial
