"""Trial bookkeeping for the AntTune-style hyper-parameter optimisation module."""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["TrialState", "Trial", "PrunedTrial", "TrialCancelled"]


class PrunedTrial(Exception):
    """Raised inside an objective to signal that the trial was early-stopped."""


class TrialCancelled(Exception):
    """Raised inside an objective once its trial's deadline has passed.

    Cooperative objectives hit this automatically through
    :meth:`Trial.report`; the executor maps it to ``TIMED_OUT``.
    """


class TrialState(enum.Enum):
    """Lifecycle of one hyper-parameter evaluation."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    PRUNED = "pruned"
    TIMED_OUT = "timed_out"


@dataclass
class Trial:
    """One evaluated hyper-parameter configuration.

    Attributes:
        trial_id: monotonically increasing identifier within a study.
        params: the configuration handed to the objective.
        state: current lifecycle state.
        value: objective value (None until completion).
        intermediate_values: values reported during the run (used for pruning).
        duration_seconds: wall-clock duration of the objective call.
        error: textual description of the failure, if any.
        worker: identifier of the (simulated) worker that executed the trial.
    """

    trial_id: int
    params: Dict[str, object]
    state: TrialState = TrialState.PENDING
    value: Optional[float] = None
    intermediate_values: List[float] = field(default_factory=list)
    duration_seconds: float = 0.0
    error: Optional[str] = None
    worker: Optional[str] = None
    # perf_counter timestamp of when the objective actually began executing
    # (None while queued) — deadline enforcement measures from here so queue
    # wait behind other work doesn't count against the trial's time limit.
    started_at: Optional[float] = field(default=None, repr=False, compare=False)

    # The study wires this to its pruner; objectives call trial.report(...)
    # and trial.should_prune() to cooperate with early stopping.
    _prune_check: Optional[object] = None
    # Set by the executor when the trial's deadline passes; guarded writes to
    # the lifecycle fields go through _state_lock so a straggler worker thread
    # and the dispatching thread never race on the terminal state.
    _cancel_event: threading.Event = field(default_factory=threading.Event,
                                           repr=False, compare=False)
    _state_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False, compare=False)

    def cancel(self) -> None:
        """Mark the trial as past its deadline (cooperative cancellation)."""
        self._cancel_event.set()

    @property
    def is_cancelled(self) -> bool:
        return self._cancel_event.is_set()

    def report(self, value: float, step: Optional[int] = None) -> None:
        """Report an intermediate objective value (e.g. per-epoch validation AUC)."""
        if self._cancel_event.is_set():
            raise TrialCancelled(f"trial {self.trial_id} exceeded its time limit")
        self.intermediate_values.append(float(value))

    def should_prune(self) -> bool:
        """Whether the attached pruner recommends stopping this trial early."""
        if self._prune_check is None:
            return False
        return bool(self._prune_check(self))

    @property
    def is_finished(self) -> bool:
        return self.state in (TrialState.COMPLETED, TrialState.FAILED,
                              TrialState.PRUNED, TrialState.TIMED_OUT)

    def as_record(self) -> Dict[str, object]:
        return {
            "trial_id": self.trial_id,
            "params": dict(self.params),
            "state": self.state.value,
            "value": self.value,
            "duration_seconds": round(self.duration_seconds, 6),
            "worker": self.worker,
            "error": self.error,
            "intermediate_values": [float(v) for v in self.intermediate_values],
        }
