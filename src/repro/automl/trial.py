"""Trial bookkeeping for the AntTune-style hyper-parameter optimisation module.

A :class:`Trial` is the unit of work the whole tune stack moves around: the
study creates it, an executor runs the objective on it, the scheduler watches
it, and storage persists its record.  Two cooperative control surfaces live
here:

* **Reporting** — objectives call :meth:`Trial.report` with intermediate
  values (e.g. per-epoch validation AUC).  Each report is appended locally
  and, when an executor wired a report hook, forwarded over the live
  telemetry channel so the scheduler can feed pruners mid-trial even for
  trials running in another process.
* **Killing** — the scheduler (or a deadline) marks a trial killed with a
  *reason* (:data:`KILL_DEADLINE`, :data:`KILL_PRUNED`,
  :data:`KILL_CANCELLED`).  The next :meth:`Trial.report` raises inside the
  objective, which the executor maps to the matching terminal state
  (``TIMED_OUT``, ``PRUNED`` or ``CANCELLED``), so a remote straggler stops
  at its next report instead of running to its deadline.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "TrialState",
    "Trial",
    "PrunedTrial",
    "TrialCancelled",
    "KILL_DEADLINE",
    "KILL_PRUNED",
    "KILL_CANCELLED",
    "KILL_PREEMPTED",
]

# Why a trial was killed mid-flight; each maps to a distinct terminal state.
KILL_DEADLINE = "deadline"    # per-trial time limit passed     -> TIMED_OUT
KILL_PRUNED = "pruned"        # pruner judged it futureless     -> PRUNED
KILL_CANCELLED = "cancelled"  # its job was cancelled           -> CANCELLED
KILL_PREEMPTED = "preempted"  # slot yielded to a preempting    -> CANCELLED
#                               high-priority job; the scheduler requeues the
#                               configuration without charging the slot.


class PrunedTrial(Exception):
    """Raised inside an objective to signal that the trial was early-stopped.

    Objectives may raise it themselves after :meth:`Trial.should_prune`, and
    :meth:`Trial.report` raises it automatically once the scheduler killed the
    trial with :data:`KILL_PRUNED` (live-telemetry pruning).
    """


class TrialCancelled(Exception):
    """Raised inside an objective once its trial has been killed.

    Cooperative objectives hit this automatically through
    :meth:`Trial.report`; the executor maps it to ``TIMED_OUT`` (deadline
    kills) or ``CANCELLED`` (job cancellation).
    """


class TrialState(enum.Enum):
    """Lifecycle of one hyper-parameter evaluation.

    ``PENDING -> RUNNING`` and then exactly one terminal state::

        COMPLETED  objective returned a value
        FAILED     objective raised (retryable by the study)
        PRUNED     early-stopped as futureless (cooperatively or via telemetry)
        TIMED_OUT  per-trial deadline passed
        CANCELLED  its job was cancelled mid-flight
    """

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    PRUNED = "pruned"
    TIMED_OUT = "timed_out"
    CANCELLED = "cancelled"

# Terminal state recorded for a trial killed with the given reason.
KILLED_STATES = {
    KILL_DEADLINE: TrialState.TIMED_OUT,
    KILL_PRUNED: TrialState.PRUNED,
    KILL_CANCELLED: TrialState.CANCELLED,
    KILL_PREEMPTED: TrialState.CANCELLED,
}


@dataclass
class Trial:
    """One evaluated hyper-parameter configuration.

    Attributes:
        trial_id: monotonically increasing identifier within a study.
        params: the configuration handed to the objective.
        state: current lifecycle state (see :class:`TrialState`).
        value: objective value (None until completion).
        intermediate_values: values reported during the run (used for pruning).
        duration_seconds: wall-clock duration of the objective call.
        error: textual description of the failure, if any.
        worker: identifier of the (simulated) worker that executed the trial.
    """

    trial_id: int
    params: Dict[str, object]
    state: TrialState = TrialState.PENDING
    value: Optional[float] = None
    intermediate_values: List[float] = field(default_factory=list)
    duration_seconds: float = 0.0
    error: Optional[str] = None
    worker: Optional[str] = None
    # perf_counter timestamp of when the objective actually began executing
    # (None while queued) — deadline enforcement measures from here so queue
    # wait behind other work doesn't count against the trial's time limit.
    started_at: Optional[float] = field(default=None, repr=False, compare=False)

    # The study wires this to its pruner; objectives call trial.report(...)
    # and trial.should_prune() to cooperate with early stopping.
    _prune_check: Optional[object] = None
    # Executors wire this to their telemetry channel: called after every
    # report() append with (trial, value, step) so remote workers can stream
    # intermediate values back to the scheduler and observe kill signals.
    _report_hook: Optional[Callable[["Trial", float, Optional[int]], None]] = \
        field(default=None, repr=False, compare=False)
    # Set (once, first writer wins) when the scheduler or a deadline kills the
    # trial; guarded writes to the lifecycle fields go through _state_lock so
    # a straggler worker thread and the dispatching thread never race on the
    # terminal state.
    _kill_reason: Optional[str] = field(default=None, repr=False, compare=False)
    _state_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False, compare=False)

    def kill(self, reason: str = KILL_CANCELLED) -> None:
        """Mark the trial killed for ``reason`` (cooperative, first kill wins).

        The objective observes the kill at its next :meth:`report` call, which
        raises :class:`PrunedTrial` (reason :data:`KILL_PRUNED`) or
        :class:`TrialCancelled` (any other reason).

        Args:
            reason: one of :data:`KILL_DEADLINE`, :data:`KILL_PRUNED`,
                :data:`KILL_CANCELLED`, :data:`KILL_PREEMPTED`.

        Raises:
            ValueError: for an unknown reason string.
        """
        if reason not in KILLED_STATES:
            raise ValueError(f"unknown kill reason {reason!r}; expected one of "
                             f"{sorted(KILLED_STATES)}")
        with self._state_lock:
            if self._kill_reason is None:
                self._kill_reason = reason

    def cancel(self) -> None:
        """Mark the trial as past its deadline (kept from the PR 1 API)."""
        self.kill(KILL_DEADLINE)

    @property
    def kill_reason(self) -> Optional[str]:
        """Why the trial was killed, or None while it is allowed to run."""
        return self._kill_reason

    @property
    def is_cancelled(self) -> bool:
        """Whether a kill signal (deadline, prune or cancel) has been set."""
        return self._kill_reason is not None

    @property
    def killed_state(self) -> Optional[TrialState]:
        """The terminal state the kill reason maps to (None when not killed)."""
        reason = self._kill_reason
        return None if reason is None else KILLED_STATES[reason]

    def report(self, value: float, step: Optional[int] = None) -> None:
        """Report an intermediate objective value (e.g. per-epoch validation AUC).

        Args:
            value: the intermediate metric at this step.
            step: optional explicit step index; defaults to the running count
                of reports.

        Raises:
            PrunedTrial: the scheduler killed this trial as futureless.
            TrialCancelled: the trial was killed by its deadline or because
                its job was cancelled.
        """
        self._raise_if_killed()
        self.intermediate_values.append(float(value))
        if self._report_hook is not None:
            self._report_hook(self, float(value), step)

    def _raise_if_killed(self) -> None:
        reason = self._kill_reason
        if reason is None:
            return
        if reason == KILL_PRUNED:
            raise PrunedTrial(f"trial {self.trial_id} pruned as futureless")
        if reason == KILL_CANCELLED:
            raise TrialCancelled(f"trial {self.trial_id} was cancelled")
        if reason == KILL_PREEMPTED:
            raise TrialCancelled(
                f"trial {self.trial_id} was preempted by a higher-priority job")
        raise TrialCancelled(f"trial {self.trial_id} exceeded its time limit")

    def should_prune(self) -> bool:
        """Whether the attached pruner recommends stopping this trial early."""
        if self._prune_check is None:
            return False
        return bool(self._prune_check(self))

    @property
    def is_finished(self) -> bool:
        """Whether the trial has reached a terminal state."""
        return self.state in (TrialState.COMPLETED, TrialState.FAILED,
                              TrialState.PRUNED, TrialState.TIMED_OUT,
                              TrialState.CANCELLED)

    def as_record(self) -> Dict[str, object]:
        """The JSON-serialisable snapshot persisted by checkpoints and storage."""
        return {
            "trial_id": self.trial_id,
            "params": dict(self.params),
            "state": self.state.value,
            "value": self.value,
            "duration_seconds": round(self.duration_seconds, 6),
            "worker": self.worker,
            "error": self.error,
            "intermediate_values": [float(v) for v in self.intermediate_values],
        }
