"""Stdlib-only metrics registry and trace spans for the tune service.

Every hot path of the service — scheduler ticks, algorithm ask/tell, executor
queue-wait and trial runtime, event-bus publishes, event-log appends, HTTP
requests — records into one process-global :data:`REGISTRY`.  The registry
exposes the data three ways (all read-only, all safe to hit while the service
is under load):

* :meth:`MetricsRegistry.render` — Prometheus text exposition (served by
  ``GET /v1/metrics`` on the remote server);
* :meth:`MetricsRegistry.snapshot` — a JSON-safe structured dict (embedded in
  ``server_status()["metrics"]``);
* the CLI ``metrics`` subcommand, which formats either of the above.

Design constraints, in order:

1. **Cheap on the hot path.**  A counter increment or histogram observation
   is one short critical section on a per-child lock (no global registry lock
   is touched after the first ``labels()`` resolution, which callers cache at
   module import).  The whole plane can be switched off with
   :func:`set_enabled` — the overhead benchmark
   (``benchmarks/test_telemetry_overhead.py``) holds the instrumented event
   path to within 5% of the uninstrumented one.
2. **Exact under concurrency.**  Increments are never lost and a concurrent
   :meth:`~MetricsRegistry.render` always observes a consistent per-child
   state (bucket counts, sum and count are updated under one lock).
3. **Stdlib only, Python 3.9+.**  No ``prometheus_client`` dependency; the
   exposition format is implemented here (``# HELP``/``# TYPE`` lines,
   ``_bucket``/``_sum``/``_count`` series with cumulative ``le`` labels).

Trace spans
-----------

:func:`span` is a context manager that times a named section with
``time.perf_counter`` and records the duration into the
``anttune_span_seconds{span=...}`` histogram.  Spans nest per thread: a child
span inherits its parent's ``trace_id`` and records the parent's ``span_id``
as ``parent_id``.  Trace ids are plain hex strings (:func:`new_trace_id`):
the server stamps one per job (from the client's ``X-Request-Id`` header when
given) and propagates it onto every event the job publishes, so one id
follows a tuning job from HTTP request through scheduler, executor, event
log, and back out the event stream.
"""

from __future__ import annotations

import bisect
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "exponential_buckets",
    "DEFAULT_BUCKETS",
    "set_enabled",
    "metrics_enabled",
    "Span",
    "span",
    "current_span",
    "new_trace_id",
    "new_span_id",
]

_INF = float("inf")

#: Global kill-switch: when False every inc/set/observe is a no-op.  Used by
#: the overhead benchmark to measure the cost of the instrumentation layer
#: itself; leave it on in production — the whole point is visibility.
_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Enable or disable all metric recording process-wide.

    Rendering and snapshots keep working while disabled; only the write
    paths (``inc``/``set``/``observe``/``time``/:func:`span` recording)
    become no-ops.
    """
    global _ENABLED
    _ENABLED = bool(flag)


def metrics_enabled() -> bool:
    """Whether metric recording is currently enabled."""
    return _ENABLED


def exponential_buckets(start: float, factor: float, count: int,
                        ) -> Tuple[float, ...]:
    """``count`` histogram bucket bounds growing geometrically from ``start``.

    Args:
        start: the first (smallest) upper bound; must be positive.
        factor: the ratio between consecutive bounds; must be > 1.
        count: how many finite bounds to produce (the implicit ``+Inf``
            bucket is added by the histogram itself).

    Returns:
        A strictly increasing tuple of ``count`` finite bounds.
    """
    if start <= 0:
        raise ValueError("start must be > 0")
    if factor <= 1:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor ** i for i in range(count))


#: Default latency buckets: 100us .. ~26s in x4 steps — wide enough to cover
#: a sub-millisecond bus publish and a multi-second trial in one histogram.
DEFAULT_BUCKETS = exponential_buckets(0.0001, 4.0, 10)


def _format_value(value: float) -> str:
    """Format a sample value the way Prometheus text exposition expects."""
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in zip(names, values))
    return "{%s}" % inner


class _Counter:
    """A monotonically increasing sample (one label combination)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def inc_to(self, value: float) -> None:
        """Raise the counter to ``value`` if it is below it (never lowers).

        For mirroring an externally accumulated cumulative count (e.g. the
        shared-memory transport's drop tally) into the registry without
        double counting: call it with the source's current total whenever
        convenient.
        """
        if not _ENABLED:
            return
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Gauge:
    """A sample that can go up and down (one label combination)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Histogram:
    """Cumulative-bucket histogram (one label combination).

    Invariants (established by :meth:`_fold`, which every reader runs
    first): per-bucket counts sum to ``count``; ``sum`` is the sum of every
    observed value; the rendered ``le`` series is non-decreasing and ends
    at ``count`` for ``le="+Inf"``.

    The write path is deliberately minimal: :meth:`observe` appends the raw
    value to a pending list (``list.append`` is a single atomic bytecode
    under the GIL, so no lock is touched) and the bucket arithmetic happens
    in batches — when the pending list reaches ``_FOLD_AT`` values, or when
    a reader (:meth:`state`, i.e. any render/snapshot) needs the folded
    view.  Folding sorts the batch once and walks the bucket bounds over
    it, so the per-observation amortised cost is far below one
    bisect-plus-lock per call, and unfolded memory is bounded by
    ``_FOLD_AT`` floats (~128 KiB) per child — only children actually
    taking observations grow a pending list, and any scrape drains it.
    No observation is ever lost or counted twice: folds serialise on the
    lock, capture the pending length on entry, and concurrent appends land
    past that length.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count", "_pending")

    #: Fold the pending list into buckets once it grows this long.  High on
    #: purpose: folds between scrapes then stay rare, so the writer thread
    #: almost never pays a fold pause (~1 ms at this size) on its hot path.
    _FOLD_AT = 16384

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._pending: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation (hot path: one lock-free list append)."""
        if not _ENABLED:
            return
        pending = self._pending
        pending.append(value)
        if len(pending) >= self._FOLD_AT:
            self._fold()

    def _fold(self) -> None:
        """Batch-apply pending observations to the bucket state."""
        with self._lock:
            pending = self._pending
            n = len(pending)
            if not n:
                return
            batch = pending[:n]
            del pending[:n]  # appends racing this fold land past index n
            batch.sort()
            # `le` semantics: bucket i counts value <= bounds[i]; past the
            # last finite bound the observation lands in +Inf.  On the
            # sorted batch each cumulative count is one bisect per bound.
            counts = self._counts
            prev = 0
            for index, bound in enumerate(self._bounds):
                cumulative = bisect.bisect_right(batch, bound)
                counts[index] += cumulative - prev
                prev = cumulative
            counts[-1] += n - prev
            self._sum += sum(batch)
            self._count += n

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the elapsed ``perf_counter`` seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    def state(self) -> Tuple[List[int], float, int]:
        """A consistent (bucket counts, sum, count) snapshot."""
        self._fold()
        with self._lock:
            return list(self._counts), self._sum, self._count


_CHILD_TYPES = {"counter": _Counter, "gauge": _Gauge, "histogram": _Histogram}


class _Family:
    """One named metric: a kind, a help string, and children per label set.

    With no declared labels the family proxies ``inc``/``set``/``observe``/
    ``time``/``inc_to`` straight to its single default child, so unlabelled
    metrics read naturally: ``REGISTRY.counter("x", "…").inc()``.
    """

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: Tuple[str, ...],
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not label_names:
            self._children[()] = self._make_child()

    def _make_child(self) -> object:
        if self.kind == "histogram":
            return _Histogram(self.buckets or DEFAULT_BUCKETS)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **label_values: object):
        """The child for one label-value combination (created on first use).

        Children are cached: hot paths should resolve their label sets once
        (at module import or per job) and keep the returned child.
        """
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels "
                f"{list(self.label_names)}, got {sorted(label_values)}")
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _default(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {list(self.label_names)}; "
                f"use .labels(...)")
        return self._children[()]

    # Unlabelled-family conveniences ------------------------------------ #
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def inc_to(self, value: float) -> None:
        self._default().inc_to(value)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def time(self):
        return self._default().time()

    @property
    def value(self) -> float:
        return self._default().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A named collection of metric families, safe for concurrent use.

    Registration is idempotent get-or-create: instrumenting modules declare
    their families at import time against the process-global
    :data:`REGISTRY`, and repeated declarations with the same signature
    return the same family (a mismatch in kind or label names raises, so two
    modules cannot silently fight over one name).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(self, name: str, kind: str, help_text: str,
                  labels: Sequence[str],
                  buckets: Optional[Sequence[float]] = None) -> _Family:
        label_names = tuple(labels)
        bucket_bounds = None
        if buckets is not None:
            bucket_bounds = tuple(sorted(float(b) for b in buckets))
            if len(set(bucket_bounds)) != len(bucket_bounds):
                raise ValueError("histogram buckets must be distinct")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels "
                        f"{list(family.label_names)}")
                return family
            family = _Family(name, kind, help_text, label_names,
                             bucket_bounds)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> _Family:
        """Get or create a counter family."""
        return self._register(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> _Family:
        """Get or create a gauge family."""
        return self._register(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> _Family:
        """Get or create a histogram family (default :data:`DEFAULT_BUCKETS`)."""
        return self._register(name, "histogram", help_text, labels,
                              buckets or DEFAULT_BUCKETS)

    # -- read side ------------------------------------------------------ #
    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                labels = _render_labels(family.label_names, key)
                if family.kind == "histogram":
                    counts, total, count = child.state()
                    bounds = list(family.buckets or DEFAULT_BUCKETS) + [_INF]
                    cumulative = 0
                    for bound, bucket_count in zip(bounds, counts):
                        cumulative += bucket_count
                        le = _render_labels(
                            tuple(family.label_names) + ("le",),
                            key + (_format_value(bound),))
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(total)}")
                    lines.append(f"{family.name}_count{labels} {count}")
                else:
                    lines.append(
                        f"{family.name}{labels} "
                        f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-safe structured view of every family.

        Counters and gauges carry ``samples: [{labels, value}]``; histograms
        carry ``samples: [{labels, count, sum, buckets}]`` where ``buckets``
        maps the ``le`` bound (as a string) to the *cumulative* count.
        """
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        for family in families:
            samples: List[Dict[str, object]] = []
            for key, child in family.children():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    counts, total, count = child.state()
                    bounds = list(family.buckets or DEFAULT_BUCKETS) + [_INF]
                    buckets: Dict[str, int] = {}
                    cumulative = 0
                    for bound, bucket_count in zip(bounds, counts):
                        cumulative += bucket_count
                        buckets[_format_value(bound)] = cumulative
                    samples.append({"labels": labels, "count": count,
                                    "sum": total, "buckets": buckets})
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {"type": family.kind, "help": family.help,
                                "samples": samples}
        return out


#: The process-global default registry every instrumented module records to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default :class:`MetricsRegistry`."""
    return REGISTRY


# --------------------------------------------------------------------- #
# Trace spans
# --------------------------------------------------------------------- #

def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (job-scoped correlation id)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return uuid.uuid4().hex[:8]


class Span:
    """One timed section: name, trace/span ids, and (once closed) duration."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "duration")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.duration: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span(name={self.name!r}, trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, duration={self.duration!r})")


_span_stack = threading.local()


def current_span() -> Optional[Span]:
    """The innermost open :func:`span` on this thread, if any."""
    stack = getattr(_span_stack, "stack", None)
    return stack[-1] if stack else None


_SPAN_SECONDS = REGISTRY.histogram(
    "anttune_span_seconds", "Duration of named trace spans.",
    labels=("span",))


@contextmanager
def span(name: str, trace_id: Optional[str] = None,
         registry: Optional[MetricsRegistry] = None) -> Iterator[Span]:
    """Time a named section and record it as a trace span.

    The span inherits the enclosing span's ``trace_id`` (same thread) unless
    one is passed explicitly; the outermost span of a fresh trace mints one.
    On exit the duration is observed into the
    ``anttune_span_seconds{span=name}`` histogram.

    Args:
        name: the span name (becomes the ``span`` label — keep the set of
            names small and static; ids belong in the trace id, not here).
        trace_id: explicit trace to join (e.g. a job's trace id).
        registry: record into this registry instead of the global one.

    Yields:
        The open :class:`Span`; read ``duration`` after the block for the
        elapsed seconds.
    """
    parent = current_span()
    if trace_id is None:
        trace_id = parent.trace_id if parent is not None else new_trace_id()
    current = Span(name, trace_id, new_span_id(),
                   parent.span_id if parent is not None else None)
    stack = getattr(_span_stack, "stack", None)
    if stack is None:
        stack = _span_stack.stack = []
    stack.append(current)
    start = time.perf_counter()
    try:
        yield current
    finally:
        current.duration = time.perf_counter() - start
        stack.pop()
        if registry is None:
            _SPAN_SECONDS.labels(span=name).observe(current.duration)
        else:
            registry.histogram(
                "anttune_span_seconds", "Duration of named trace spans.",
                labels=("span",)).labels(span=name).observe(current.duration)
