"""Durable per-job event log: segmented, append-only, seq-indexed.

The :class:`~repro.automl.events.EventBus` gives every job one ordered event
stream, but its replay history is a bounded in-memory ring — a restarted
server forgets every stream, so a client reconnecting with ``last_seq`` after
a crash used to find nothing to replay.  :class:`EventLog` closes that gap:
the tune server feeds every published event of a job into an append-only
on-disk log (one synchronous bus callback per job), and the remote event
endpoint transparently backfills ``GET /v1/jobs/{id}/events?last_seq=`` from
disk when the in-memory ring has rotated or the process is new.

Log format
----------

One directory per job under the log root::

    <root>/
      job-<id>/
        meta.json                    # study name, code refs, priority, preempt
        events-0000000000.ndjson     # segment: events with seq >= 0
        events-0000000512.ndjson     # segment: events with seq >= 512
        ...

Each segment line is one :func:`~repro.automl.events.event_to_wire` payload —
exactly the bytes the remote NDJSON stream ships, so ``tail -f`` on a segment
shows the live wire format and the CLI ``log`` subcommand can print replayable
lines.  The segment file name carries the first sequence number it holds
(**seq-indexed**): a reader resuming from ``last_seq`` skips whole segments
below it without parsing a line, and compaction can drop whole old segments
while knowing exactly which seq range it sheds.

Durability policy
-----------------

Every append is flushed to the OS (``file.flush()``), so a killed *process*
(SIGKILL, OOM) loses nothing that was published.  ``fsync`` controls the
stronger machine-crash guarantee:

* ``"always"`` — fsync after every append (safest, slowest);
* ``"interval"`` (default) — fsync at most every ``fsync_interval`` seconds,
  plus on segment rotation and close;
* ``"never"`` — leave flushing to the OS.

A torn final line (a crash mid-write) is tolerated on read: lines that fail
to parse are skipped, so recovery sees every *complete* record.

Bounded segments
----------------

A segment rotates once it reaches ``segment_max_bytes``; when a job exceeds
``max_segments`` segments, the oldest whole segments are deleted
(*seq-aware compaction*: the deleted range is exactly ``[0, first seq of the
oldest surviving segment)``, so a reader below that point sees a clean gap it
can report, never a half-segment).  The newest segment — which holds the
terminal event once the job ends — is never compacted away.
"""

from __future__ import annotations

import json
import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.automl import metrics as _metrics
from repro.automl.events import Event, event_from_wire, event_wire_bytes

__all__ = ["EventLog", "FSYNC_POLICIES"]

# Durability-path timings; each histogram's _count doubles as the operation
# counter (appends/fsyncs/rotations), matching EventLog.stats().
_APPEND_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_eventlog_append_seconds",
    "EventLog.append latency (serialise + write + flush, fsync included "
    "when the policy triggers one).")
_FSYNC_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_eventlog_fsync_seconds", "EventLog fsync latency.")
_ROTATION_SECONDS = _metrics.REGISTRY.histogram(
    "anttune_eventlog_rotation_seconds",
    "EventLog segment rotation latency (close + open + compaction).")

#: Accepted values for the ``fsync`` policy.
FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_PREFIX = "events-"
_SEGMENT_SUFFIX = ".ndjson"
_JOB_PREFIX = "job-"


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:010d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


@dataclass
class _Appender:
    """Open write state for one job's current segment."""

    handle: Optional[object] = None
    path: Optional[Path] = None
    size: int = 0
    last_fsync: float = 0.0
    events: int = 0
    pending_fsync: bool = field(default=False)


class EventLog:
    """Segmented append-only store of per-job wire events (see module docs).

    Args:
        root: directory holding one ``job-<id>/`` subdirectory per job.
        segment_max_bytes: rotate the active segment at this size.
        max_segments: per-job bound; the oldest whole segments beyond it are
            deleted on rotation (seq-aware compaction).
        fsync: durability policy — ``"always"``, ``"interval"`` or
            ``"never"`` (see module docs).  Appends always flush to the OS.
        fsync_interval: seconds between fsyncs under the ``"interval"``
            policy.
        create: create ``root`` if missing.  Pass False for read-only
            inspection (the CLI ``log`` subcommand) so a typo'd path errors
            instead of materialising an empty log.

    Raises:
        ValueError: unknown ``fsync`` policy or non-positive bounds.
        FileNotFoundError: ``create=False`` and ``root`` does not exist.
    """

    def __init__(self, root: str, segment_max_bytes: int = 1 << 20,
                 max_segments: int = 64, fsync: str = "interval",
                 fsync_interval: float = 1.0, create: bool = True) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; expected one "
                             f"of {FSYNC_POLICIES}")
        if segment_max_bytes < 1:
            raise ValueError("segment_max_bytes must be >= 1")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        if fsync_interval < 0:
            raise ValueError("fsync_interval must be >= 0")
        self.root = Path(root)
        self.segment_max_bytes = int(segment_max_bytes)
        self.max_segments = int(max_segments)
        self.fsync = fsync
        self.fsync_interval = float(fsync_interval)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError(f"no event log at {self.root}")
        self._lock = threading.RLock()
        self._appenders: Dict[int, _Appender] = {}
        # Operator-facing counters (surfaced through server_status()).
        self.appended = 0
        self.rotations = 0
        self.compacted_segments = 0
        self.fsyncs = 0

    # ------------------------------------------------------------------ #
    # Layout helpers
    # ------------------------------------------------------------------ #
    def _job_dir(self, job_id: int) -> Path:
        return self.root / f"{_JOB_PREFIX}{int(job_id)}"

    def _segments(self, job_id: int) -> List[Tuple[int, Path]]:
        """Sorted ``(first_seq, path)`` pairs of one job's segments."""
        job_dir = self._job_dir(job_id)
        if not job_dir.is_dir():
            return []
        segments = []
        for path in job_dir.iterdir():
            first_seq = _segment_first_seq(path)
            if first_seq is not None:
                segments.append((first_seq, path))
        segments.sort()
        return segments

    def jobs(self) -> List[int]:
        """Every job id with a directory in this log, ascending."""
        ids = []
        if self.root.is_dir():
            for path in self.root.iterdir():
                name = path.name
                if (path.is_dir() and name.startswith(_JOB_PREFIX)
                        and name[len(_JOB_PREFIX):].isdigit()):
                    ids.append(int(name[len(_JOB_PREFIX):]))
        return sorted(ids)

    def has_job(self, job_id: int) -> bool:
        """Whether this log holds any state for ``job_id``."""
        return self._job_dir(job_id).is_dir()

    # ------------------------------------------------------------------ #
    # Job metadata
    # ------------------------------------------------------------------ #
    def open_job(self, job_id: int, study_name: str,
                 refs: Optional[Dict[str, str]] = None,
                 priority: float = 1.0, preempt: bool = False,
                 trace_id: Optional[str] = None) -> None:
        """Create (or update) a job's directory and recovery metadata.

        ``meta.json`` is what makes crash recovery possible: it maps the job
        id back to its storage ``study_name``, and — when the submit carried
        ``module:attr`` code references — records them so
        :meth:`~repro.automl.server.AntTuneServer.recover` can re-import the
        space/objective and auto-resume the job.  Re-opening an existing job
        (a recovered resume) merges the new values over the stored ones.

        Args:
            job_id: the bus job id the events are stamped with.
            study_name: the storage name the job persists under.
            refs: ``module:attr`` reference strings (``space``,
                ``objective``, optionally ``algorithm``/``pruner``), when
                known.
            priority: the job's fair-share weight, restored on auto-resume.
            preempt: the job's preempt flag, restored on auto-resume.
            trace_id: the job's trace id, when known — persisted so a
                recovered resume continues the *same* trace instead of
                starting a fresh one, keeping pre- and post-crash events
                correlated.
        """
        job_dir = self._job_dir(job_id)
        with self._lock:
            job_dir.mkdir(parents=True, exist_ok=True)
            meta = self.meta(job_id) or {}
            meta.update({"job_id": int(job_id), "study_name": study_name,
                         "priority": float(priority),
                         "preempt": bool(preempt)})
            if trace_id:
                meta["trace_id"] = str(trace_id)
            if refs:
                meta["refs"] = {key: str(value)
                                for key, value in dict(refs).items()}
            path = job_dir / "meta.json"
            tmp = job_dir / "meta.json.tmp"
            tmp.write_text(json.dumps(meta, sort_keys=True, indent=2))
            tmp.replace(path)  # atomic: recovery never reads a torn meta

    def meta(self, job_id: int) -> Optional[Dict[str, object]]:
        """The job's recovery metadata, or None when absent/torn."""
        path = self._job_dir(job_id) / "meta.json"
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append(self, event: Event) -> None:
        """Append one bus-stamped event to its job's active segment.

        Called synchronously from the bus's publish path (a callback
        subscription), so by the time any queue consumer sees an event it is
        already flushed to the OS — a killed process loses nothing it
        delivered.  Rotation and compaction happen inline when the active
        segment fills.

        Args:
            event: a published event — ``job_id`` set and ``seq`` stamped.

        Raises:
            ValueError: an unstamped event (no job id, or ``seq < 0``).
            OSError: the underlying write failed (the bus swallows callback
                exceptions, so a dying disk degrades durability, never the
                publisher).
        """
        job_id, seq = event.job_id, event.seq
        if job_id is None or seq < 0:
            raise ValueError("only bus-stamped events (job_id set, seq >= 0) "
                             "can be logged")
        append_start = perf_counter()
        # Shared wire bytes: the same buffer every stream subscriber ships,
        # serialised once per event (see events.event_wire_bytes).
        line = event_wire_bytes(event)
        import time
        with self._lock:
            appender = self._appenders.get(job_id)
            if appender is None:
                appender = self._appenders[job_id] = self._open_appender(job_id)
            if appender.handle is None or appender.size >= self.segment_max_bytes:
                self._rotate(job_id, appender, first_seq=seq)
            appender.handle.write(line)
            appender.handle.flush()
            appender.size += len(line)
            appender.events += 1
            self.appended += 1
            if self.fsync == "always":
                self._fsync(appender)
            elif self.fsync == "interval":
                now = time.monotonic()
                if now - appender.last_fsync >= self.fsync_interval:
                    self._fsync(appender)
                    appender.last_fsync = now
        _APPEND_SECONDS.observe(perf_counter() - append_start)

    def _open_appender(self, job_id: int) -> _Appender:
        """Resume appending to the job's newest segment (or start fresh)."""
        self._job_dir(job_id).mkdir(parents=True, exist_ok=True)
        segments = self._segments(job_id)
        appender = _Appender()
        if segments:
            _, path = segments[-1]
            appender.path = path
            appender.size = path.stat().st_size
            appender.handle = open(path, "ab")
        return appender

    def _rotate(self, job_id: int, appender: _Appender, first_seq: int) -> None:
        """Close the active segment and open a new one starting at ``first_seq``."""
        with _ROTATION_SECONDS.time():
            self._rotate_locked(job_id, appender, first_seq)

    def _rotate_locked(self, job_id: int, appender: _Appender,
                       first_seq: int) -> None:
        if appender.handle is not None:
            self._fsync(appender)
            appender.handle.close()
            self.rotations += 1
        path = self._job_dir(job_id) / _segment_name(first_seq)
        appender.handle = open(path, "ab")
        appender.path = path
        appender.size = path.stat().st_size
        # Enforce the per-job segment bound, oldest first; the segment just
        # opened (and with it any terminal event to come) always survives.
        segments = self._segments(job_id)
        while len(segments) > self.max_segments:
            _, oldest = segments.pop(0)
            if oldest == appender.path:  # pragma: no cover - max_segments>=1
                break
            try:
                oldest.unlink()
                self.compacted_segments += 1
            except OSError:  # pragma: no cover - raced removal
                break

    def _fsync(self, appender: _Appender) -> None:
        if appender.handle is None or self.fsync == "never":
            return
        import os
        try:
            fsync_start = perf_counter()
            os.fsync(appender.handle.fileno())
            self.fsyncs += 1
            _FSYNC_SECONDS.observe(perf_counter() - fsync_start)
        except OSError:  # pragma: no cover - e.g. fsync on a pipe
            pass

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read(self, job_id: int, after_seq: int = -1) -> Iterator[Event]:
        """Yield the job's logged events with ``seq > after_seq``, in order.

        Segments entirely below ``after_seq`` are skipped by file name
        (seq-indexed, no parsing); torn or corrupt lines are skipped; a
        segment deleted mid-read (concurrent compaction) is skipped whole.

        Args:
            job_id: the job to read.
            after_seq: resume point; -1 reads from the log's oldest record.

        Yields:
            Reconstructed typed events in ascending ``seq`` order.
        """
        segments = self._segments(job_id)
        for index, (first_seq, path) in enumerate(segments):
            next_first = (segments[index + 1][0] if index + 1 < len(segments)
                          else None)
            if next_first is not None and next_first <= after_seq + 1:
                continue  # every seq in this segment is <= after_seq
            try:
                raw_lines = path.read_bytes().splitlines()
            except OSError:
                continue  # compacted away under us
            for raw in raw_lines:
                if not raw.strip():
                    continue
                try:
                    event = event_from_wire(json.loads(raw.decode("utf-8")))
                except (ValueError, UnicodeDecodeError):
                    continue  # torn tail from a crash mid-write
                if event.seq > after_seq:
                    yield event

    def last_seq(self, job_id: int) -> int:
        """The highest logged sequence number for ``job_id`` (-1 if none)."""
        last = self.last_event(job_id)
        return -1 if last is None else last.seq

    def last_event(self, job_id: int) -> Optional[Event]:
        """The newest parseable logged event of ``job_id``, or None."""
        for first_seq, path in reversed(self._segments(job_id)):
            try:
                raw_lines = path.read_bytes().splitlines()
            except OSError:
                continue
            for raw in reversed(raw_lines):
                if not raw.strip():
                    continue
                try:
                    return event_from_wire(json.loads(raw.decode("utf-8")))
                except (ValueError, UnicodeDecodeError):
                    continue  # torn tail
        return None

    def first_seq(self, job_id: int) -> int:
        """The lowest seq still on disk (-1 if none) — compaction's floor."""
        for first_seq, path in self._segments(job_id):
            for event in self.read(job_id, after_seq=first_seq - 1):
                return event.seq
        return -1

    # ------------------------------------------------------------------ #
    # Compaction and removal
    # ------------------------------------------------------------------ #
    def compact(self, job_id: int, keep_after_seq: int) -> int:
        """Drop whole segments whose every seq is ``<= keep_after_seq``.

        Seq-aware: only segments fully below the keep point are deleted (a
        segment straddling it survives intact), and the newest segment is
        never deleted — the terminal event always remains replayable.

        Args:
            job_id: the job to compact.
            keep_after_seq: events with seq above this must survive.

        Returns:
            The number of segments deleted.
        """
        removed = 0
        with self._lock:
            segments = self._segments(job_id)
            for index, (first_seq, path) in enumerate(segments[:-1]):
                if segments[index + 1][0] <= keep_after_seq + 1:
                    try:
                        path.unlink()
                        removed += 1
                        self.compacted_segments += 1
                    except OSError:  # pragma: no cover - raced removal
                        pass
        return removed

    def remove_job(self, job_id: int) -> None:
        """Delete a job's directory (meta + all segments); idempotent."""
        with self._lock:
            appender = self._appenders.pop(job_id, None)
            if appender is not None and appender.handle is not None:
                appender.handle.close()
            shutil.rmtree(self._job_dir(job_id), ignore_errors=True)

    def remove_study(self, study_name: str) -> List[int]:
        """Delete every job log persisted for ``study_name``.

        This is how :meth:`StudyStorage.delete_study
        <repro.automl.storage.StudyStorage.delete_study>` and ``gc`` keep the
        log from outliving the rows it annotates.

        Returns:
            The removed job ids.
        """
        removed = []
        for job_id in self.jobs():
            meta = self.meta(job_id)
            if meta is not None and meta.get("study_name") == study_name:
                self.remove_job(job_id)
                removed.append(job_id)
        return removed

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Operator counters: appends, rotations, compactions, fsyncs."""
        with self._lock:
            return {
                "root": str(self.root),
                "jobs": len(self.jobs()),
                "appended": self.appended,
                "rotations": self.rotations,
                "compacted_segments": self.compacted_segments,
                "fsyncs": self.fsyncs,
            }

    def flush(self) -> None:
        """Flush (and, policy permitting, fsync) every open segment."""
        with self._lock:
            for appender in self._appenders.values():
                if appender.handle is not None:
                    appender.handle.flush()
                    self._fsync(appender)

    def close(self) -> None:
        """Flush and close every open segment handle (the log stays readable)."""
        with self._lock:
            for appender in self._appenders.values():
                if appender.handle is not None:
                    appender.handle.flush()
                    self._fsync(appender)
                    appender.handle.close()
                    appender.handle = None
            self._appenders.clear()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
