"""SQLite-backed persistence for studies and trials.

The paper's tune service is long-lived: studies survive server restarts and
can be listed and resumed.  :class:`StudyStorage` provides that durability on
a single SQLite file (stdlib ``sqlite3``, no extra dependency):

* ``studies`` holds one row per study — its name, algorithm, lifecycle status
  and the full checkpoint-v2 payload (:meth:`repro.automl.study.Study.state_payload`)
  minus the trial history,
* ``trials`` holds one row per trial, normalised so completed work can be
  queried (best value, state counts) without deserialising whole studies.

Writes are transactional and serialised under an internal lock, so the tune
server's concurrent job dispatcher threads can checkpoint different studies
into the same storage.  File-backed databases run in SQLite's WAL journal
mode, so readers (e.g. the ``python -m repro.automl.cli`` inspection
commands) never block behind a checkpointing writer.  A study reloaded via
:meth:`load_study` in a fresh process resumes with only its remaining trial
budget; a study cancelled via the server keeps its ``cancelled`` status and
CANCELLED trial rows, and can be resumed or deleted later.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm
from repro.automl.pruners import Pruner
from repro.automl.search_space import SearchSpace
from repro.automl.study import Study, StudyConfig
from repro.exceptions import TrialError
from repro.utils.rng import new_rng
from repro.utils.serialization import json_default

__all__ = ["StudyStorage"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS studies (
    name        TEXT PRIMARY KEY,
    algorithm   TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'running',
    maximize    INTEGER NOT NULL DEFAULT 1,
    payload     TEXT NOT NULL,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    study_name       TEXT NOT NULL,
    trial_id         INTEGER NOT NULL,
    state            TEXT NOT NULL,
    value            REAL,
    duration_seconds REAL,
    worker           TEXT,
    error            TEXT,
    record           TEXT NOT NULL,
    PRIMARY KEY (study_name, trial_id)
);
"""


class StudyStorage:
    """Persist studies/trials in a SQLite database (one file = one service).

    File-backed storage also owns the durable per-job
    :class:`~repro.automl.eventlog.EventLog` (default location: a sibling
    ``<path>.events`` directory), so "one file = one service" extends to the
    event history a restarted server needs for replay and crash recovery.
    The log is created lazily on first use of :attr:`event_log`; in-memory
    storage has no event log unless ``events_dir`` is given explicitly.
    """

    def __init__(self, path: str = ":memory:",
                 events_dir: Optional[str] = None) -> None:
        self.path = str(path)
        if events_dir is None and self.path != ":memory:":
            events_dir = self.path + ".events"
        self.events_dir = events_dir
        self._event_log = None
        # One shared connection guarded by a lock: the server checkpoints
        # studies from its dispatcher threads, not just the creating thread.
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        # WAL lets concurrent readers (CLI `list`/`show`, a second server
        # process) proceed while a dispatcher thread checkpoints; with it,
        # synchronous=NORMAL keeps durability at a fraction of the fsyncs.
        # In-memory databases silently keep their own journal mode.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._lock = threading.RLock()
        # Last-persisted trial state per study, so frequent checkpoints don't
        # re-read the full trial table to find what changed.
        self._persisted: Dict[str, Dict[int, str]] = {}
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # Event log
    # ------------------------------------------------------------------ #
    @property
    def event_log(self):
        """The storage's durable :class:`~repro.automl.eventlog.EventLog`.

        Created (directory and all) on first access; None when the storage
        has no events directory (in-memory storage without an explicit
        ``events_dir``).
        """
        if self._event_log is None and self.events_dir is not None:
            from repro.automl.eventlog import EventLog
            self._event_log = EventLog(self.events_dir)
        return self._event_log

    def _existing_event_log(self):
        """The event log only if its directory already exists (no create).

        ``delete_study``/``gc`` use this: cleaning up rows must not
        materialise an empty events directory as a side effect.
        """
        import os
        if self._event_log is not None:
            return self._event_log
        if self.events_dir is not None and os.path.isdir(self.events_dir):
            return self.event_log
        return None

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save_study(self, name: str, study: Study, status: str = "running") -> None:
        """Upsert the study row and its trial rows (one transaction).

        Trial rows are written incrementally: a record is (re)written only if
        its state differs from the stored row, so frequent checkpoints (the
        async scheduler saves after every trial) stay proportional to the new
        work, not the full history.
        """
        payload = study.state_payload()
        trials = payload.pop("trials")
        payload_json = json.dumps(payload, sort_keys=True, default=json_default)
        now = time.time()
        maximize = 1 if payload["config"].get("maximize", True) else 0
        with self._lock:
            self._conn.execute(
                "INSERT INTO studies (name, algorithm, status, maximize, payload, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET "
                "algorithm=excluded.algorithm, status=excluded.status, "
                "maximize=excluded.maximize, payload=excluded.payload, "
                "updated_at=excluded.updated_at",
                (name, str(payload["algorithm"]), status, maximize, payload_json,
                 now, now))
            existing = self._persisted_states(name)
            changed = [record for record in trials
                       if existing.get(record["trial_id"]) != record["state"]]
            self._upsert_trial_rows(name, changed)
            # Rows no longer in the history (in-flight trials dropped by a
            # resume) must not linger as zombies.
            stale = set(existing) - {record["trial_id"] for record in trials}
            self._conn.executemany(
                "DELETE FROM trials WHERE study_name = ? AND trial_id = ?",
                [(name, trial_id) for trial_id in stale])
            self._conn.commit()
            self._persisted[name] = {record["trial_id"]: record["state"]
                                     for record in trials}

    def _persisted_states(self, name: str) -> Dict[int, str]:
        """The last-persisted trial states cache, primed from the table.

        Caller holds ``self._lock``.  The prime keeps pre-existing rows
        (e.g. a resumed study's history) visible as candidates for
        stale-row cleanup on the next full save.
        """
        states = self._persisted.get(name)
        if states is None:
            states = self._persisted[name] = dict(self._conn.execute(
                "SELECT trial_id, state FROM trials WHERE study_name = ?",
                (name,)).fetchall())
        return states

    def _upsert_trial_rows(self, name: str,
                           records: List[Dict[str, object]]) -> None:
        """Write trial rows (caller holds ``self._lock``; no commit)."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO trials (study_name, trial_id, state, "
            "value, duration_seconds, worker, error, record) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [(name, record["trial_id"], record["state"], record["value"],
              record["duration_seconds"], record["worker"], record["error"],
              json.dumps(record, sort_keys=True, default=json_default))
             for record in records])

    def record_trial(self, name: str, record: Dict[str, object]) -> None:
        """Upsert one trial row from its event-stream record.

        This is the persistence path driven by the tune server's event bus: a
        :class:`~repro.automl.events.TrialFinished` event carries the trial's
        full record, which lands as a row the moment the event publishes —
        between (and independent of) full study checkpoints.  The
        incremental-save cache is updated so a later :meth:`save_study` does
        not rewrite the row.

        Args:
            name: the owning study.
            record: a :meth:`~repro.automl.trial.Trial.as_record` snapshot.
        """
        with self._lock:
            self._upsert_trial_rows(name, [record])
            self._conn.commit()
            self._persisted_states(name)[record["trial_id"]] = record["state"]

    def set_status(self, name: str, status: str) -> None:
        """Update only a study's lifecycle status column.

        Args:
            name: the stored study.
            status: the new status string (a :class:`~repro.automl.server.JobState`
                value).

        Raises:
            TrialError: unknown study name.
        """
        with self._lock:
            updated = self._conn.execute(
                "UPDATE studies SET status = ?, updated_at = ? WHERE name = ?",
                (status, time.time(), name)).rowcount
            self._conn.commit()
        if not updated:
            raise TrialError(f"unknown study {name!r}")

    def delete_study(self, name: str) -> None:
        """Delete a study, its trial rows and its event-log history.

        Args:
            name: the stored study.

        Raises:
            TrialError: unknown study name.
        """
        with self._lock:
            self._conn.execute("DELETE FROM trials WHERE study_name = ?", (name,))
            deleted = self._conn.execute(
                "DELETE FROM studies WHERE name = ?", (name,)).rowcount
            self._conn.commit()
            self._persisted.pop(name, None)
        if not deleted:
            raise TrialError(f"unknown study {name!r}")
        log = self._existing_event_log()
        if log is not None:
            log.remove_study(name)

    # Terminal job statuses eligible for garbage collection by default: a
    # queued/running study belongs to a (possibly live) server and is never
    # collected unless explicitly requested.
    GC_DEFAULT_STATES = ("completed", "failed", "cancelled")

    def gc(self, max_age_days: float = 30.0,
           states: Optional[Sequence[str]] = None,
           dry_run: bool = False,
           names: Optional[Sequence[str]] = None) -> List[str]:
        """Delete stored studies that are old *and* in a collectable status.

        A study is collected when its ``updated_at`` is older than
        ``max_age_days`` and its status is one of ``states`` (default: the
        terminal statuses — ``completed``, ``failed``, ``cancelled``).  Each
        collected study's trial rows go with it, in one transaction.

        Args:
            max_age_days: minimum age (since last update) in days; 0 collects
                every study in a matching status.
            states: statuses eligible for collection (defaults to
                :data:`GC_DEFAULT_STATES`).
            dry_run: when True, only report what *would* be deleted.
            names: restrict collection to these studies.  The age/status
                predicate still applies — this is how a confirm-then-delete
                flow (the CLI) avoids deleting studies that crossed the age
                cutoff, or were resumed back to ``running``, after the
                preview.

        Returns:
            The names of the deleted (or, under ``dry_run``, deletable)
            studies, oldest first.

        Raises:
            ValueError: for a negative ``max_age_days`` or empty ``states``.
        """
        if max_age_days < 0:
            raise ValueError("max_age_days must be >= 0")
        eligible = (self.GC_DEFAULT_STATES if states is None
                    else tuple(states))
        if not eligible:
            raise ValueError("states must not be empty")
        cutoff = time.time() - max_age_days * 86400.0
        placeholders = ",".join("?" for _ in eligible)
        with self._lock:
            rows = self._conn.execute(
                f"SELECT name FROM studies WHERE updated_at <= ? "
                f"AND status IN ({placeholders}) ORDER BY updated_at",
                (cutoff, *eligible)).fetchall()
            names_filter = None if names is None else set(names)
            names = [row["name"] for row in rows
                     if names_filter is None or row["name"] in names_filter]
            if dry_run or not names:
                return names
            # Chunked IN-lists: stock sqlite3 builds cap host variables at
            # 999, and gc fires exactly when the backlog is largest.  All
            # chunks share one transaction (single commit below).
            for start in range(0, len(names), 500):
                chunk = names[start:start + 500]
                slots = ",".join("?" for _ in chunk)
                self._conn.execute(
                    f"DELETE FROM trials WHERE study_name IN ({slots})", chunk)
                self._conn.execute(
                    f"DELETE FROM studies WHERE name IN ({slots})", chunk)
            self._conn.commit()
            for name in names:
                self._persisted.pop(name, None)
        log = self._existing_event_log()
        if log is not None:
            for name in names:
                log.remove_study(name)
        return names

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def list_studies(self) -> List[Dict[str, object]]:
        """Summaries of every stored study (no payload deserialisation).

        ``best_value`` honours the study's optimisation direction: the max
        completed value for maximize studies, the min for minimize ones.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT s.name, s.algorithm, s.status, s.maximize, "
                "       s.created_at, s.updated_at, "
                "       COUNT(t.trial_id) AS num_trials, "
                "       SUM(CASE WHEN t.state = 'completed' THEN 1 ELSE 0 END) AS completed, "
                "       CASE WHEN s.maximize "
                "            THEN MAX(CASE WHEN t.state = 'completed' THEN t.value END) "
                "            ELSE MIN(CASE WHEN t.state = 'completed' THEN t.value END) "
                "       END AS best_value "
                "FROM studies s LEFT JOIN trials t ON t.study_name = s.name "
                "GROUP BY s.name ORDER BY s.created_at").fetchall()
        return [dict(row, maximize=bool(row["maximize"])) for row in rows]

    def study_exists(self, name: str) -> bool:
        """Whether a study row with ``name`` is stored."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM studies WHERE name = ?", (name,)).fetchone()
        return row is not None

    def study_status(self, name: str) -> Optional[str]:
        """The stored lifecycle status of ``name``, or None when unknown.

        Crash recovery's first question per logged job: does the row still
        exist, and did the last status write land before the crash?
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT status FROM studies WHERE name = ?", (name,)).fetchone()
        return None if row is None else row["status"]

    def study_summary(self, name: str) -> Optional[Dict[str, object]]:
        """One :meth:`list_studies`-style summary row, or None when unknown."""
        for row in self.list_studies():
            if row["name"] == name:
                return row
        return None

    def trial_state_counts(self, name: str) -> Dict[str, int]:
        """Stored trial rows of ``name`` grouped by state (empty if none)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM trials "
                "WHERE study_name = ? GROUP BY state", (name,)).fetchall()
        return {row["state"]: row["n"] for row in rows}

    def load_payload(self, name: str) -> Dict[str, object]:
        """The raw checkpoint payload of a stored study (trials re-attached)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM studies WHERE name = ?", (name,)).fetchone()
            if row is None:
                raise TrialError(f"unknown study {name!r}")
            trial_rows = self._conn.execute(
                "SELECT record FROM trials WHERE study_name = ? ORDER BY trial_id",
                (name,)).fetchall()
        payload = json.loads(row["payload"])
        payload["trials"] = [json.loads(r["record"]) for r in trial_rows]
        return payload

    def load_study(self, name: str, space: SearchSpace,
                   algorithm: Optional[SearchAlgorithm] = None,
                   pruner: Optional[Pruner] = None,
                   rng: Optional[np.random.Generator] = None) -> Study:
        """Rebuild a stored study so the next ``optimize`` runs the remainder.

        ``space`` (and a matching ``algorithm``/``pruner``, when the original
        run used non-defaults) must be supplied by the caller — code is not
        persisted, only state.
        """
        payload = self.load_payload(name)
        config = StudyConfig(**payload["config"])
        study = Study(space, algorithm=algorithm, config=config, pruner=pruner,
                      rng=new_rng(rng if rng is not None else 0))
        return study.load_state_payload(payload)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the SQLite connection and the event log, if one was opened."""
        if self._event_log is not None:
            self._event_log.close()
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "StudyStorage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
