"""Profile encoding module (the left branch of Fig. 2)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers.basic import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["ProfileEncoder"]


class ProfileEncoder(Module):
    """MLP that embeds the (relatively stable) user profile attributes.

    The paper fixes this module across all compared models (Sec. V-A3); its
    output dimensionality is the last entry of ``hidden_dims``.
    """

    def __init__(self, profile_dim: int, hidden_dims: Sequence[int] = (32, 16),
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not hidden_dims:
            raise ValueError("hidden_dims must contain at least one layer size")
        self.profile_dim = profile_dim
        self.output_dim = int(hidden_dims[-1])
        self.mlp = MLP([profile_dim, *hidden_dims], activation="relu", dropout=dropout,
                       final_activation=True, rng=rng)

    def forward(self, profiles: Tensor) -> Tensor:
        if profiles.shape[-1] != self.profile_dim:
            raise ValueError(
                f"expected profile vectors of dim {self.profile_dim}, got {profiles.shape[-1]}"
            )
        return self.mlp(profiles)

    def flops(self) -> int:
        """Per-sample FLOPs of the profile branch."""
        return self.mlp.flops(1)
