"""Behaviour encoding modules (the right branch of Fig. 2).

Each encoder owns the token embedding table, consumes integer behaviour
sequences of shape (B, T) with a validity mask, and produces one vector per
sample.  The paper experiments with an LSTM-based and a BERT-based family
(Sec. V-A3: heavy = 6 layers, light = 3 layers, 15/32 hidden units); the NAS
encoder derived by the budget-limited search lives in
:mod:`repro.models.nas_encoder`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.attention import TransformerEncoder
from repro.nn.layers.basic import Dropout, Embedding, LayerNorm, PositionalEmbedding
from repro.nn.layers.pooling import AttentiveTimePool, MaskedMeanPool
from repro.nn.layers.recurrent import LSTM
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["BehaviorEncoder", "LSTMBehaviorEncoder", "BertBehaviorEncoder"]


class BehaviorEncoder(Module):
    """Base class: maps (sequences, mask) to a (B, embed_dim) representation."""

    def __init__(self, vocab_size: int, embed_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)

    @property
    def output_dim(self) -> int:
        return self.embed_dim

    def embed(self, sequences: np.ndarray) -> Tensor:
        return self.embedding(np.asarray(sequences, dtype=np.int64))

    def forward(self, sequences: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        raise NotImplementedError

    def flops(self, seq_len: int) -> int:
        raise NotImplementedError


class LSTMBehaviorEncoder(BehaviorEncoder):
    """Stacked-LSTM behaviour encoder ("LSTM-based" models in Sec. V)."""

    def __init__(self, vocab_size: int, embed_dim: int = 16, num_layers: int = 6,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(vocab_size, embed_dim, rng=rng)
        self.num_layers = num_layers
        self.lstm = LSTM(embed_dim, embed_dim, num_layers=num_layers, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.pool = MaskedMeanPool()

    def forward(self, sequences: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        embedded = self.dropout(self.embed(sequences))
        outputs, _ = self.lstm(embedded)
        return self.pool(outputs, mask=mask)

    def flops(self, seq_len: int) -> int:
        lookup = seq_len * self.embed_dim
        return lookup + self.lstm.flops(seq_len) + seq_len * self.embed_dim


class BertBehaviorEncoder(BehaviorEncoder):
    """Transformer-encoder behaviour encoder ("BERT-based" models in Sec. V)."""

    def __init__(self, vocab_size: int, embed_dim: int = 16, num_layers: int = 6,
                 num_heads: int = 2, ff_dim: int = 32, max_seq_len: int = 128,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(vocab_size, embed_dim, rng=rng)
        self.num_layers = num_layers
        self.max_seq_len = max_seq_len
        self.positional = PositionalEmbedding(max_seq_len, embed_dim, rng=rng)
        self.input_norm = LayerNorm(embed_dim)
        self.encoder = TransformerEncoder(embed_dim, num_heads, ff_dim, num_layers,
                                          dropout=dropout, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.pool = AttentiveTimePool(embed_dim, rng=rng)

    def forward(self, sequences: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        embedded = self.embed(sequences)
        embedded = self.input_norm(self.positional(embedded))
        encoded = self.encoder(self.dropout(embedded), mask=mask)
        return self.pool(encoded, mask=mask)

    def flops(self, seq_len: int) -> int:
        lookup = 2 * seq_len * self.embed_dim
        return lookup + self.encoder.flops(seq_len) + self.pool.flops(seq_len)
