"""Model configuration dataclasses.

The paper's basic architecture (Fig. 2) has three parts: a profile encoding
module (MLP), a behaviour encoding module (LSTM / BERT / NAS-searched
sequence model) and a prediction module (MLP on the concatenated embeddings).
:class:`ModelConfig` captures every dimension of that family; the
Sec. V-A3 implementation details map onto :func:`heavy_config` and
:func:`light_config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["ModelConfig", "heavy_config", "light_config"]

_ENCODER_TYPES = ("lstm", "bert", "nas", "none")


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of one ALT model instance.

    Attributes:
        profile_dim: number of profile attributes (paper: 69 for A, 104 for B).
        vocab_size: size of the behaviour-event vocabulary.
        max_seq_len: maximal behaviour sequence length (paper: 128).
        embed_dim: channel width of the behaviour representation
            (paper: 15/16 hidden units; must be divisible by ``num_heads``).
        profile_hidden: hidden layer sizes of the profile encoding MLP.
        head_hidden: hidden layer sizes of the prediction MLP.
        encoder_type: "lstm", "bert", "nas" or "none" (profile-only Basic model).
        num_encoder_layers: behaviour encoder depth (heavy: 6, light: 3).
        num_heads: attention heads for the BERT-based encoder.
        ff_dim: intermediate feed-forward width of the BERT-based encoder (paper: 32).
        dropout: dropout probability.
        learning_rate: Adam learning rate (paper: 0.001).
        batch_size: training batch size (paper: 512).
        epochs: training epochs (paper: 5).
    """

    profile_dim: int
    vocab_size: int
    max_seq_len: int
    embed_dim: int = 16
    profile_hidden: Tuple[int, ...] = (32, 16)
    head_hidden: Tuple[int, ...] = (16,)
    encoder_type: str = "lstm"
    num_encoder_layers: int = 6
    num_heads: int = 2
    ff_dim: int = 32
    dropout: float = 0.0
    learning_rate: float = 0.001
    batch_size: int = 512
    epochs: int = 5

    def __post_init__(self) -> None:
        if self.encoder_type not in _ENCODER_TYPES:
            raise ConfigurationError(
                f"encoder_type must be one of {_ENCODER_TYPES}, got {self.encoder_type!r}"
            )
        if self.profile_dim < 1:
            raise ConfigurationError("profile_dim must be >= 1")
        if self.encoder_type != "none":
            if self.vocab_size < 1 or self.max_seq_len < 1:
                raise ConfigurationError("vocab_size and max_seq_len must be >= 1")
            if self.embed_dim % max(self.num_heads, 1) != 0:
                raise ConfigurationError(
                    f"embed_dim {self.embed_dim} must be divisible by num_heads {self.num_heads}"
                )
        if self.num_encoder_layers < 1:
            raise ConfigurationError("num_encoder_layers must be >= 1")

    def with_overrides(self, **kwargs) -> "ModelConfig":
        """Return a copy with some fields replaced (used by the HPO pipeline)."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "profile_dim": self.profile_dim,
            "vocab_size": self.vocab_size,
            "max_seq_len": self.max_seq_len,
            "embed_dim": self.embed_dim,
            "profile_hidden": list(self.profile_hidden),
            "head_hidden": list(self.head_hidden),
            "encoder_type": self.encoder_type,
            "num_encoder_layers": self.num_encoder_layers,
            "num_heads": self.num_heads,
            "ff_dim": self.ff_dim,
            "dropout": self.dropout,
            "learning_rate": self.learning_rate,
            "batch_size": self.batch_size,
            "epochs": self.epochs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModelConfig":
        data = dict(payload)
        data["profile_hidden"] = tuple(data.get("profile_hidden", (32, 16)))
        data["head_hidden"] = tuple(data.get("head_hidden", (16,)))
        return cls(**data)


def heavy_config(profile_dim: int, vocab_size: int, max_seq_len: int,
                 encoder_type: str = "lstm", **overrides) -> ModelConfig:
    """The pre-defined heavy architecture of Sec. V-A3 (6 encoder layers)."""
    config = ModelConfig(
        profile_dim=profile_dim,
        vocab_size=vocab_size,
        max_seq_len=max_seq_len,
        encoder_type=encoder_type,
        num_encoder_layers=6,
    )
    return config.with_overrides(**overrides) if overrides else config


def light_config(profile_dim: int, vocab_size: int, max_seq_len: int,
                 encoder_type: str = "lstm", **overrides) -> ModelConfig:
    """The pre-defined light architecture of Sec. V-A3 (3 encoder layers)."""
    config = ModelConfig(
        profile_dim=profile_dim,
        vocab_size=vocab_size,
        max_seq_len=max_seq_len,
        encoder_type=encoder_type,
        num_encoder_layers=3,
    )
    return config.with_overrides(**overrides) if overrides else config
