"""The ALT model family (Fig. 2): profile encoder + behaviour encoder + head."""

from repro.models.base_model import ALTModel, BasicProfileModel
from repro.models.behavior_encoders import BehaviorEncoder, BertBehaviorEncoder, LSTMBehaviorEncoder
from repro.models.config import ModelConfig, heavy_config, light_config
from repro.models.factory import build_basic_model, build_model, build_nas_model
from repro.models.nas_encoder import NASBehaviorEncoder
from repro.models.profile_encoder import ProfileEncoder

__all__ = [
    "ModelConfig",
    "heavy_config",
    "light_config",
    "ProfileEncoder",
    "BehaviorEncoder",
    "LSTMBehaviorEncoder",
    "BertBehaviorEncoder",
    "NASBehaviorEncoder",
    "ALTModel",
    "BasicProfileModel",
    "build_model",
    "build_basic_model",
    "build_nas_model",
]
