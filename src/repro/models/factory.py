"""Model factories: build the Fig. 2 model family from a :class:`ModelConfig`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base_model import ALTModel, BasicProfileModel
from repro.models.behavior_encoders import BertBehaviorEncoder, LSTMBehaviorEncoder
from repro.models.config import ModelConfig
from repro.models.nas_encoder import NASBehaviorEncoder
from repro.models.profile_encoder import ProfileEncoder
from repro.nas.genotype import Genotype
from repro.utils.rng import new_rng

__all__ = ["build_model", "build_basic_model", "build_nas_model"]


def _build_profile_encoder(config: ModelConfig, rng: np.random.Generator) -> ProfileEncoder:
    return ProfileEncoder(config.profile_dim, hidden_dims=config.profile_hidden,
                          dropout=config.dropout, rng=rng)


def build_model(config: ModelConfig, rng: Optional[np.random.Generator] = None,
                seed: int = 0) -> ALTModel:
    """Build an ALT model (profile + behaviour encoder + head) from a config.

    ``config.encoder_type`` selects the behaviour branch: ``"lstm"`` or
    ``"bert"``; for NAS-searched encoders use :func:`build_nas_model` which
    additionally needs the genotype.
    """
    rng = rng if rng is not None else new_rng(seed)
    profile_encoder = _build_profile_encoder(config, rng)
    if config.encoder_type == "lstm":
        behavior = LSTMBehaviorEncoder(
            vocab_size=config.vocab_size,
            embed_dim=config.embed_dim,
            num_layers=config.num_encoder_layers,
            dropout=config.dropout,
            rng=rng,
        )
    elif config.encoder_type == "bert":
        behavior = BertBehaviorEncoder(
            vocab_size=config.vocab_size,
            embed_dim=config.embed_dim,
            num_layers=config.num_encoder_layers,
            num_heads=config.num_heads,
            ff_dim=config.ff_dim,
            max_seq_len=config.max_seq_len,
            dropout=config.dropout,
            rng=rng,
        )
    elif config.encoder_type == "none":
        raise ConfigurationError("encoder_type 'none' builds a BasicProfileModel; use build_basic_model")
    else:
        raise ConfigurationError(
            f"build_model handles 'lstm'/'bert'; got {config.encoder_type!r} (use build_nas_model)"
        )
    return ALTModel(profile_encoder, behavior, head_hidden=config.head_hidden,
                    dropout=config.dropout, rng=rng)


def build_basic_model(config: ModelConfig, rng: Optional[np.random.Generator] = None,
                      seed: int = 0) -> BasicProfileModel:
    """Build the profile-only Basic baseline (Fig. 10 / Table VII)."""
    rng = rng if rng is not None else new_rng(seed)
    profile_encoder = _build_profile_encoder(config, rng)
    return BasicProfileModel(profile_encoder, head_hidden=config.head_hidden,
                             dropout=config.dropout, rng=rng)


def build_nas_model(config: ModelConfig, genotype: Genotype,
                    rng: Optional[np.random.Generator] = None, seed: int = 0) -> ALTModel:
    """Build an ALT model whose behaviour encoder follows a searched genotype."""
    rng = rng if rng is not None else new_rng(seed)
    profile_encoder = _build_profile_encoder(config, rng)
    behavior = NASBehaviorEncoder(genotype, vocab_size=config.vocab_size,
                                  embed_dim=config.embed_dim, rng=rng)
    return ALTModel(profile_encoder, behavior, head_hidden=config.head_hidden,
                    dropout=config.dropout, rng=rng)
