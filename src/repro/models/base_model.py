"""The ALT model family: profile branch + behaviour branch + prediction head (Fig. 2)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.data import Batch
from repro.nn.layers.basic import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.models.behavior_encoders import BehaviorEncoder
from repro.models.profile_encoder import ProfileEncoder

__all__ = ["ALTModel", "BasicProfileModel"]


class ALTModel(Module):
    """Profile encoder + behaviour encoder + prediction MLP, producing one logit.

    This is the shared skeleton of every compared model in Sec. V (SinH / MeH /
    MeL / Ours); only the behaviour encoder differs between the heavy,
    pre-defined light and NAS-searched variants.
    """

    def __init__(self, profile_encoder: ProfileEncoder, behavior_encoder: BehaviorEncoder,
                 head_hidden: tuple = (16,), dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.profile_encoder = profile_encoder
        self.behavior_encoder = behavior_encoder
        joint_dim = profile_encoder.output_dim + behavior_encoder.output_dim
        self.head = MLP([joint_dim, *head_hidden, 1], activation="relu", dropout=dropout, rng=rng)

    def forward(self, batch: Batch) -> Tensor:
        profile_vec = self.profile_encoder(Tensor(batch.profiles))
        behavior_vec = self.behavior_encoder(batch.sequences, mask=batch.mask)
        joint = concatenate([profile_vec, behavior_vec], axis=1)
        logits = self.head(joint)
        return logits.reshape(len(batch))

    def predict_logits(self, batch: Batch) -> np.ndarray:
        """Inference-mode logits as a numpy array (no autograd graph)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                logits = self.forward(batch)
        finally:
            self.train(was_training)
        return logits.numpy().copy()

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Inference-mode default/click probabilities."""
        logits = self.predict_logits(batch)
        return 1.0 / (1.0 + np.exp(-logits))

    def flops(self, seq_len: int) -> int:
        """Analytical per-sample inference FLOPs (the budget quantity of Eq. 4)."""
        profile = self.profile_encoder.flops()
        behavior = self.behavior_encoder.flops(seq_len)
        head = self.head.flops(1)
        return int(profile + behavior + head)


class BasicProfileModel(Module):
    """Profile-only baseline ("Basic" in Fig. 10 / Table VII): no behaviour sequence."""

    def __init__(self, profile_encoder: ProfileEncoder, head_hidden: tuple = (16,),
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.profile_encoder = profile_encoder
        self.head = MLP([profile_encoder.output_dim, *head_hidden, 1],
                        activation="relu", dropout=dropout, rng=rng)

    def forward(self, batch: Batch) -> Tensor:
        profile_vec = self.profile_encoder(Tensor(batch.profiles))
        logits = self.head(profile_vec)
        return logits.reshape(len(batch))

    def predict_logits(self, batch: Batch) -> np.ndarray:
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                logits = self.forward(batch)
        finally:
            self.train(was_training)
        return logits.numpy().copy()

    def predict_proba(self, batch: Batch) -> np.ndarray:
        logits = self.predict_logits(batch)
        return 1.0 / (1.0 + np.exp(-logits))

    def flops(self, seq_len: int = 0) -> int:
        return int(self.profile_encoder.flops() + self.head.flops(1))
