"""Behaviour encoder built from a discrete NAS genotype (the searched light model)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.behavior_encoders import BehaviorEncoder
from repro.nas.genotype import Genotype
from repro.nas.operations import build_operation
from repro.nn.layers.pooling import AttentiveLayerSum
from repro.nn.module import ModuleList
from repro.nn.tensor import Tensor

__all__ = ["NASBehaviorEncoder"]


class NASBehaviorEncoder(BehaviorEncoder):
    """Instantiate the architecture described by a :class:`Genotype` (Fig. 9).

    Layer wiring follows the genotype: each layer reads one previous output
    (index 0 = embedded input sequence), applies its operation and adds the
    selected residual connections.  The final representation is the attentive
    sum of all layer outputs, mean-pooled over valid time steps.
    """

    def __init__(self, genotype: Genotype, vocab_size: int, embed_dim: int = 16,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(vocab_size, embed_dim, rng=rng)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.genotype = genotype
        self.ops = ModuleList([
            build_operation(gene.operation, embed_dim, rng=rng) for gene in genotype.layers
        ])
        self.output_pool = AttentiveLayerSum(embed_dim, genotype.num_layers, rng=rng)

    def forward(self, sequences: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        embedded = self.embed(sequences)
        outputs: List[Tensor] = [embedded]
        layer_outputs: List[Tensor] = []
        for gene, op in zip(self.genotype.layers, self.ops):
            layer_input = outputs[gene.input_index]
            out = op(layer_input, mask=mask)
            for residual in gene.residual_indices:
                out = out + outputs[residual]
            outputs.append(out)
            layer_outputs.append(out)
        return self.output_pool(layer_outputs, mask=mask)

    def flops(self, seq_len: int) -> int:
        lookup = seq_len * self.embed_dim
        return lookup + self.genotype.flops(seq_len, self.embed_dim)
