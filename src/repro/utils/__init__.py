"""Shared utilities: deterministic RNG handling, timing and serialization."""

from repro.utils.rng import child_rng, new_rng, spawn_rngs
from repro.utils.serialization import load_json, load_state, save_json, save_state
from repro.utils.timer import Timer, timed

__all__ = [
    "new_rng",
    "child_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "save_state",
    "load_state",
    "save_json",
    "load_json",
]
