"""Deterministic random-number-generator helpers.

Every stochastic component in the reproduction (dataset generation, weight
initialisation, HPO/NAS sampling, meta-learning splits) takes an explicit
``numpy.random.Generator``.  These helpers create and derive such generators
reproducibly so entire benchmark tables are deterministic given one seed.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Union

import numpy as np

__all__ = ["new_rng", "child_rng", "spawn_rngs"]

SeedLike = Optional[Union[int, np.random.Generator]]


def new_rng(seed: SeedLike = 0) -> np.random.Generator:
    """Return a Generator from a seed, passing through existing generators."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator, tag: Union[int, str]) -> np.random.Generator:
    """Derive a named child generator (stable for a given parent state and tag).

    String tags are hashed with CRC32 (not Python's ``hash``) so the derived
    seed is identical across processes regardless of ``PYTHONHASHSEED``.
    """
    if isinstance(tag, str):
        tag = zlib.crc32(tag.encode("utf-8")) % (2 ** 31)
    seed = int(rng.integers(0, 2 ** 31 - 1)) ^ int(tag)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators from one seed."""
    base = new_rng(seed)
    seeds = base.integers(0, 2 ** 31 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
