"""Wall-clock timing helpers used for inference-latency reporting (Table V)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulate named wall-clock durations.

    Example::

        timer = Timer()
        with timer.measure("inference"):
            model(batch)
        timer.mean_ms("inference")
    """

    records: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.records.setdefault(name, []).append(elapsed)

    def total(self, name: str) -> float:
        return float(sum(self.records.get(name, [])))

    def count(self, name: str) -> int:
        return len(self.records.get(name, []))

    def mean(self, name: str) -> float:
        values = self.records.get(name, [])
        return float(sum(values) / len(values)) if values else 0.0

    def mean_ms(self, name: str) -> float:
        return self.mean(name) * 1000.0

    def reset(self) -> None:
        self.records.clear()


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager yielding a single-element list that receives the elapsed seconds."""
    holder: List[float] = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
