"""Model and study state persistence.

The model-serving module stores scenario specific light models on disk so that
deployment survives process restarts.  States are a flat ``name -> ndarray``
mapping (see :meth:`repro.nn.Module.state_dict`) and are saved as ``.npz``
archives plus a small JSON manifest.

:func:`save_json`/:func:`load_json` are the generic JSON layer underneath
study checkpoints (:meth:`repro.automl.study.Study.save_checkpoint`): writes
are atomic (tmp file + ``os.replace``) so a crash mid-checkpoint never leaves
a truncated file behind, and numpy scalars/arrays are coerced to plain Python
types so sampled hyper-parameters serialise without special-casing callers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["save_state", "load_state", "save_json", "load_json", "json_default"]

PathLike = Union[str, Path]


def json_default(obj: object) -> object:
    """Coerce numpy scalars and arrays to JSON-native Python values.

    Pass as ``json.dumps(..., default=json_default)`` anywhere sampled
    hyper-parameters or RNG states may carry numpy types (file checkpoints
    and the SQLite study store share this coercion).
    """
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON serialisable")


def save_json(path: PathLike, payload: Dict[str, object]) -> Path:
    """Atomically write ``payload`` as pretty-printed JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    tmp_path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=json_default))
    os.replace(tmp_path, path)
    return path


def load_json(path: PathLike) -> Dict[str, object]:
    """Load a JSON payload previously written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_state(path: PathLike, state: Dict[str, np.ndarray],
               metadata: Optional[Dict[str, object]] = None) -> Path:
    """Save a state dict (and optional JSON-serialisable metadata) to ``path``.

    ``path`` may omit the ``.npz`` suffix; the metadata is written next to it
    as ``<path>.meta.json``.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})
    if metadata is not None:
        meta_path = path.with_suffix(".meta.json")
        meta_path.write_text(json.dumps(metadata, indent=2, sort_keys=True))
    return path


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state`."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def load_metadata(path: PathLike) -> Dict[str, object]:
    """Load the JSON metadata stored next to a state archive (empty if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".meta.json")
    if not meta_path.exists():
        return {}
    return json.loads(meta_path.read_text())
