"""Synthetic replica of Dataset A (risk control across 18 banks, Table I).

The paper's Dataset A has 18 participants with a heavily skewed sample-size
distribution (from ~1.2M down to ~20K samples), 69 profile attributes and
behaviour sequences of maximal length 128.  The replica keeps the schema and
the *relative* size skew while scaling absolute sizes down so the pure-numpy
substrate can train every compared strategy in minutes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data.synthetic import ScenarioCollection, ScenarioSpec, SyntheticWorld, WorldConfig
from repro.utils.rng import new_rng

__all__ = ["DATASET_A_SIZES", "DATASET_A_PROFILE_DIM", "make_dataset_a", "scaled_sizes"]

# Per-scenario sample counts from Table I of the paper.
DATASET_A_SIZES: List[int] = [
    1202739, 930438, 890908, 875692, 530441, 242858, 93892, 88084, 84466,
    69647, 62134, 61869, 61214, 51506, 47219, 46596, 28643, 19973,
]

DATASET_A_PROFILE_DIM = 69
DATASET_A_SEQ_LEN = 128
DATASET_A_VOCAB = 60


def scaled_sizes(original_sizes: List[int], scale: float, min_size: int, max_size: int) -> List[int]:
    """Scale the paper's sample counts into a tractable range, preserving the skew order."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if min_size < 2:
        raise ValueError("min_size must be >= 2")
    return [int(np.clip(round(size * scale), min_size, max_size)) for size in original_sizes]


def make_dataset_a(scale: float = 3e-4, min_size: int = 80, max_size: int = 600,
                   seq_len: int = DATASET_A_SEQ_LEN, profile_dim: int = DATASET_A_PROFILE_DIM,
                   vocab_size: int = DATASET_A_VOCAB, seed: int = 7,
                   rng: Optional[np.random.Generator] = None) -> ScenarioCollection:
    """Generate the Dataset A replica.

    Args:
        scale: multiplier applied to the Table I sample counts.
        min_size / max_size: clamp for per-scenario sample counts.
        seq_len: behaviour sequence length (paper: 128; benchmarks use 16).
        profile_dim: number of profile attributes (paper: 69).
        vocab_size: behaviour-event vocabulary size.
        seed: world seed (controls the shared structure across scenarios).
    """
    config = WorldConfig(profile_dim=profile_dim, vocab_size=vocab_size, seq_len=seq_len)
    world = SyntheticWorld(config, seed=seed)
    rng = new_rng(rng if rng is not None else seed)
    sizes = scaled_sizes(DATASET_A_SIZES, scale, min_size, max_size)
    scenarios = []
    for index, size in enumerate(sizes, start=1):
        base_rate = float(rng.normal(-0.3, 0.3))
        spec = ScenarioSpec(
            scenario_id=index,
            name=f"bank-{index:02d}",
            size=size,
            base_rate_logit=base_rate,
            shift_seed=seed,
        )
        scenarios.append(world.generate(spec, rng=new_rng(seed * 1000 + index)))
    return ScenarioCollection(world, scenarios)
