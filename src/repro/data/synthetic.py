"""Synthetic long-tail scenario generator.

The paper's datasets are proprietary (risk control across 18 banks,
advertising across 32 scenarios).  This module builds a controllable
replacement that preserves the three properties the paper's conclusions rest
on:

1. **Shared cross-scenario structure** — one global "world model" maps profile
   features and behaviour sequences to the label, so pooling data across
   scenarios (the scenario agnostic heavy model) genuinely helps.
2. **Scenario-specific shift** — every scenario perturbs the global weights
   and shifts its user distribution, so a fine-tuned scenario specific model
   beats the unified model.
3. **Sequence signal** — part of the label depends on token transition
   patterns that a profile-only model cannot express, so behaviour encoders
   (LSTM / BERT / searched) add real value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.data import ArrayDataset, train_test_split
from repro.utils.rng import new_rng

__all__ = ["WorldConfig", "ScenarioSpec", "ScenarioData", "SyntheticWorld", "ScenarioCollection"]


@dataclass(frozen=True)
class WorldConfig:
    """Global parameters of the synthetic world.

    Attributes:
        profile_dim: number of profile attributes (paper: 69 for A, 104 for B).
        vocab_size: number of distinct behaviour events.
        seq_len: behaviour sequence length (paper: up to 128).
        token_dim: latent dimensionality of the event effects.
        profile_weight_scale: strength of the global profile signal.
        sequence_weight_scale: strength of the global sequence (bag + transition) signal.
        scenario_shift_scale: strength of per-scenario weight perturbations.
        noise_scale: label noise (logit-space Gaussian).
        min_seq_len: minimum generated sequence length (shorter sequences are padded).
    """

    profile_dim: int = 69
    vocab_size: int = 50
    seq_len: int = 128
    token_dim: int = 8
    profile_weight_scale: float = 1.2
    sequence_weight_scale: float = 1.0
    scenario_shift_scale: float = 0.35
    noise_scale: float = 0.4
    min_seq_len: int = 4


@dataclass(frozen=True)
class ScenarioSpec:
    """Description of one long-tail scenario.

    Attributes:
        scenario_id: 1-based identifier (matching the paper's table rows).
        name: human readable name.
        size: number of samples to generate.
        base_rate_logit: scenario-specific intercept (controls the positive rate).
        shift_seed: seed controlling this scenario's perturbation of the world.
    """

    scenario_id: int
    name: str
    size: int
    base_rate_logit: float = 0.0
    shift_seed: int = 0


@dataclass
class ScenarioData:
    """All samples of one scenario, plus its train/test split."""

    spec: ScenarioSpec
    train: ArrayDataset
    test: ArrayDataset

    @property
    def scenario_id(self) -> int:
        return self.spec.scenario_id

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def total_size(self) -> int:
        return len(self.train) + len(self.test)


class SyntheticWorld:
    """The global generative model shared by every scenario."""

    def __init__(self, config: Optional[WorldConfig] = None, seed: int = 0) -> None:
        self.config = config or WorldConfig()
        self._rng = new_rng(seed)
        cfg = self.config
        # Global structure shared across scenarios.
        self.profile_weights = self._rng.normal(0.0, 1.0, size=cfg.profile_dim)
        self.profile_weights *= cfg.profile_weight_scale / np.sqrt(cfg.profile_dim)
        # Per-event effects are O(1) so the bag-of-events part of the logit has
        # a magnitude comparable to the profile part even for short sequences.
        self.token_effects = self._rng.normal(0.0, 1.0, size=cfg.vocab_size)
        self.token_effects *= cfg.sequence_weight_scale
        # Low-rank transition effects: the part of the signal only a sequence
        # model can capture (depends on adjacent token pairs).
        low_rank = self._rng.normal(0.0, 1.0, size=(cfg.vocab_size, cfg.token_dim))
        self.transition_effects = (low_rank @ low_rank.T) / np.sqrt(cfg.token_dim)
        self.transition_effects *= cfg.sequence_weight_scale
        # Profile/behaviour interaction used by the scenario shift.
        self.interaction_weights = self._rng.normal(0.0, 0.5 / np.sqrt(cfg.profile_dim),
                                                    size=cfg.profile_dim)

    # ------------------------------------------------------------------ #
    # Scenario-level perturbations
    # ------------------------------------------------------------------ #
    def _scenario_params(self, spec: ScenarioSpec) -> Dict[str, np.ndarray]:
        cfg = self.config
        rng = new_rng(10_000 + spec.shift_seed * 97 + spec.scenario_id)
        return {
            "profile_shift": rng.normal(0.0, 0.25, size=cfg.profile_dim),
            "profile_delta": rng.normal(0.0, cfg.scenario_shift_scale / np.sqrt(cfg.profile_dim),
                                        size=cfg.profile_dim),
            "token_delta": rng.normal(0.0, cfg.scenario_shift_scale / np.sqrt(cfg.vocab_size),
                                      size=cfg.vocab_size),
            "token_preference": rng.dirichlet(np.ones(cfg.vocab_size) * 2.0),
        }

    # ------------------------------------------------------------------ #
    # Sample generation
    # ------------------------------------------------------------------ #
    def generate(self, spec: ScenarioSpec, test_fraction: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> ScenarioData:
        """Generate one scenario's samples and split them into train/test."""
        cfg = self.config
        rng = new_rng(rng if rng is not None else 20_000 + spec.scenario_id)
        params = self._scenario_params(spec)

        profiles = rng.normal(0.0, 1.0, size=(spec.size, cfg.profile_dim)) + params["profile_shift"]
        lengths = rng.integers(cfg.min_seq_len, cfg.seq_len + 1, size=spec.size)
        sequences = np.zeros((spec.size, cfg.seq_len), dtype=np.int64)
        mask = np.zeros((spec.size, cfg.seq_len), dtype=np.float64)
        for i, length in enumerate(lengths):
            tokens = rng.choice(cfg.vocab_size, size=length, p=params["token_preference"])
            sequences[i, :length] = tokens
            mask[i, :length] = 1.0

        logits = self._label_logits(profiles, sequences, mask, params, spec)
        noise = rng.normal(0.0, cfg.noise_scale, size=spec.size)
        probabilities = 1.0 / (1.0 + np.exp(-(logits + noise)))
        labels = (rng.random(spec.size) < probabilities).astype(np.float64)

        dataset = ArrayDataset(profiles, sequences, mask, labels)
        train, test = train_test_split(dataset, test_fraction=test_fraction, rng=rng)
        return ScenarioData(spec=spec, train=train, test=test)

    def true_click_probabilities(self, dataset: ArrayDataset, spec: ScenarioSpec) -> np.ndarray:
        """Ground-truth positive probabilities (used by the online simulator)."""
        params = self._scenario_params(spec)
        logits = self._label_logits(dataset.profiles, dataset.sequences, dataset.mask, params, spec)
        return 1.0 / (1.0 + np.exp(-logits))

    def _label_logits(self, profiles: np.ndarray, sequences: np.ndarray, mask: np.ndarray,
                      params: Dict[str, np.ndarray], spec: ScenarioSpec) -> np.ndarray:
        counts = mask.sum(axis=1)
        safe_counts = np.maximum(counts, 1.0)
        # Bag-of-events signal (global + scenario delta): mean event effect,
        # normalised by sqrt(length) so short and long sequences carry a
        # comparable amount of signal.
        token_scores = (self.token_effects + params["token_delta"])[sequences] * mask
        bag_part = token_scores.sum(axis=1) / np.sqrt(safe_counts)
        # Transition (order-sensitive) signal.
        left = sequences[:, :-1]
        right = sequences[:, 1:]
        pair_mask = mask[:, :-1] * mask[:, 1:]
        transition_part = (self.transition_effects[left, right] * pair_mask).sum(axis=1)
        transition_part /= np.sqrt(np.maximum(pair_mask.sum(axis=1), 1.0))
        # Profile signal (global + scenario delta) and a mild interaction term.
        profile_part = profiles @ (self.profile_weights + params["profile_delta"])
        interaction = (profiles @ self.interaction_weights) * bag_part * 0.3
        return (profile_part + bag_part + 0.8 * transition_part
                + interaction + spec.base_rate_logit)


class ScenarioCollection:
    """A set of scenarios with helpers for pooling and selecting initial scenarios."""

    def __init__(self, world: SyntheticWorld, scenarios: Sequence[ScenarioData]) -> None:
        if not scenarios:
            raise ValueError("collection must contain at least one scenario")
        self.world = world
        self._scenarios: Dict[int, ScenarioData] = {s.scenario_id: s for s in scenarios}

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self):
        return iter(sorted(self._scenarios.values(), key=lambda s: s.scenario_id))

    def ids(self) -> List[int]:
        return sorted(self._scenarios.keys())

    def get(self, scenario_id: int) -> ScenarioData:
        if scenario_id not in self._scenarios:
            raise KeyError(f"unknown scenario id {scenario_id}")
        return self._scenarios[scenario_id]

    def sizes(self) -> Dict[int, int]:
        return {sid: self.get(sid).total_size for sid in self.ids()}

    # ------------------------------------------------------------------ #
    # Pooling / initial-scenario selection
    # ------------------------------------------------------------------ #
    def select_initial(self, count: int, rng: Optional[np.random.Generator] = None) -> List[int]:
        """Randomly choose ``count`` initial scenarios (Sec. V-A1: 8 by default)."""
        rng = new_rng(rng if rng is not None else 0)
        ids = self.ids()
        count = min(count, len(ids))
        chosen = rng.choice(ids, size=count, replace=False)
        return sorted(int(c) for c in chosen)

    def pooled_train(self, scenario_ids: Optional[Sequence[int]] = None) -> ArrayDataset:
        """Concatenate the train splits of the given scenarios (default: all)."""
        ids = list(scenario_ids) if scenario_ids is not None else self.ids()
        parts = [self.get(sid).train for sid in ids]
        return ArrayDataset(
            np.concatenate([p.profiles for p in parts]),
            np.concatenate([p.sequences for p in parts]),
            np.concatenate([p.mask for p in parts]),
            np.concatenate([p.labels for p in parts]),
        )

    def pooled_test(self, scenario_ids: Optional[Sequence[int]] = None) -> ArrayDataset:
        """Concatenate the test splits of the given scenarios (default: all)."""
        ids = list(scenario_ids) if scenario_ids is not None else self.ids()
        parts = [self.get(sid).test for sid in ids]
        return ArrayDataset(
            np.concatenate([p.profiles for p in parts]),
            np.concatenate([p.sequences for p in parts]),
            np.concatenate([p.mask for p in parts]),
            np.concatenate([p.labels for p in parts]),
        )
