"""Synthetic replica of Dataset B (advertising across 32 scenarios, Table II).

Dataset B has 32 advertisers, 104 profile attributes and behaviour sequences
of maximal length 128; the tail scenarios are extremely small (a few hundred
samples).  As for Dataset A the replica preserves the schema and the size
skew at a tractable scale.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data.dataset_a import scaled_sizes
from repro.data.synthetic import ScenarioCollection, ScenarioSpec, SyntheticWorld, WorldConfig
from repro.utils.rng import new_rng

__all__ = ["DATASET_B_SIZES", "DATASET_B_PROFILE_DIM", "make_dataset_b"]

# Per-scenario sample counts from Table II of the paper.
DATASET_B_SIZES: List[int] = [
    221003, 139043, 122863, 113160, 103506, 102792, 97333, 91394, 79890, 60877,
    60731, 54548, 45570, 43615, 32893, 30505, 26861, 22340, 17256, 16294,
    13108, 12143, 7677, 4825, 4321, 3430, 2870, 1574, 976, 493,
    # Table II lists 30 explicit sizes; the task has 32 scenarios — the two
    # remaining (smallest) scenarios are extrapolated from the tail.
    380, 290,
]

DATASET_B_PROFILE_DIM = 104
DATASET_B_SEQ_LEN = 128
DATASET_B_VOCAB = 80


def make_dataset_b(scale: float = 1.2e-3, min_size: int = 70, max_size: int = 500,
                   seq_len: int = DATASET_B_SEQ_LEN, profile_dim: int = DATASET_B_PROFILE_DIM,
                   vocab_size: int = DATASET_B_VOCAB, seed: int = 11,
                   rng: Optional[np.random.Generator] = None) -> ScenarioCollection:
    """Generate the Dataset B replica (advertising: pick proper potential users)."""
    config = WorldConfig(profile_dim=profile_dim, vocab_size=vocab_size, seq_len=seq_len,
                         scenario_shift_scale=0.4)
    world = SyntheticWorld(config, seed=seed)
    rng = new_rng(rng if rng is not None else seed)
    sizes = scaled_sizes(DATASET_B_SIZES, scale, min_size, max_size)
    scenarios = []
    for index, size in enumerate(sizes, start=1):
        base_rate = float(rng.normal(0.1, 0.3))
        spec = ScenarioSpec(
            scenario_id=index,
            name=f"advertiser-{index:02d}",
            size=size,
            base_rate_logit=base_rate,
            shift_seed=seed,
        )
        scenarios.append(world.generate(spec, rng=new_rng(seed * 1000 + index)))
    return ScenarioCollection(world, scenarios)
