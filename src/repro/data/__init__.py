"""Synthetic datasets: Dataset A/B replicas and the online recommendation stream."""

from repro.data.dataset_a import DATASET_A_PROFILE_DIM, DATASET_A_SIZES, make_dataset_a, scaled_sizes
from repro.data.dataset_b import DATASET_B_PROFILE_DIM, DATASET_B_SIZES, make_dataset_b
from repro.data.online import (
    DayResult,
    OnlineConfig,
    OnlineExperiment,
    make_online_collection,
)
from repro.data.synthetic import (
    ScenarioCollection,
    ScenarioData,
    ScenarioSpec,
    SyntheticWorld,
    WorldConfig,
)

__all__ = [
    "WorldConfig",
    "ScenarioSpec",
    "ScenarioData",
    "SyntheticWorld",
    "ScenarioCollection",
    "DATASET_A_SIZES",
    "DATASET_A_PROFILE_DIM",
    "DATASET_B_SIZES",
    "DATASET_B_PROFILE_DIM",
    "make_dataset_a",
    "make_dataset_b",
    "scaled_sizes",
    "OnlineConfig",
    "OnlineExperiment",
    "DayResult",
    "make_online_collection",
]
