"""Simulated online recommendation experiment (Sec. V-C, Fig. 11).

The paper deploys ALT on a recommendation task with 34 scenarios and reports
the relative CTR improvement over a 7-day observation window against a
per-scenario fine-tuned baseline.  Offline we model the mechanism that links
model quality to CTR: each day every scenario receives a pool of candidate
impressions; a model scores them and the platform serves the top fraction;
the realised CTR is the mean ground-truth click probability of the served
impressions.  A model with better ranking quality therefore achieves a higher
realised CTR — the same causal pathway an online A/B test measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.synthetic import ScenarioCollection, ScenarioSpec, SyntheticWorld, WorldConfig
from repro.nn.data import ArrayDataset
from repro.utils.rng import new_rng

__all__ = ["OnlineConfig", "DayResult", "OnlineExperiment", "make_online_collection"]

ScoreFn = Callable[[int, ArrayDataset], np.ndarray]
"""A policy: (scenario_id, candidate impressions) -> scores (higher = served first)."""

ONLINE_NUM_SCENARIOS = 34
ONLINE_PROFILE_DIM = 48
ONLINE_SEQ_LEN = 128
ONLINE_VOCAB = 60


def make_online_collection(num_scenarios: int = ONLINE_NUM_SCENARIOS, samples_per_scenario: int = 150,
                           seq_len: int = ONLINE_SEQ_LEN, profile_dim: int = ONLINE_PROFILE_DIM,
                           vocab_size: int = ONLINE_VOCAB, seed: int = 23) -> ScenarioCollection:
    """Historical training data for the 34 online recommendation scenarios."""
    config = WorldConfig(profile_dim=profile_dim, vocab_size=vocab_size, seq_len=seq_len,
                         scenario_shift_scale=0.45)
    world = SyntheticWorld(config, seed=seed)
    rng = new_rng(seed)
    scenarios = []
    for index in range(1, num_scenarios + 1):
        size = int(rng.integers(samples_per_scenario // 2, samples_per_scenario * 2))
        spec = ScenarioSpec(
            scenario_id=index,
            name=f"surface-{index:02d}",
            size=size,
            base_rate_logit=float(rng.normal(-0.2, 0.3)),
            shift_seed=seed,
        )
        scenarios.append(world.generate(spec, rng=new_rng(seed * 1000 + index)))
    return ScenarioCollection(world, scenarios)


@dataclass(frozen=True)
class OnlineConfig:
    """Parameters of the simulated A/B window.

    Attributes:
        num_days: length of the observation period (paper: 7).
        impressions_per_day: candidate impressions per scenario per day.
        serve_fraction: fraction of candidates actually served (top-scored).
        seed: stream seed.
    """

    num_days: int = 7
    impressions_per_day: int = 120
    serve_fraction: float = 0.3
    seed: int = 31


@dataclass
class DayResult:
    """Realised CTR of every strategy for one day."""

    day: int
    ctr_by_strategy: Dict[str, float] = field(default_factory=dict)

    def relative_improvement(self, strategy: str, baseline: str) -> float:
        base = self.ctr_by_strategy[baseline]
        return 100.0 * (self.ctr_by_strategy[strategy] - base) / max(base, 1e-9)


class OnlineExperiment:
    """Replay a multi-day impression stream and measure realised CTR per policy."""

    def __init__(self, collection: ScenarioCollection, config: Optional[OnlineConfig] = None) -> None:
        self.collection = collection
        self.config = config or OnlineConfig()

    # ------------------------------------------------------------------ #
    # Stream generation
    # ------------------------------------------------------------------ #
    def _candidates_for_day(self, spec: ScenarioSpec, day: int) -> ArrayDataset:
        cfg = self.config
        day_spec = ScenarioSpec(
            scenario_id=spec.scenario_id,
            name=spec.name,
            size=cfg.impressions_per_day,
            base_rate_logit=spec.base_rate_logit,
            shift_seed=spec.shift_seed,
        )
        rng = new_rng(cfg.seed * 10_000 + day * 100 + spec.scenario_id)
        generated = self.collection.world.generate(day_spec, test_fraction=0.5, rng=rng)
        # Use all generated impressions as candidates for the day.
        return ArrayDataset(
            np.concatenate([generated.train.profiles, generated.test.profiles]),
            np.concatenate([generated.train.sequences, generated.test.sequences]),
            np.concatenate([generated.train.mask, generated.test.mask]),
            np.concatenate([generated.train.labels, generated.test.labels]),
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def run(self, policies: Dict[str, ScoreFn]) -> List[DayResult]:
        """Replay the window for every policy and return per-day realised CTRs."""
        if not policies:
            raise ValueError("at least one policy is required")
        cfg = self.config
        results: List[DayResult] = []
        for day in range(1, cfg.num_days + 1):
            totals = {name: [] for name in policies}
            for scenario in self.collection:
                candidates = self._candidates_for_day(scenario.spec, day)
                true_probs = self.collection.world.true_click_probabilities(candidates, scenario.spec)
                n_serve = max(1, int(round(len(candidates) * cfg.serve_fraction)))
                for name, policy in policies.items():
                    scores = np.asarray(policy(scenario.scenario_id, candidates), dtype=np.float64)
                    if scores.shape != (len(candidates),):
                        raise ValueError(
                            f"policy {name!r} returned scores of shape {scores.shape}, "
                            f"expected ({len(candidates)},)"
                        )
                    served = np.argsort(-scores)[:n_serve]
                    totals[name].append(float(true_probs[served].mean()))
            results.append(DayResult(
                day=day,
                ctr_by_strategy={name: float(np.mean(values)) for name, values in totals.items()},
            ))
        return results

    @staticmethod
    def average_relative_improvement(results: Sequence[DayResult], strategy: str,
                                     baseline: str) -> float:
        """Mean relative CTR improvement (%) of ``strategy`` over ``baseline``."""
        return float(np.mean([day.relative_improvement(strategy, baseline) for day in results]))
