"""Neural architecture search: the budget-limited GDAS search and an evolutionary baseline."""

from repro.nas.evolutionary import EvolutionConfig, EvolutionResult, EvolutionaryNAS
from repro.nas.genotype import Genotype, LayerGene, chain_genotype
from repro.nas.operations import (
    DEFAULT_CANDIDATES,
    available_operations,
    build_operation,
    operation_flops,
)
from repro.nas.search import PAPER_CANDIDATES, BudgetLimitedNAS, NASConfig, NASResult, SupernetLightModel
from repro.nas.search_space import SequenceSearchSpace
from repro.nas.supernet import ChoiceBlock, MixedOp, SequenceSuperNet, gumbel_softmax_probs

__all__ = [
    "Genotype",
    "LayerGene",
    "chain_genotype",
    "DEFAULT_CANDIDATES",
    "PAPER_CANDIDATES",
    "available_operations",
    "build_operation",
    "operation_flops",
    "SequenceSearchSpace",
    "SequenceSuperNet",
    "MixedOp",
    "ChoiceBlock",
    "gumbel_softmax_probs",
    "BudgetLimitedNAS",
    "NASConfig",
    "NASResult",
    "SupernetLightModel",
    "EvolutionaryNAS",
    "EvolutionConfig",
    "EvolutionResult",
]
