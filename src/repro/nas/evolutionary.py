"""Evolutionary architecture search over the sequence search space.

The paper initialises the scenario agnostic heavy model either by tuning the
pre-designed architecture or by an automatic architecture search ([24] in the
paper); the better candidate wins (Fig. 4).  This module provides that second
pipeline: a straightforward regularised-evolution search over the same
genotype space as the budget-limited NAS, with a user-supplied fitness
function (typically "train briefly, return validation AUC").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nas.genotype import Genotype
from repro.nas.search_space import SequenceSearchSpace
from repro.utils.rng import new_rng

__all__ = ["EvolutionConfig", "EvolutionResult", "EvolutionaryNAS"]

FitnessFn = Callable[[Genotype], float]


@dataclass(frozen=True)
class EvolutionConfig:
    """Hyper-parameters of the evolutionary architecture search.

    Attributes:
        population_size: number of genotypes kept alive.
        generations: evolution rounds after the initial population.
        tournament_size: candidates sampled per parent selection.
        mutation_rate: per-gene mutation probability.
        crossover_probability: probability of producing a child by crossover.
        flops_budget: optional hard FLOPs cap (evaluated at ``seq_len``/``channels``).
        seq_len: sequence length used for the FLOPs cap.
        channels: channel width used for the FLOPs cap.
    """

    population_size: int = 8
    generations: int = 4
    tournament_size: int = 3
    mutation_rate: float = 0.3
    crossover_probability: float = 0.3
    flops_budget: Optional[float] = None
    seq_len: int = 128
    channels: int = 16


@dataclass
class EvolutionResult:
    """Best genotype found and the full evaluation history."""

    best_genotype: Genotype
    best_fitness: float
    history: List[Tuple[Genotype, float]] = field(default_factory=list)


class EvolutionaryNAS:
    """Tournament-selection evolutionary search over :class:`SequenceSearchSpace`."""

    def __init__(self, search_space: SequenceSearchSpace, fitness_fn: FitnessFn,
                 config: Optional[EvolutionConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.search_space = search_space
        self.fitness_fn = fitness_fn
        self.config = config or EvolutionConfig()
        self._rng = new_rng(rng if rng is not None else 0)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _within_budget(self, genotype: Genotype) -> bool:
        cfg = self.config
        if cfg.flops_budget is None:
            return True
        return genotype.flops(cfg.seq_len, cfg.channels) <= cfg.flops_budget

    def _sample_valid(self) -> Genotype:
        for _ in range(200):
            genotype = self.search_space.random_genotype(self._rng)
            if self._within_budget(genotype):
                return genotype
        return self.search_space.min_flops_genotype(self.config.seq_len, self.config.channels)

    def _tournament(self, population: List[Tuple[Genotype, float]]) -> Genotype:
        indices = self._rng.choice(len(population), size=min(self.config.tournament_size,
                                                             len(population)), replace=False)
        best = max((population[i] for i in indices), key=lambda pair: pair[1])
        return best[0]

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self) -> EvolutionResult:
        cfg = self.config
        population: List[Tuple[Genotype, float]] = []
        history: List[Tuple[Genotype, float]] = []
        for _ in range(cfg.population_size):
            genotype = self._sample_valid()
            fitness = float(self.fitness_fn(genotype))
            population.append((genotype, fitness))
            history.append((genotype, fitness))
        for _ in range(cfg.generations):
            children: List[Tuple[Genotype, float]] = []
            for _ in range(cfg.population_size):
                parent = self._tournament(population)
                if self._rng.random() < cfg.crossover_probability and len(population) > 1:
                    other = self._tournament(population)
                    child = self.search_space.crossover(parent, other, rng=self._rng)
                    child = self.search_space.mutate(child, rng=self._rng,
                                                     mutation_rate=cfg.mutation_rate)
                else:
                    child = self.search_space.mutate(parent, rng=self._rng,
                                                     mutation_rate=cfg.mutation_rate)
                if not self._within_budget(child):
                    child = self._sample_valid()
                fitness = float(self.fitness_fn(child))
                children.append((child, fitness))
                history.append((child, fitness))
            # Keep the best individuals among parents and children (elitism).
            combined = population + children
            combined.sort(key=lambda pair: pair[1], reverse=True)
            population = combined[:cfg.population_size]
        best_genotype, best_fitness = max(population, key=lambda pair: pair[1])
        return EvolutionResult(best_genotype=best_genotype, best_fitness=best_fitness,
                               history=history)
