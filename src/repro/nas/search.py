"""The budget-limited NAS search procedure (Sec. III-D, Eq. 4-9).

The search trains a weight-sharing supernet over the Fig. 6 space with a
bilevel scheme: network weights are optimised on the train split, the
architecture distribution parameters on the validation split, where the
validation objective adds ``lambda * normalized FLOPs`` (Eq. 4).  Knowledge is
simultaneously distilled from the scenario specific heavy model (Eq. 5).
After search, the discrete architecture with maximal joint probability that
satisfies the hard FLOPs constraint is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.models.config import ModelConfig
from repro.models.profile_encoder import ProfileEncoder
from repro.nas.genotype import Genotype
from repro.nas.operations import DEFAULT_CANDIDATES
from repro.nas.supernet import SequenceSuperNet
from repro.nn.data import ArrayDataset, Batch, DataLoader
from repro.nn.layers.basic import MLP, Embedding
from repro.nn.losses import binary_cross_entropy_with_logits, distillation_loss
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.utils.rng import new_rng

__all__ = ["NASConfig", "NASResult", "SupernetLightModel", "BudgetLimitedNAS"]

# The paper's candidate set for the budget NAS (Sec. V-A3): convolutions with
# kernels {1,3,5,7}, average/max pooling with kernel 3, LSTM and self-attention.
PAPER_CANDIDATES: List[str] = [
    "std_conv_1", "std_conv_3", "std_conv_5", "std_conv_7",
    "dil_conv_3", "dil_conv_5", "dil_conv_7",
    "avg_pool_3", "max_pool_3", "lstm", "self_att",
]


@dataclass(frozen=True)
class NASConfig:
    """Hyper-parameters of the budget-limited architecture search.

    Attributes:
        num_layers: depth of the searched behaviour encoder.
        candidates: candidate operation names.
        lambda_flops: weight of the normalised FLOPs term in Eq. 4.
        epochs: bilevel search epochs.
        batch_size: mini-batch size for both splits.
        weights_lr: Adam learning rate for network weights (Eq. 6).
        arch_lr: Adam learning rate for architecture logits.
        tau_start: initial Gumbel-softmax temperature.
        tau_end: final temperature (annealed linearly over epochs).
        distill_delta: soft-label weight when a teacher is given (Eq. 5).
        max_batches_per_epoch: optional cap for fast runs.
        grad_clip: max gradient norm.
    """

    num_layers: int = 3
    candidates: tuple = tuple(PAPER_CANDIDATES)
    lambda_flops: float = 0.15
    epochs: int = 2
    batch_size: int = 128
    weights_lr: float = 0.005
    arch_lr: float = 0.05
    tau_start: float = 5.0
    tau_end: float = 1.0
    distill_delta: float = 1.0
    max_batches_per_epoch: Optional[int] = None
    grad_clip: float = 5.0


@dataclass
class NASResult:
    """Outcome of one budget-limited search."""

    genotype: Genotype
    flops: int
    flops_budget: Optional[float]
    search_losses: List[float] = field(default_factory=list)
    arch_losses: List[float] = field(default_factory=list)


class SupernetLightModel(Module):
    """Profile encoder + supernet behaviour encoder + head, used only during search."""

    def __init__(self, config: ModelConfig, nas_config: NASConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else new_rng(0)
        self.config = config
        self.profile_encoder = ProfileEncoder(config.profile_dim, hidden_dims=config.profile_hidden,
                                              dropout=config.dropout, rng=rng)
        self.embedding = Embedding(config.vocab_size, config.embed_dim, rng=rng)
        self.supernet = SequenceSuperNet(nas_config.num_layers, config.embed_dim,
                                         list(nas_config.candidates), rng=rng)
        joint = self.profile_encoder.output_dim + config.embed_dim
        self.head = MLP([joint, *config.head_hidden, 1], activation="relu", rng=rng)

    def forward(self, batch: Batch, tau: float = 1.0, sample: bool = True) -> Tensor:
        profile_vec = self.profile_encoder(Tensor(batch.profiles))
        embedded = self.embedding(batch.sequences)
        behavior_vec = self.supernet(embedded, mask=batch.mask, tau=tau, sample=sample)
        joint = concatenate([profile_vec, behavior_vec], axis=1)
        return self.head(joint).reshape(len(batch))

    def architecture_parameters(self):
        return self.supernet.architecture_parameters()

    def weight_parameters(self):
        arch_ids = {id(p) for p in self.supernet.architecture_parameters()}
        return [p for p in self.parameters() if id(p) not in arch_ids]


class BudgetLimitedNAS:
    """Run the Eq. 4-9 search and derive a budget-satisfying genotype."""

    def __init__(self, model_config: ModelConfig, nas_config: Optional[NASConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.model_config = model_config
        self.nas_config = nas_config or NASConfig()
        self._rng = new_rng(rng if rng is not None else 0)

    def _temperature(self, epoch: int) -> float:
        cfg = self.nas_config
        if cfg.epochs <= 1:
            return cfg.tau_end
        fraction = epoch / (cfg.epochs - 1)
        return cfg.tau_start + fraction * (cfg.tau_end - cfg.tau_start)

    def search(self, train_data: ArrayDataset, val_data: ArrayDataset,
               teacher: Optional[Module] = None,
               flops_budget: Optional[float] = None) -> NASResult:
        """Search for a light behaviour-encoder architecture.

        Args:
            train_data: split used to optimise network weights (Eq. 6).
            val_data: split used to optimise architecture parameters (Eq. 4).
            teacher: scenario specific heavy model used as distillation teacher.
            flops_budget: hard upper bound on the derived encoder's FLOPs
                (per-sample, at ``model_config.max_seq_len``); ``None`` disables
                the hard constraint (the soft lambda term still applies).
        """
        cfg = self.nas_config
        seq_len = self.model_config.max_seq_len
        supermodel = SupernetLightModel(self.model_config, cfg, rng=self._rng)
        weight_optimizer = Adam(supermodel.weight_parameters(), lr=cfg.weights_lr)
        arch_optimizer = Adam(supermodel.architecture_parameters(), lr=cfg.arch_lr)
        result_losses: List[float] = []
        arch_losses: List[float] = []

        for epoch in range(cfg.epochs):
            tau = self._temperature(epoch)
            train_loader = DataLoader(train_data, batch_size=cfg.batch_size, shuffle=True, rng=self._rng)
            val_loader = DataLoader(val_data, batch_size=cfg.batch_size, shuffle=True, rng=self._rng)
            val_iter = iter(val_loader)
            for step, train_batch in enumerate(train_loader):
                if cfg.max_batches_per_epoch is not None and step >= cfg.max_batches_per_epoch:
                    break
                # --- weight step on the train split (Eq. 6) -----------------
                weight_optimizer.zero_grad()
                logits = supermodel(train_batch, tau=tau, sample=True)
                loss = self._loss(logits, train_batch, teacher)
                loss.backward()
                if cfg.grad_clip > 0:
                    clip_grad_norm(supermodel.weight_parameters(), cfg.grad_clip)
                weight_optimizer.step()
                result_losses.append(loss.item())
                # --- architecture step on the validation split (Eq. 4) ------
                try:
                    val_batch = next(val_iter)
                except StopIteration:
                    val_iter = iter(DataLoader(val_data, batch_size=cfg.batch_size,
                                               shuffle=True, rng=self._rng))
                    val_batch = next(val_iter)
                arch_optimizer.zero_grad()
                val_logits = supermodel(val_batch, tau=tau, sample=True)
                val_loss = self._loss(val_logits, val_batch, teacher)
                flops_term = supermodel.supernet.normalized_expected_flops(seq_len)
                total = val_loss + flops_term * cfg.lambda_flops
                total.backward()
                if cfg.grad_clip > 0:
                    clip_grad_norm(supermodel.architecture_parameters(), cfg.grad_clip)
                arch_optimizer.step()
                arch_losses.append(total.item())

        genotype = supermodel.supernet.derive(seq_len, flops_budget=flops_budget)
        return NASResult(
            genotype=genotype,
            flops=genotype.flops(seq_len, self.model_config.embed_dim),
            flops_budget=flops_budget,
            search_losses=result_losses,
            arch_losses=arch_losses,
        )

    def _loss(self, logits: Tensor, batch: Batch, teacher: Optional[Module]) -> Tensor:
        if teacher is None:
            return binary_cross_entropy_with_logits(logits, batch.labels)
        with no_grad():
            teacher_logits = teacher.predict_logits(batch)
        return distillation_loss(logits, batch.labels, teacher_logits,
                                 delta=self.nas_config.distill_delta)
