"""Candidate operations for the budget-limited NAS search space (Sec. III-D).

The paper's candidate set (implementation details, Sec. V-A3):

* 1-D standard convolutions with kernel sizes {1, 3, 5, 7},
* 1-D dilated convolutions with kernel sizes {3, 5, 7},
* 1-D average pooling and max pooling with kernel size 3,
* an LSTM layer,
* a multi-head self-attention layer.

Every operation maps a (B, T, C) sequence to a (B, T, C) sequence of the same
shape so layers can be freely wired in cascade or in parallel (Fig. 6), and
each has an analytical FLOPs cost used for the budget constraint of Eq. 4.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import SearchSpaceError
from repro.nn.layers.attention import MultiHeadSelfAttention
from repro.nn.layers.conv import AvgPool1d, Conv1d, MaxPool1d
from repro.nn.layers.recurrent import LSTM
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = [
    "SequenceOp",
    "DEFAULT_CANDIDATES",
    "available_operations",
    "build_operation",
    "operation_flops",
]

DEFAULT_CANDIDATES: List[str] = [
    "std_conv_1",
    "std_conv_3",
    "std_conv_5",
    "std_conv_7",
    "dil_conv_3",
    "dil_conv_5",
    "dil_conv_7",
    "avg_pool_3",
    "max_pool_3",
    "lstm",
    "self_att",
]


class SequenceOp(Module):
    """Wrapper giving every candidate op a uniform (x, mask) -> x interface."""

    def __init__(self, name: str, inner: Module, channels: int, accepts_mask: bool = False) -> None:
        super().__init__()
        self.name = name
        self.inner = inner
        self.channels = channels
        self.accepts_mask = accepts_mask

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        if self.accepts_mask:
            return self.inner(x, mask=mask)
        if isinstance(self.inner, LSTM):
            outputs, _ = self.inner(x)
            return outputs
        return self.inner(x)

    def flops(self, seq_len: int) -> int:
        return operation_flops(self.name, seq_len, self.channels)

    def __repr__(self) -> str:
        return f"SequenceOp({self.name}, C={self.channels})"


def _conv_factory(kernel: int, dilation: int) -> Callable[[int, np.random.Generator], Module]:
    def build(channels: int, rng: np.random.Generator) -> Module:
        return Conv1d(channels, channels, kernel_size=kernel, dilation=dilation, rng=rng)

    return build


def _pool_factory(kind: str, kernel: int) -> Callable[[int, np.random.Generator], Module]:
    def build(channels: int, rng: np.random.Generator) -> Module:
        return AvgPool1d(kernel) if kind == "avg" else MaxPool1d(kernel)

    return build


def _lstm_factory(channels: int, rng: np.random.Generator) -> Module:
    return LSTM(channels, channels, num_layers=1, rng=rng)


def _attention_factory(channels: int, rng: np.random.Generator) -> Module:
    heads = 2 if channels % 2 == 0 else 1
    return MultiHeadSelfAttention(channels, num_heads=heads, rng=rng)


_FACTORIES: Dict[str, Callable[[int, np.random.Generator], Module]] = {
    "std_conv_1": _conv_factory(1, 1),
    "std_conv_3": _conv_factory(3, 1),
    "std_conv_5": _conv_factory(5, 1),
    "std_conv_7": _conv_factory(7, 1),
    "std_conv_9": _conv_factory(9, 1),
    "dil_conv_3": _conv_factory(3, 2),
    "dil_conv_5": _conv_factory(5, 2),
    "dil_conv_7": _conv_factory(7, 2),
    "dil_conv_9": _conv_factory(9, 2),
    "avg_pool_3": _pool_factory("avg", 3),
    "max_pool_3": _pool_factory("max", 3),
    "lstm": _lstm_factory,
    "self_att": _attention_factory,
}

_MASK_AWARE = {"self_att"}


def available_operations() -> List[str]:
    """All operation names that can be used in a search space."""
    return sorted(_FACTORIES)


def build_operation(name: str, channels: int,
                    rng: Optional[np.random.Generator] = None) -> SequenceOp:
    """Instantiate a candidate operation by name."""
    if name not in _FACTORIES:
        raise SearchSpaceError(f"unknown operation {name!r}; available: {available_operations()}")
    rng = rng if rng is not None else np.random.default_rng(0)
    inner = _FACTORIES[name](channels, rng)
    return SequenceOp(name, inner, channels, accepts_mask=name in _MASK_AWARE)


def operation_flops(name: str, seq_len: int, channels: int) -> int:
    """Analytical per-sample FLOPs of an operation applied to a (T, C) sequence."""
    if name not in _FACTORIES:
        raise SearchSpaceError(f"unknown operation {name!r}")
    if name.startswith("std_conv_") or name.startswith("dil_conv_"):
        kernel = int(name.rsplit("_", 1)[1])
        per_step = 2 * kernel * channels * channels + channels
        return per_step * seq_len
    if name in ("avg_pool_3", "max_pool_3"):
        return 3 * channels * seq_len
    if name == "lstm":
        per_step = 2 * (channels + channels) * 4 * channels + 10 * channels
        return per_step * seq_len
    if name == "self_att":
        projections = 4 * 2 * seq_len * channels * channels
        heads = 2 if channels % 2 == 0 else 1
        head_dim = channels // heads
        attention = 2 * 2 * heads * seq_len * seq_len * head_dim
        softmax = 3 * heads * seq_len * seq_len
        return projections + attention + softmax
    raise SearchSpaceError(f"no FLOPs model for operation {name!r}")


def validate_candidates(candidates: Sequence[str]) -> List[str]:
    """Validate a candidate list, raising :class:`SearchSpaceError` on unknown names."""
    unknown = [c for c in candidates if c not in _FACTORIES]
    if unknown:
        raise SearchSpaceError(f"unknown operations {unknown}; available: {available_operations()}")
    if not candidates:
        raise SearchSpaceError("candidate operation list must not be empty")
    return list(candidates)
