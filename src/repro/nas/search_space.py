"""The layered sequence-model search space of Fig. 6.

The space is parameterised by the number of layers and the candidate
operation set.  It knows how to sample random genotypes, mutate them
(used by the evolutionary searcher) and report its size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SearchSpaceError
from repro.nas.genotype import Genotype, LayerGene
from repro.nas.operations import DEFAULT_CANDIDATES, validate_candidates

__all__ = ["SequenceSearchSpace"]


@dataclass
class SequenceSearchSpace:
    """Search space over N-layer sequence encoders (input / op / residual choices).

    Attributes:
        num_layers: number of searchable layers (N in Fig. 6).
        candidates: candidate operation names for every layer.
        residual_probability: probability of enabling each residual edge when
            sampling random genotypes.
    """

    num_layers: int = 4
    candidates: List[str] = field(default_factory=lambda: list(DEFAULT_CANDIDATES))
    residual_probability: float = 0.3

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise SearchSpaceError("num_layers must be >= 1")
        self.candidates = validate_candidates(self.candidates)
        if not 0.0 <= self.residual_probability <= 1.0:
            raise SearchSpaceError("residual_probability must be in [0, 1]")

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def num_input_choices(self, layer_position: int) -> int:
        """Number of possible inputs for the layer at 1-based ``layer_position``."""
        if not 1 <= layer_position <= self.num_layers:
            raise SearchSpaceError(f"layer_position must be in [1, {self.num_layers}]")
        return layer_position  # original input + previous layer outputs

    def size(self) -> int:
        """Total number of discrete architectures in the space."""
        total = 1
        for position in range(1, self.num_layers + 1):
            inputs = self.num_input_choices(position)
            residual_combos = 2 ** inputs
            total *= inputs * len(self.candidates) * residual_combos
        return total

    # ------------------------------------------------------------------ #
    # Sampling / mutation
    # ------------------------------------------------------------------ #
    def random_genotype(self, rng: Optional[np.random.Generator] = None) -> Genotype:
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: List[LayerGene] = []
        for position in range(1, self.num_layers + 1):
            input_index = int(rng.integers(0, self.num_input_choices(position)))
            operation = str(rng.choice(self.candidates))
            residuals = tuple(
                idx for idx in range(position)
                if rng.random() < self.residual_probability
            )
            layers.append(LayerGene(input_index, operation, residuals))
        return Genotype(layers=tuple(layers))

    def mutate(self, genotype: Genotype, rng: Optional[np.random.Generator] = None,
               mutation_rate: float = 0.3) -> Genotype:
        """Return a mutated copy: each layer's choices flip with ``mutation_rate``."""
        if genotype.num_layers != self.num_layers:
            raise SearchSpaceError(
                f"genotype has {genotype.num_layers} layers, space expects {self.num_layers}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        new_layers: List[LayerGene] = []
        for position, gene in enumerate(genotype.layers, start=1):
            input_index = gene.input_index
            operation = gene.operation
            residuals = list(gene.residual_indices)
            if rng.random() < mutation_rate:
                input_index = int(rng.integers(0, self.num_input_choices(position)))
            if rng.random() < mutation_rate:
                operation = str(rng.choice(self.candidates))
            if rng.random() < mutation_rate:
                flip = int(rng.integers(0, position))
                if flip in residuals:
                    residuals.remove(flip)
                else:
                    residuals.append(flip)
            new_layers.append(LayerGene(input_index, operation, tuple(sorted(residuals))))
        return Genotype(layers=tuple(new_layers))

    def crossover(self, parent_a: Genotype, parent_b: Genotype,
                  rng: Optional[np.random.Generator] = None) -> Genotype:
        """Uniform crossover: each layer gene comes from one of the two parents."""
        if parent_a.num_layers != self.num_layers or parent_b.num_layers != self.num_layers:
            raise SearchSpaceError("both parents must match the search space depth")
        rng = rng if rng is not None else np.random.default_rng(0)
        layers = tuple(
            parent_a.layers[i] if rng.random() < 0.5 else parent_b.layers[i]
            for i in range(self.num_layers)
        )
        return Genotype(layers=layers)

    def min_flops_genotype(self, seq_len: int, channels: int) -> Genotype:
        """The cheapest architecture in the space (used to sanity-check budgets)."""
        from repro.nas.operations import operation_flops

        cheapest_op = min(self.candidates, key=lambda op: operation_flops(op, seq_len, channels))
        layers = tuple(
            LayerGene(input_index=position - 1, operation=cheapest_op)
            for position in range(1, self.num_layers + 1)
        )
        return Genotype(layers=layers)
