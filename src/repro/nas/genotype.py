"""Discrete architecture descriptions (genotypes) for the sequence search space.

A genotype fixes, for every layer of Fig. 6: which previous output feeds the
layer (input choice), which candidate operation the layer applies (operation
choice) and which previous outputs are added as residual connections
(residual input choices).  Index ``0`` always refers to the original input;
index ``i >= 1`` refers to the output of layer ``i``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.exceptions import SearchSpaceError
from repro.nas.operations import operation_flops, validate_candidates

__all__ = ["LayerGene", "Genotype"]


@dataclass(frozen=True)
class LayerGene:
    """The searched decisions of a single layer.

    Attributes:
        input_index: which previous output is the layer input (0 = original input).
        operation: candidate operation name (see :mod:`repro.nas.operations`).
        residual_indices: previous outputs added as residual connections.
    """

    input_index: int
    operation: str
    residual_indices: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "input_index": self.input_index,
            "operation": self.operation,
            "residual_indices": list(self.residual_indices),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LayerGene":
        return cls(
            input_index=int(payload["input_index"]),
            operation=str(payload["operation"]),
            residual_indices=tuple(int(i) for i in payload.get("residual_indices", [])),
        )


@dataclass(frozen=True)
class Genotype:
    """A full discrete architecture: one :class:`LayerGene` per layer."""

    layers: Tuple[LayerGene, ...]

    def __post_init__(self) -> None:
        validate_candidates([gene.operation for gene in self.layers])
        for position, gene in enumerate(self.layers, start=1):
            if not 0 <= gene.input_index < position:
                raise SearchSpaceError(
                    f"layer {position}: input_index {gene.input_index} must be in [0, {position - 1}]"
                )
            for residual in gene.residual_indices:
                if not 0 <= residual < position:
                    raise SearchSpaceError(
                        f"layer {position}: residual index {residual} must be in [0, {position - 1}]"
                    )
            if len(set(gene.residual_indices)) != len(gene.residual_indices):
                raise SearchSpaceError(f"layer {position}: duplicate residual indices")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def operations(self) -> List[str]:
        return [gene.operation for gene in self.layers]

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def flops(self, seq_len: int, channels: int) -> int:
        """Per-sample FLOPs of the encoder this genotype describes.

        Counts each layer's operation plus one add per residual connection and
        the final attentive layer summation.
        """
        total = 0
        for gene in self.layers:
            total += operation_flops(gene.operation, seq_len, channels)
            total += len(gene.residual_indices) * seq_len * channels
        total += self.num_layers * seq_len * channels  # attentive sum of layer outputs
        return int(total)

    def num_trainable_ops(self) -> int:
        """Number of layers whose operation has trainable parameters."""
        pooling = {"avg_pool_3", "max_pool_3"}
        return sum(1 for gene in self.layers if gene.operation not in pooling)

    # ------------------------------------------------------------------ #
    # Serialization / display
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {"layers": [gene.to_dict() for gene in self.layers]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Genotype":
        return cls(layers=tuple(LayerGene.from_dict(g) for g in payload["layers"]))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Genotype":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Genotype":
        return cls.from_json(Path(path).read_text())

    def describe(self) -> str:
        """Human-readable description in the style of Fig. 9."""
        lines = []
        for position, gene in enumerate(self.layers, start=1):
            source = "input" if gene.input_index == 0 else f"layer{gene.input_index}"
            residuals = ", ".join(
                "input" if r == 0 else f"layer{r}" for r in gene.residual_indices
            )
            residual_part = f" (+ residual from {residuals})" if residuals else ""
            lines.append(f"layer{position}: {gene.operation} <- {source}{residual_part}")
        lines.append("output: attentive sum of all layer outputs")
        return "\n".join(lines)


def chain_genotype(operations: Sequence[str]) -> Genotype:
    """Build a simple cascade genotype where layer i feeds layer i+1 (no residuals)."""
    layers = tuple(
        LayerGene(input_index=i, operation=op) for i, op in enumerate(operations)
    )
    return Genotype(layers=layers)
