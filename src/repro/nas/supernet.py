"""GDAS-style Gumbel-softmax supernet for the budget-limited NAS (Eq. 6-9).

Every searchable decision of Fig. 6 (layer input, operation, residual edges)
is parameterised by learnable architecture logits.  During search a discrete
choice is sampled with the Gumbel-softmax straight-through trick (Eq. 7-8):
the forward pass uses exactly one sampled candidate, while gradients flow to
the corresponding architecture logit.  After search, :meth:`SequenceSuperNet.derive`
extracts the discrete architecture with maximum joint probability that
satisfies the FLOPs constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import BudgetExceededError, SearchSpaceError
from repro.nas.genotype import Genotype, LayerGene
from repro.nas.operations import build_operation, operation_flops, validate_candidates
from repro.nn.layers.pooling import AttentiveLayerSum
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor

__all__ = ["gumbel_softmax_probs", "MixedOp", "ChoiceBlock", "SequenceSuperNet"]


def gumbel_softmax_probs(logits: Tensor, tau: float, rng: np.random.Generator,
                         add_noise: bool = True) -> Tensor:
    """Differentiable Gumbel-softmax probabilities over a logit vector (Eq. 7)."""
    if tau <= 0:
        raise ValueError("temperature tau must be positive")
    if add_noise:
        uniform = np.clip(rng.random(logits.shape), 1e-10, 1.0 - 1e-10)
        gumbel = -np.log(-np.log(uniform))
        noisy = (logits + Tensor(gumbel)) * (1.0 / tau)
    else:
        noisy = logits * (1.0 / tau)
    return noisy.softmax(axis=-1)


def _straight_through_scale(probs: Tensor, index: int) -> Tensor:
    """Return a scalar tensor whose value is 1 but whose gradient targets ``probs[index]``.

    Implements the ``1 - detached(P_m) + P_m`` factor of Eq. 8.
    """
    picked = probs[index]
    return picked + Tensor(1.0 - float(picked.data))


class MixedOp(Module):
    """All candidate operations of one layer plus their architecture logits."""

    def __init__(self, channels: int, candidates: Sequence[str],
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.candidates = validate_candidates(candidates)
        self.channels = channels
        self.ops = ModuleList([build_operation(name, channels, rng=rng) for name in self.candidates])
        self.alpha_ops = Parameter(1e-3 * rng.normal(size=len(self.candidates)))

    def forward(self, x: Tensor, mask: Optional[np.ndarray], tau: float,
                rng: np.random.Generator, sample: bool = True) -> Tensor:
        probs = gumbel_softmax_probs(self.alpha_ops, tau, rng, add_noise=sample)
        index = int(np.argmax(probs.data))
        scale = _straight_through_scale(probs, index)
        return self.ops[index](x, mask=mask) * scale

    def probabilities(self) -> np.ndarray:
        """Post-training selection probabilities (Eq. 9)."""
        logits = self.alpha_ops.data
        shifted = np.exp(logits - logits.max())
        return shifted / shifted.sum()

    def expected_flops(self, seq_len: int) -> Tensor:
        """Probability-weighted FLOPs of this mixed op (differentiable in the logits)."""
        probs = self.alpha_ops.softmax(axis=-1)
        costs = Tensor(np.array([
            float(operation_flops(name, seq_len, self.channels)) for name in self.candidates
        ]))
        return (probs * costs).sum()

    def max_flops(self, seq_len: int) -> float:
        return float(max(operation_flops(name, seq_len, self.channels) for name in self.candidates))


class ChoiceBlock(Module):
    """One searchable layer: input choice + mixed operation + residual choices."""

    def __init__(self, position: int, channels: int, candidates: Sequence[str],
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if position < 1:
            raise SearchSpaceError("layer position must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.position = position
        self.channels = channels
        self.num_inputs = position  # original input + previous layer outputs
        self.mixed_op = MixedOp(channels, candidates, rng=rng)
        self.alpha_input = Parameter(1e-3 * rng.normal(size=self.num_inputs))
        # Two logits (off, on) per potential residual edge.
        self.alpha_residual = Parameter(1e-3 * rng.normal(size=(self.num_inputs, 2)))

    def forward(self, previous: List[Tensor], mask: Optional[np.ndarray], tau: float,
                rng: np.random.Generator, sample: bool = True) -> Tensor:
        if len(previous) != self.num_inputs:
            raise SearchSpaceError(
                f"layer {self.position} expects {self.num_inputs} previous outputs, got {len(previous)}"
            )
        input_probs = gumbel_softmax_probs(self.alpha_input, tau, rng, add_noise=sample)
        input_index = int(np.argmax(input_probs.data))
        selected = previous[input_index] * _straight_through_scale(input_probs, input_index)
        output = self.mixed_op(selected, mask, tau, rng, sample=sample)
        for edge in range(self.num_inputs):
            edge_probs = gumbel_softmax_probs(self.alpha_residual[edge, :], tau, rng, add_noise=sample)
            on_index = int(np.argmax(edge_probs.data))
            if on_index == 1:
                output = output + previous[edge] * _straight_through_scale(edge_probs, 1)
        return output

    # ------------------------------------------------------------------ #
    # Derivation helpers
    # ------------------------------------------------------------------ #
    def input_probabilities(self) -> np.ndarray:
        logits = self.alpha_input.data
        shifted = np.exp(logits - logits.max())
        return shifted / shifted.sum()

    def residual_on_probabilities(self) -> np.ndarray:
        logits = self.alpha_residual.data
        shifted = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = shifted / shifted.sum(axis=1, keepdims=True)
        return probs[:, 1]

    def expected_flops(self, seq_len: int) -> Tensor:
        op_part = self.mixed_op.expected_flops(seq_len)
        residual_probs = self.alpha_residual.softmax(axis=-1)[:, 1]
        residual_cost = residual_probs.sum() * float(seq_len * self.channels)
        return op_part + residual_cost

    def max_flops(self, seq_len: int) -> float:
        return self.mixed_op.max_flops(seq_len) + self.num_inputs * seq_len * self.channels


class SequenceSuperNet(Module):
    """The full weight-sharing supernet over the Fig. 6 search space."""

    def __init__(self, num_layers: int, channels: int, candidates: Sequence[str],
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise SearchSpaceError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_layers = num_layers
        self.channels = channels
        self.candidates = validate_candidates(candidates)
        self.blocks = ModuleList([
            ChoiceBlock(position, channels, candidates, rng=rng)
            for position in range(1, num_layers + 1)
        ])
        self.output_pool = AttentiveLayerSum(channels, num_layers, rng=rng)
        self._rng = rng

    @property
    def output_dim(self) -> int:
        return self.channels

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None, tau: float = 1.0,
                sample: bool = True) -> Tensor:
        outputs: List[Tensor] = [x]
        layer_outputs: List[Tensor] = []
        for block in self.blocks:
            out = block(outputs, mask, tau, self._rng, sample=sample)
            outputs.append(out)
            layer_outputs.append(out)
        return self.output_pool(layer_outputs, mask=mask)

    # ------------------------------------------------------------------ #
    # Parameter partitioning (weights vs architecture)
    # ------------------------------------------------------------------ #
    def architecture_parameters(self) -> List[Parameter]:
        return [p for name, p in self.named_parameters() if "alpha_" in name]

    def weight_parameters(self) -> List[Parameter]:
        return [p for name, p in self.named_parameters() if "alpha_" not in name]

    # ------------------------------------------------------------------ #
    # FLOPs accounting
    # ------------------------------------------------------------------ #
    def expected_flops(self, seq_len: int) -> Tensor:
        """Differentiable expected FLOPs of the sampled architectures (used in Eq. 4)."""
        total = self.blocks[0].expected_flops(seq_len)
        for block in list(self.blocks)[1:]:
            total = total + block.expected_flops(seq_len)
        return total

    def normalized_expected_flops(self, seq_len: int) -> Tensor:
        """Expected FLOPs divided by the maximum achievable FLOPs (the L_FLOPs term)."""
        max_total = sum(block.max_flops(seq_len) for block in self.blocks)
        return self.expected_flops(seq_len) * (1.0 / max_total)

    # ------------------------------------------------------------------ #
    # Discrete derivation under a FLOPs budget
    # ------------------------------------------------------------------ #
    def derive(self, seq_len: int, flops_budget: Optional[float] = None) -> Genotype:
        """Extract the max-joint-probability genotype satisfying the FLOPs budget.

        Strategy: take the arg-max choice everywhere, then, while the budget is
        exceeded, greedily apply the substitution (operation downgrade or
        residual-edge removal) that loses the least log-probability per FLOP
        saved.
        """
        op_probs = [block.mixed_op.probabilities() for block in self.blocks]
        input_choices = [int(np.argmax(block.input_probabilities())) for block in self.blocks]
        residual_probs = [block.residual_on_probabilities() for block in self.blocks]

        op_choices = [int(np.argmax(p)) for p in op_probs]
        residual_choices = [
            [bool(p > 0.5) for p in probs] for probs in residual_probs
        ]

        def genotype_from_choices() -> Genotype:
            layers = []
            for i, block in enumerate(self.blocks):
                residuals = tuple(j for j, on in enumerate(residual_choices[i]) if on)
                layers.append(LayerGene(
                    input_index=input_choices[i],
                    operation=self.candidates[op_choices[i]],
                    residual_indices=residuals,
                ))
            return Genotype(layers=tuple(layers))

        if flops_budget is None:
            return genotype_from_choices()

        def current_flops() -> int:
            return genotype_from_choices().flops(seq_len, self.channels)

        max_rounds = self.num_layers * (len(self.candidates) + self.num_layers) + 8
        rounds = 0
        while current_flops() > flops_budget and rounds < max_rounds:
            rounds += 1
            best_move = None  # (log_prob_loss_per_flop, kind, layer, payload)
            flops_now = current_flops()
            for i, block in enumerate(self.blocks):
                probs = op_probs[i]
                current_op = op_choices[i]
                current_cost = operation_flops(self.candidates[current_op], seq_len, self.channels)
                for candidate_idx, candidate in enumerate(self.candidates):
                    if candidate_idx == current_op:
                        continue
                    new_cost = operation_flops(candidate, seq_len, self.channels)
                    saved = current_cost - new_cost
                    if saved <= 0:
                        continue
                    loss = np.log(probs[current_op] + 1e-12) - np.log(probs[candidate_idx] + 1e-12)
                    score = loss / saved
                    if best_move is None or score < best_move[0]:
                        best_move = (score, "op", i, candidate_idx)
                for edge, on in enumerate(residual_choices[i]):
                    if not on:
                        continue
                    saved = seq_len * self.channels
                    p_on = residual_probs[i][edge]
                    loss = np.log(p_on + 1e-12) - np.log(1 - p_on + 1e-12)
                    score = max(loss, 0.0) / saved
                    if best_move is None or score < best_move[0]:
                        best_move = (score, "residual", i, edge)
            if best_move is None:
                break
            _, kind, layer, payload = best_move
            if kind == "op":
                op_choices[layer] = payload
            else:
                residual_choices[layer][payload] = False
            if current_flops() >= flops_now:
                break

        genotype = genotype_from_choices()
        if flops_budget is not None and genotype.flops(seq_len, self.channels) > flops_budget:
            raise BudgetExceededError(
                f"no architecture under {flops_budget:.0f} FLOPs could be derived "
                f"(cheapest found: {genotype.flops(seq_len, self.channels):.0f})"
            )
        return genotype
