"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

The paper's models (profile MLP + behaviour sequence encoders, the GDAS
supernet, distilled light models) are all built from this package.  The public
surface mirrors the common ``torch.nn`` idioms: :class:`Tensor` with autograd,
:class:`Module`/:class:`Parameter`, layers, losses, optimisers and data
loaders.
"""

from repro.nn import init, losses
from repro.nn.data import ArrayDataset, Batch, DataLoader, support_query_split, train_test_split
from repro.nn.flops import InputSpec, estimate_module_flops, format_flops
from repro.nn.module import Module, ModuleList, Parameter, Sequential, clone_module
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "clone_module",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "ArrayDataset",
    "Batch",
    "DataLoader",
    "train_test_split",
    "support_query_split",
    "InputSpec",
    "estimate_module_flops",
    "format_flops",
    "init",
    "losses",
]
