"""Loss functions: cross entropy, BCE-with-logits and the distillation loss of Eq. 5."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "mse_loss",
    "distillation_loss",
    "soft_binary_cross_entropy",
]


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(np.asarray(value, dtype=np.float64))


def binary_cross_entropy_with_logits(logits: Tensor, targets, sample_weight: Optional[np.ndarray] = None) -> Tensor:
    """Numerically stable binary cross entropy on raw logits.

    Uses the identity ``BCE = max(z, 0) - z*y + log(1 + exp(-|z|))``.
    """
    targets_t = _as_tensor(targets)
    if targets_t.shape != logits.shape:
        targets_t = targets_t.reshape(logits.shape)
    relu_z = logits.relu()
    abs_z = logits.abs()
    loss = relu_z - logits * targets_t + ((abs_z * -1.0).exp() + 1.0).log()
    if sample_weight is not None:
        loss = loss * Tensor(np.asarray(sample_weight, dtype=np.float64).reshape(loss.shape))
    return loss.mean()


def soft_binary_cross_entropy(logits: Tensor, soft_targets: Tensor) -> Tensor:
    """Binary cross entropy against soft (probability) targets, on raw logits."""
    probs_target = soft_targets if isinstance(soft_targets, Tensor) else _as_tensor(soft_targets)
    if probs_target.shape != logits.shape:
        probs_target = probs_target.reshape(logits.shape)
    relu_z = logits.relu()
    abs_z = logits.abs()
    loss = relu_z - logits * probs_target + ((abs_z * -1.0).exp() + 1.0).log()
    return loss.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Multi-class cross entropy from (B, C) logits and integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), labels]
    return picked.mean() * -1.0


def mse_loss(predictions: Tensor, targets) -> Tensor:
    """Mean squared error."""
    targets_t = _as_tensor(targets)
    if targets_t.shape != predictions.shape:
        targets_t = targets_t.reshape(predictions.shape)
    diff = predictions - targets_t
    return (diff * diff).mean()


def distillation_loss(student_logits: Tensor, hard_labels, teacher_logits, delta: float = 1.0,
                      temperature: float = 1.0) -> Tensor:
    """Knowledge-distillation loss of Eq. 5.

    ``L = CE(student, hard) + delta * CE(student, soft)`` where the soft label is
    the teacher model's prediction.  ``teacher_logits`` may be a Tensor or numpy
    array; it is always detached so no gradient flows into the teacher.
    """
    hard_term = binary_cross_entropy_with_logits(student_logits, hard_labels)
    teacher_arr = teacher_logits.data if isinstance(teacher_logits, Tensor) else np.asarray(teacher_logits)
    soft_probs = 1.0 / (1.0 + np.exp(-teacher_arr / max(temperature, 1e-8)))
    soft_term = soft_binary_cross_entropy(student_logits, Tensor(soft_probs))
    return hard_term + soft_term * delta
