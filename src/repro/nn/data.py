"""Minimal dataset / dataloader utilities for batching scenario samples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Batch", "ArrayDataset", "DataLoader", "train_test_split", "support_query_split"]


@dataclass
class Batch:
    """One mini-batch of scenario samples.

    Attributes:
        profiles: float array (B, profile_dim) of user profile features.
        sequences: int array (B, T) of behaviour token ids.
        mask: float array (B, T) with 1 for valid positions.
        labels: float array (B,) of binary labels.
    """

    profiles: np.ndarray
    sequences: np.ndarray
    mask: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)


class ArrayDataset:
    """A dataset over parallel arrays (profiles, sequences, mask, labels)."""

    def __init__(self, profiles: np.ndarray, sequences: np.ndarray,
                 mask: Optional[np.ndarray] = None, labels: Optional[np.ndarray] = None) -> None:
        self.profiles = np.asarray(profiles, dtype=np.float64)
        self.sequences = np.asarray(sequences, dtype=np.int64)
        if mask is None:
            mask = np.ones(self.sequences.shape, dtype=np.float64)
        self.mask = np.asarray(mask, dtype=np.float64)
        if labels is None:
            labels = np.zeros(len(self.profiles), dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.float64)
        n = len(self.profiles)
        if not (len(self.sequences) == len(self.mask) == len(self.labels) == n):
            raise ValueError("all arrays must have the same number of rows")

    def __len__(self) -> int:
        return len(self.profiles)

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        idx = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(self.profiles[idx], self.sequences[idx], self.mask[idx], self.labels[idx])

    def batch(self, indices: Sequence[int]) -> Batch:
        idx = np.asarray(indices, dtype=np.int64)
        return Batch(self.profiles[idx], self.sequences[idx], self.mask[idx], self.labels[idx])

    def as_batch(self) -> Batch:
        return Batch(self.profiles, self.sequences, self.mask, self.labels)

    @property
    def positive_rate(self) -> float:
        return float(self.labels.mean()) if len(self.labels) else 0.0


class DataLoader:
    """Iterate a dataset in shuffled mini-batches."""

    def __init__(self, dataset: ArrayDataset, batch_size: int = 64, shuffle: bool = True,
                 drop_last: bool = False, rng: Optional[np.random.Generator] = None) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            chunk = indices[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield self.dataset.batch(chunk)


def train_test_split(dataset: ArrayDataset, test_fraction: float = 0.2,
                     rng: Optional[np.random.Generator] = None) -> Tuple[ArrayDataset, ArrayDataset]:
    """Randomly split a dataset into train and test parts (paper: 20% test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    n = len(dataset)
    indices = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)


def support_query_split(dataset: ArrayDataset, support_fraction: float = 0.7,
                        rng: Optional[np.random.Generator] = None) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split scenario data into support and query sets (Sec. III-C, Fig. 5)."""
    if not 0.0 < support_fraction < 1.0:
        raise ValueError("support_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    n = len(dataset)
    indices = rng.permutation(n)
    n_support = max(1, int(round(n * support_fraction)))
    n_support = min(n_support, n - 1) if n > 1 else n_support
    return dataset.subset(indices[:n_support]), dataset.subset(indices[n_support:])
