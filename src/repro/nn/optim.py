"""Gradient-descent optimisers (SGD, Adam) for the numpy substrate.

The paper optimises every model with Adam (lr 0.001, batch 512, Sec. V-A3);
SGD is provided for the meta outer updates and for tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients in-place to a maximum global L2 norm; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                vel = self.momentum * vel + grad if vel is not None else grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.001,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        return {"t": self._t, "lr": self.lr}
