"""Module / Parameter abstractions for the numpy neural-network substrate.

The API intentionally mirrors the familiar ``torch.nn.Module`` surface
(`parameters`, `named_parameters`, `state_dict`, `train`/`eval`, submodule
registration through attribute assignment) so the higher-level ALT code reads
naturally.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "clone_module"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved in ``state_dict`` (e.g. running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Iteration over parameters / modules
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Training state / gradients
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.asarray(buf).copy()
        for child_name, child in self._modules.items():
            state.update(child.state_dict(prefix=f"{prefix}{child_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "", strict: bool = True) -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key in state:
                value = np.asarray(state[key], dtype=np.float64)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: expected {param.data.shape}, got {value.shape}"
                    )
                param.data = value.copy()
            elif strict:
                raise KeyError(f"missing parameter {key} in state dict")
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                self._buffers[name] = np.asarray(state[key], dtype=np.float64).copy()
                object.__setattr__(self, name, self._buffers[name])
            elif strict:
                raise KeyError(f"missing buffer {key} in state dict")
        for child_name, child in self._modules.items():
            child.load_state_dict(state, prefix=f"{prefix}{child_name}.", strict=strict)

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules.keys())
        return f"{self.__class__.__name__}({child_repr})"


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"layer{len(self._order)}"
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """Hold submodules in a list (registered so parameters are visible)."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = f"item{len(self._order)}"
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers have no forward
        raise RuntimeError("ModuleList is a container and cannot be called directly")


def clone_module(module: Module) -> Module:
    """Deep-copy a module (used to copy the scenario agnostic heavy model, Sec. III-C)."""
    return copy.deepcopy(module)
