"""Analytical FLOPs accounting.

The paper uses the number of floating point operations as the proxy for the
inference-time computational budget (Sec. III-D, Eq. 4 and Table V).  Every
layer in :mod:`repro.nn.layers` exposes a ``flops`` method where meaningful;
this module aggregates them for whole models given an input specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.nn.layers.attention import MultiHeadSelfAttention, TransformerEncoder, TransformerEncoderLayer
from repro.nn.layers.basic import MLP, Linear
from repro.nn.layers.conv import AvgPool1d, Conv1d, MaxPool1d
from repro.nn.layers.recurrent import LSTM, LSTMCell
from repro.nn.module import Module

__all__ = ["InputSpec", "estimate_module_flops", "format_flops"]


@dataclass
class InputSpec:
    """Shape information needed for analytical FLOPs estimation.

    Attributes:
        seq_len: behaviour sequence length.
        channels: channel width of sequence representations.
        profile_dim: dimensionality of the profile feature vector.
    """

    seq_len: int
    channels: int
    profile_dim: int = 0


def estimate_module_flops(module: Module, spec: InputSpec) -> int:
    """Best-effort analytical per-sample FLOPs of ``module``.

    Leaf layers with a known cost model are summed; container modules recurse.
    Layers that expose their own ``flops(spec)`` (model-level classes) are
    preferred when available.
    """
    flops_of_spec = getattr(module, "flops_with_spec", None)
    if callable(flops_of_spec):
        return int(flops_of_spec(spec))
    total = _leaf_flops(module, spec)
    for child in module.children():
        total += estimate_module_flops(child, spec)
    return int(total)


def _leaf_flops(module: Module, spec: InputSpec) -> int:
    if isinstance(module, Linear):
        # Linear layers inside sequence blocks act per time step; standalone
        # dense layers (profile encoder, heads) act once per sample.  We charge
        # one application here and let model classes charge per-step costs.
        return module.flops(1)
    if isinstance(module, MLP):
        return 0  # children (Linear) are counted during recursion
    if isinstance(module, Conv1d):
        return module.flops(spec.seq_len)
    if isinstance(module, (AvgPool1d, MaxPool1d)):
        return module.flops(spec.seq_len, spec.channels)
    if isinstance(module, LSTMCell):
        return 0  # counted by the owning LSTM
    if isinstance(module, LSTM):
        return module.flops(spec.seq_len)
    if isinstance(module, MultiHeadSelfAttention):
        return module.flops(spec.seq_len)
    if isinstance(module, (TransformerEncoderLayer, TransformerEncoder)):
        return 0  # children (attention + Linear) are approximated during recursion
    return 0


_UNITS = [(1e9, "G"), (1e6, "M"), (1e3, "K")]


def format_flops(flops: float) -> str:
    """Human readable FLOPs string, e.g. ``4.78M`` as printed in Table V."""
    for scale, suffix in _UNITS:
        if flops >= scale:
            return f"{flops / scale:.2f}{suffix}"
    return f"{flops:.0f}"
