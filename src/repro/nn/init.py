"""Weight initialisation helpers.

All initialisers take an explicit ``numpy.random.Generator`` so every model in
the reproduction is fully deterministic given a seed (important for the
benchmark tables).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "normal", "zeros", "ones", "uniform"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Gaussian initialisation (BERT-style)."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform initialisation in ``[low, high]``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
