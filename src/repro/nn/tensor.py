"""A small reverse-mode automatic differentiation engine on top of numpy.

The whole ALT reproduction (profile/behaviour encoders, LSTMs, transformers,
the GDAS supernet, distillation, meta-learning) is built on the :class:`Tensor`
defined here.  The design follows the familiar define-by-run style: every
operation records a backward closure and the parents it depends on; calling
:meth:`Tensor.backward` runs a topological sort and accumulates gradients into
``tensor.grad`` (a plain ``numpy.ndarray``).

Broadcasting is fully supported: gradients flowing into a broadcast operand are
summed back to the operand's original shape.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

__all__ = ["Tensor", "concatenate", "stack", "no_grad", "is_grad_enabled"]


_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return _GRAD_ENABLED


def _sum_to_shape(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` (undoing numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy-backed tensor that records operations for reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _children: Sequence["Tensor"] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = tuple(_children) if is_grad_enabled() else ()
        self._op = _op

    # ------------------------------------------------------------------ #
    # Basic introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph management
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _sum_to_shape(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to ones (so scalars can call ``loss.backward()``).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for child in node._prev:
                build(child)
            topo.append(node)

        build(self)
        self._accumulate(grad)
        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _needs_graph(*tensors: "Tensor") -> bool:
        return is_grad_enabled() and any(t.requires_grad for t in tensors)

    def _make(self, data: np.ndarray, children: Sequence["Tensor"], op: str) -> "Tensor":
        requires = self._needs_graph(*children)
        out = Tensor(data, requires_grad=requires, _children=children if requires else (), _op=op)
        return out

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make(self.data + other_t.data, (self, other_t), "add")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad)
            if other_t.requires_grad:
                other_t._accumulate(out.grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,), "neg")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make(self.data - other_t.data, (self, other_t), "sub")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad)
            if other_t.requires_grad:
                other_t._accumulate(-out.grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make(self.data * other_t.data, (self, other_t), "mul")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(out.grad * self.data)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make(self.data / other_t.data, (self, other_t), "div")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-out.grad * self.data / (other_t.data ** 2))

        if out.requires_grad:
            out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)).__truediv__(self)

    def __pow__(self, power: float) -> "Tensor":
        if not isinstance(power, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out = self._make(self.data ** power, (self,), "pow")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * power * self.data ** (power - 1))

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Matrix multiplication
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make(self.data @ other_t.data, (self, other_t), "matmul")

        def _backward() -> None:
            grad = out.grad
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.expand_dims(grad, -1) * other_t.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad))
                else:
                    other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = self._make(value, (self,), "exp")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value)

        if out.requires_grad:
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,), "log")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        if out.requires_grad:
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make(value, (self,), "tanh")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - value ** 2))

        if out.requires_grad:
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(value, (self,), "sigmoid")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value * (1.0 - value))

        if out.requires_grad:
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make(self.data * mask, (self,), "relu")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        if out.requires_grad:
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = self._make(np.abs(self.data), (self,), "abs")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * sign)

        if out.requires_grad:
            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        clipped = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)
        out = self._make(clipped, (self,), "clip")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        out = self._make(value, (self,), "sum")

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is None:
                self._accumulate(np.ones_like(self.data) * grad)
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        if out.requires_grad:
            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(value, (self,), "max")

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is None:
                mask = (self.data == value)
                self._accumulate(mask * grad / mask.sum())
                return
            expanded = value if keepdims else np.expand_dims(value, axis=axis)
            mask = (self.data == expanded)
            counts = mask.sum(axis=axis, keepdims=True)
            grad_e = grad if keepdims else np.expand_dims(grad, axis=axis)
            self._accumulate(mask * grad_e / counts)

        if out.requires_grad:
            out._backward = _backward
        return out

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        return (diff * diff).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = self._make(self.data.reshape(shape), (self,), "reshape")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(original))

        if out.requires_grad:
            out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)
        out = self._make(self.data.transpose(axes), (self,), "transpose")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        if out.requires_grad:
            out._backward = _backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,), "getitem")

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows by integer index (embedding-style lookup with scatter-add backward)."""
        indices = np.asarray(indices, dtype=np.int64)
        out = self._make(self.data[indices], (self,), "take_rows")

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, indices.reshape(-1), out.grad.reshape(-1, self.data.shape[-1]))
                self._accumulate(grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    def pad1d(self, left: int, right: int, axis: int = 1) -> "Tensor":
        """Zero-pad along ``axis`` (used by SAME-padded temporal convolutions)."""
        pad_width = [(0, 0)] * self.data.ndim
        pad_width[axis] = (left, right)
        out = self._make(np.pad(self.data, pad_width), (self,), "pad1d")
        slicer = [slice(None)] * self.data.ndim
        slicer[axis] = slice(left, left + self.data.shape[axis])
        slicer = tuple(slicer)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad[slicer])

        if out.requires_grad:
            out._backward = _backward
        return out

    def unfold(self, size: int, step: int = 1, axis: int = 1) -> "Tensor":
        """Extract sliding windows of ``size`` along ``axis``.

        For an input of shape ``(..., L, ...)`` the output has shape
        ``(..., L', size, ...)`` where ``L' = (L - size) // step + 1`` and the
        window dimension is inserted right after ``axis``.
        """
        length = self.data.shape[axis]
        n_windows = (length - size) // step + 1
        idx = np.arange(size)[None, :] + step * np.arange(n_windows)[:, None]
        gathered = np.take(self.data, idx.reshape(-1), axis=axis)
        new_shape = list(self.data.shape)
        new_shape[axis: axis + 1] = [n_windows, size]
        out = self._make(gathered.reshape(new_shape), (self,), "unfold")

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = np.zeros_like(self.data)
            flat = out.grad.reshape(
                self.data.shape[:axis] + (n_windows * size,) + self.data.shape[axis + 1:]
            )
            # Scatter-add each window position back into the source.
            moved_grad = np.moveaxis(grad, axis, 0)
            moved_flat = np.moveaxis(flat, axis, 0)
            np.add.at(moved_grad, idx.reshape(-1), moved_flat)
            self._accumulate(np.moveaxis(moved_grad, 0, axis))

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Composite convenience ops
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor where positions with ``mask`` True are set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        keep = Tensor((~mask).astype(np.float64))
        fill = Tensor(mask.astype(np.float64) * value)
        return self * keep + fill


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each input."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _children=tuple(tensors) if requires else (), _op="concat")

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if not tensor.requires_grad:
                continue
            slicer = [slice(None)] * data.ndim
            slicer[axis] = slice(start, end)
            tensor._accumulate(out.grad[tuple(slicer)])

    if out.requires_grad:
        out._backward = _backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _children=tuple(tensors) if requires else (), _op="stack")

    def _backward() -> None:
        for i, tensor in enumerate(tensors):
            if not tensor.requires_grad:
                continue
            slicer = [slice(None)] * data.ndim
            slicer[axis] = i
            tensor._accumulate(out.grad[tuple(slicer)])

    if out.requires_grad:
        out._backward = _backward
    return out
