"""Multi-head self-attention and BERT-style transformer encoder layers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers.basic import Dropout, GELU, LayerNorm, Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "TransformerEncoderLayer", "TransformerEncoder"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product multi-head self-attention over (B, T, D) inputs.

    ``mask`` (if given) is a boolean/0-1 array of shape (B, T) where 1 marks a
    valid position; padded positions receive ~-inf attention scores.
    """

    def __init__(self, dim: int, num_heads: int = 1, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq_len: int) -> Tensor:
        return x.reshape(batch, seq_len, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        batch, seq_len, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq_len)
        k = self._split_heads(self.key(x), batch, seq_len)
        v = self._split_heads(self.value(x), batch, seq_len)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            invalid = ~mask  # (B, T), True where padded
            invalid = invalid[:, None, None, :]  # broadcast over heads and query positions
            invalid = np.broadcast_to(invalid, scores.shape)
            scores = scores.masked_fill(invalid, -1e9)
        attn = scores.softmax(axis=-1)
        attn = self.dropout(attn)
        context = attn @ v  # (B, H, T, head_dim)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.dim)
        return self.out(context)

    def flops(self, seq_len: int) -> int:
        """FLOPs for one sequence of length ``seq_len``."""
        projections = 4 * 2 * seq_len * self.dim * self.dim
        attention = 2 * 2 * self.num_heads * seq_len * seq_len * self.head_dim
        softmax = 3 * self.num_heads * seq_len * seq_len
        return projections + attention + softmax


class TransformerEncoderLayer(Module):
    """Post-norm transformer encoder block (self-attention + position-wise FFN)."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.ff_dim = ff_dim
        self.attention = MultiHeadSelfAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.ff1 = Linear(dim, ff_dim, rng=rng)
        self.ff_act = GELU()
        self.ff2 = Linear(ff_dim, dim, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(x, mask=mask)
        x = self.norm1(x + self.dropout(attended))
        ff = self.ff2(self.ff_act(self.ff1(x)))
        return self.norm2(x + self.dropout(ff))

    def flops(self, seq_len: int) -> int:
        attention = self.attention.flops(seq_len)
        ffn = 2 * 2 * seq_len * self.dim * self.ff_dim
        norms = 2 * 5 * seq_len * self.dim
        return attention + ffn + norms


class TransformerEncoder(Module):
    """A stack of transformer encoder layers (the 'BERT-based' behaviour encoder)."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int, num_layers: int,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: List[TransformerEncoderLayer] = [
            TransformerEncoderLayer(dim, num_heads, ff_dim, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        ]
        self.layers = ModuleList(layers)
        self.num_layers = num_layers

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x

    def flops(self, seq_len: int) -> int:
        return sum(layer.flops(seq_len) for layer in self.layers)
