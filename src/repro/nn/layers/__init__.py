"""Neural-network layers for the ALT reproduction."""

from repro.nn.layers.attention import MultiHeadSelfAttention, TransformerEncoder, TransformerEncoderLayer
from repro.nn.layers.basic import (
    GELU,
    MLP,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    PositionalEmbedding,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.layers.conv import AvgPool1d, Conv1d, MaxPool1d
from repro.nn.layers.pooling import AttentiveLayerSum, AttentiveTimePool, LastStepPool, MaskedMeanPool
from repro.nn.layers.recurrent import LSTM, LSTMCell

__all__ = [
    "Linear",
    "Embedding",
    "PositionalEmbedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MLP",
    "Conv1d",
    "AvgPool1d",
    "MaxPool1d",
    "LSTM",
    "LSTMCell",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "MaskedMeanPool",
    "LastStepPool",
    "AttentiveTimePool",
    "AttentiveLayerSum",
]
