"""Pooling modules that reduce sequences or layer stacks to a single vector."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers.basic import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, stack

__all__ = ["MaskedMeanPool", "LastStepPool", "AttentiveLayerSum", "AttentiveTimePool"]


class MaskedMeanPool(Module):
    """Average a (B, T, D) sequence over time, ignoring padded positions."""

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        if mask is None:
            return x.mean(axis=1)
        mask = np.asarray(mask, dtype=np.float64)
        weights = Tensor(mask[:, :, None])
        counts = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        return (x * weights).sum(axis=1) / counts


class LastStepPool(Module):
    """Take the representation of the last valid time step."""

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        if mask is None:
            return x[:, -1, :]
        mask = np.asarray(mask, dtype=np.float64)
        last = np.maximum(mask.sum(axis=1).astype(np.int64) - 1, 0)
        batch_idx = np.arange(x.shape[0])
        return x[batch_idx, last, :]


class AttentiveTimePool(Module):
    """Attention pooling over time with a learned query vector."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.score = Linear(dim, 1, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        scores = self.score(x)  # (B, T, 1)
        if mask is not None:
            invalid = ~np.asarray(mask, dtype=bool)
            scores = scores.masked_fill(invalid[:, :, None], -1e9)
        weights = scores.softmax(axis=1)
        return (x * weights).sum(axis=1)

    def flops(self, seq_len: int) -> int:
        return self.score.flops(seq_len) + 4 * seq_len


class AttentiveLayerSum(Module):
    """Sum the outputs of all searched layers attentively (Fig. 6, final output).

    Each layer output of shape (B, T, D) gets a learned scalar weight; the
    weighted layer outputs are summed and then mean-pooled over time.
    """

    def __init__(self, dim: int, num_layers: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_layers = num_layers
        self.score = Linear(dim, 1, rng=rng)

    def forward(self, layer_outputs: List[Tensor], mask: Optional[np.ndarray] = None) -> Tensor:
        if not layer_outputs:
            raise ValueError("AttentiveLayerSum requires at least one layer output")
        # (L, B, T, D) -> layer summaries (L, B, D) -> scores (L, B, 1)
        stacked = stack(layer_outputs, axis=0)
        summaries = stacked.mean(axis=2)
        scores = self.score(summaries)  # (L, B, 1)
        weights = scores.softmax(axis=0)
        weighted = stacked * weights.reshape(len(layer_outputs), -1, 1, 1)
        combined = weighted.sum(axis=0)  # (B, T, D)
        if mask is None:
            return combined.mean(axis=1)
        mask_arr = np.asarray(mask, dtype=np.float64)
        counts = Tensor(np.maximum(mask_arr.sum(axis=1, keepdims=True), 1.0))
        return (combined * Tensor(mask_arr[:, :, None])).sum(axis=1) / counts

    def flops(self, seq_len: int, dim: int) -> int:
        per_layer = seq_len * dim + self.score.flops(1)
        return self.num_layers * per_layer + self.num_layers * seq_len * dim
