"""Temporal (1-D) convolution and pooling layers.

All layers operate on sequences laid out as ``(batch, time, channels)`` —
the layout used by the behaviour encoders and the NAS search space (Sec.
III-D of the paper).  Convolutions use SAME padding with stride 1 so the
output length always matches the input length, exactly as the paper requires
for stacking searched layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init as initializers
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Conv1d", "AvgPool1d", "MaxPool1d"]


def _same_padding(kernel_size: int, dilation: int) -> tuple[int, int]:
    """Left/right zero padding that keeps the sequence length unchanged."""
    span = dilation * (kernel_size - 1)
    left = span // 2
    right = span - left
    return left, right


class Conv1d(Module):
    """SAME-padded 1-D convolution (standard or dilated) over (B, T, C) inputs.

    With ``kernel_size=1`` this is equivalent to a position-wise linear layer,
    matching the note in the paper's search-space description.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 dilation: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        if dilation < 1:
            raise ValueError("dilation must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.use_bias = bias
        # Weight layout: (kernel_size * in_channels, out_channels) so the
        # convolution reduces to an unfold + matmul.
        self.weight = Parameter(
            initializers.kaiming_uniform((kernel_size * in_channels, out_channels), rng)
        )
        if bias:
            self.bias = Parameter(np.zeros(out_channels))

    def forward(self, x: Tensor) -> Tensor:
        batch, seq_len, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        if self.kernel_size == 1:
            out = x @ self.weight
            if self.use_bias:
                out = out + self.bias
            return out
        left, right = _same_padding(self.kernel_size, self.dilation)
        padded = x.pad1d(left, right, axis=1)
        if self.dilation == 1:
            windows = padded.unfold(self.kernel_size, step=1, axis=1)
        else:
            # Build dilated windows by unfolding with the dilated span and
            # selecting every ``dilation``-th element inside each window.
            span = self.dilation * (self.kernel_size - 1) + 1
            windows = padded.unfold(span, step=1, axis=1)
            windows = windows[:, :, :: self.dilation, :]
        # windows: (B, T, K, C) -> (B, T, K*C)
        flat = windows.reshape(batch, seq_len, self.kernel_size * self.in_channels)
        out = flat @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def flops(self, seq_len: int) -> int:
        """FLOPs for one sequence of length ``seq_len`` (multiply-adds counted as 2)."""
        per_step = 2 * self.kernel_size * self.in_channels * self.out_channels
        if self.use_bias:
            per_step += self.out_channels
        return per_step * seq_len

    def __repr__(self) -> str:
        kind = "dil_conv" if self.dilation > 1 else "std_conv"
        return f"Conv1d[{kind}](C_in={self.in_channels}, C_out={self.out_channels}, k={self.kernel_size}, d={self.dilation})"


class AvgPool1d(Module):
    """SAME-padded average pooling with stride 1 over (B, T, C) inputs."""

    def __init__(self, kernel_size: int = 3) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        left, right = _same_padding(self.kernel_size, 1)
        padded = x.pad1d(left, right, axis=1)
        windows = padded.unfold(self.kernel_size, step=1, axis=1)
        return windows.mean(axis=2)

    def flops(self, seq_len: int, channels: int) -> int:
        return self.kernel_size * channels * seq_len

    def __repr__(self) -> str:
        return f"AvgPool1d(k={self.kernel_size})"


class MaxPool1d(Module):
    """SAME-padded max pooling with stride 1 over (B, T, C) inputs."""

    def __init__(self, kernel_size: int = 3) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        left, right = _same_padding(self.kernel_size, 1)
        padded = x.pad1d(left, right, axis=1)
        windows = padded.unfold(self.kernel_size, step=1, axis=1)
        return windows.max(axis=2)

    def flops(self, seq_len: int, channels: int) -> int:
        return self.kernel_size * channels * seq_len

    def __repr__(self) -> str:
        return f"MaxPool1d(k={self.kernel_size})"
