"""LSTM layers for the behaviour encoding module (Fig. 2, Sec. V-A3)."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import init as initializers
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor, concatenate, stack

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM cell computing one time step."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates are packed as [input, forget, cell, output] along the output dim.
        self.weight_ih = Parameter(initializers.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.weight_hh = Parameter(initializers.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size: 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hidden = self.hidden_size
        i_gate = gates[:, 0 * hidden:1 * hidden].sigmoid()
        f_gate = gates[:, 1 * hidden:2 * hidden].sigmoid()
        g_gate = gates[:, 2 * hidden:3 * hidden].tanh()
        o_gate = gates[:, 3 * hidden:4 * hidden].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def flops(self) -> int:
        """FLOPs for one time step and one sequence."""
        matmuls = 2 * (self.input_size + self.hidden_size) * 4 * self.hidden_size
        elementwise = 10 * self.hidden_size
        return matmuls + elementwise


class LSTM(Module):
    """Multi-layer unidirectional LSTM over (B, T, C) inputs.

    Returns the full output sequence (B, T, H) from the top layer together
    with the final (h, c) of each layer.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells: List[LSTMCell] = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, rng=rng))
        self.cells = ModuleList(cells)

    def forward(self, x: Tensor) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        batch, seq_len, _ = x.shape
        layer_input: List[Tensor] = [x[:, t, :] for t in range(seq_len)]
        final_states: List[Tuple[Tensor, Tensor]] = []
        for cell in self.cells:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
            outputs: List[Tensor] = []
            for t in range(seq_len):
                h, c = cell(layer_input[t], (h, c))
                outputs.append(h)
            layer_input = outputs
            final_states.append((h, c))
        sequence = stack(layer_input, axis=1)
        return sequence, final_states

    def flops(self, seq_len: int) -> int:
        """FLOPs for one sequence of length ``seq_len``."""
        return sum(cell.flops() for cell in self.cells) * seq_len
