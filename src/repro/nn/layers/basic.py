"""Dense, embedding, normalisation and activation layers."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import init as initializers
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.tensor import Tensor

__all__ = [
    "Linear",
    "Embedding",
    "PositionalEmbedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MLP",
]


def _default_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


class Linear(Module):
    """Affine transform ``y = x W + b`` over the last dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializers.xavier_uniform((in_features, out_features), rng))
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def flops(self, batch_elements: int = 1) -> int:
        """Multiply-add count for ``batch_elements`` rows."""
        per_row = 2 * self.in_features * self.out_features
        if self.use_bias:
            per_row += self.out_features
        return per_row * batch_elements

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.use_bias})"


class Embedding(Module):
    """Token-id to dense-vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(initializers.normal((num_embeddings, embedding_dim), rng))

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.min() < 0 or token_ids.max() >= self.num_embeddings:
            raise ValueError(
                f"token ids must lie in [0, {self.num_embeddings}); "
                f"got range [{token_ids.min()}, {token_ids.max()}]"
            )
        return self.weight.take_rows(token_ids)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class PositionalEmbedding(Module):
    """Learned positional embeddings added to a sequence of shape (B, T, D)."""

    def __init__(self, max_len: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.max_len = max_len
        self.weight = Parameter(initializers.normal((max_len, embedding_dim), rng))

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[1]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_len {self.max_len}")
        positions = self.weight.take_rows(np.arange(seq_len))
        return x + positions.reshape(1, seq_len, -1)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / ((variance + self.eps) ** 0.5)
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = _default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p).astype(np.float64) / (1.0 - self.p)
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + (x ** 3) * 0.044715) * 0.7978845608028654
        return x * 0.5 * (inner.tanh() + 1.0)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MLP(Module):
    """Multi-layer perceptron used by the profile encoder and prediction head (Fig. 2)."""

    def __init__(self, dims: Sequence[int], activation: str = "relu", dropout: float = 0.0,
                 final_activation: bool = False, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP requires at least an input and an output dimension")
        rng = _default_rng(rng)
        self.dims: List[int] = list(dims)
        activations = {"relu": ReLU, "gelu": GELU, "tanh": Tanh, "sigmoid": Sigmoid}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}; options: {sorted(activations)}")
        layers: List[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            is_last = i == len(dims) - 2
            if not is_last or final_activation:
                layers.append(activations[activation]())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def flops(self, batch_elements: int = 1) -> int:
        total = 0
        for layer in self.net:
            if isinstance(layer, Linear):
                total += layer.flops(batch_elements)
        return total
