"""Configuration shared by the Sec. V evaluation strategies (SinH / MeH / MeL / Ours)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.data.synthetic import ScenarioCollection
from repro.exceptions import ConfigurationError
from repro.meta.agnostic import MetaUpdateConfig
from repro.meta.distillation import DistillationConfig
from repro.meta.finetune import FineTuneConfig
from repro.models.config import ModelConfig
from repro.nas.search import NASConfig
from repro.training.trainer import TrainingConfig

__all__ = ["StrategyRunConfig", "derive_model_config"]

STRATEGY_NAMES = ("basic", "sinh", "meh", "mel", "ours")


@dataclass(frozen=True)
class StrategyRunConfig:
    """Everything needed to run the compared strategies on one dataset.

    The defaults follow Sec. V-A3: heavy = 6 encoder layers, light = 3 encoder
    layers, Adam with learning rate 0.001.  Benchmark presets shrink the epoch
    counts and sequence lengths so the pure-numpy substrate stays fast.

    Attributes:
        encoder_type: "lstm" or "bert" (the two families of Tables III/IV).
        embed_dim: behaviour channel width (paper: 15/16).
        heavy_layers / light_layers: encoder depths (paper: 6 / 3).
        num_heads / ff_dim: BERT-encoder settings (paper: ff 32).
        n_initial: number of initial scenarios (paper default: 8).
        initial_ids: explicit initial scenario ids (overrides n_initial).
        pretrain: training config for the agnostic model on the pooled pool.
        scenario_train: training config for per-scenario (SinH / light) training.
        fine_tune: Eq. 1 settings for the scenario specific heavy model.
        meta: Eq. 2/3 settings for agnostic feedback.
        nas: budget-limited NAS settings (strategy "ours").
        distillation: Eq. 5 settings (strategies "mel" and "ours").
        seed: master seed for the run.
    """

    encoder_type: str = "lstm"
    embed_dim: int = 16
    heavy_layers: int = 6
    light_layers: int = 3
    num_heads: int = 2
    ff_dim: int = 32
    n_initial: int = 8
    initial_ids: Optional[Tuple[int, ...]] = None
    pretrain: TrainingConfig = field(default_factory=lambda: TrainingConfig(epochs=2, batch_size=128))
    scenario_train: TrainingConfig = field(default_factory=lambda: TrainingConfig(epochs=2, batch_size=128))
    fine_tune: FineTuneConfig = field(default_factory=lambda: FineTuneConfig(inner_lr=0.003, epochs=2))
    meta: MetaUpdateConfig = field(default_factory=lambda: MetaUpdateConfig(outer_lr=0.05))
    nas: NASConfig = field(default_factory=lambda: NASConfig(num_layers=3, epochs=1))
    distillation: DistillationConfig = field(default_factory=DistillationConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.encoder_type not in ("lstm", "bert"):
            raise ConfigurationError("encoder_type must be 'lstm' or 'bert'")
        if self.heavy_layers < self.light_layers:
            raise ConfigurationError("heavy_layers must be >= light_layers")


def derive_model_config(collection: ScenarioCollection, run_config: StrategyRunConfig,
                        num_layers: int, encoder_type: Optional[str] = None) -> ModelConfig:
    """Build a :class:`ModelConfig` matching a dataset's schema and a strategy config."""
    world_config = collection.world.config
    return ModelConfig(
        profile_dim=world_config.profile_dim,
        vocab_size=world_config.vocab_size,
        max_seq_len=world_config.seq_len,
        embed_dim=run_config.embed_dim,
        encoder_type=encoder_type or run_config.encoder_type,
        num_encoder_layers=num_layers,
        num_heads=run_config.num_heads,
        ff_dim=run_config.ff_dim,
        learning_rate=run_config.scenario_train.learning_rate,
        batch_size=run_config.scenario_train.batch_size,
        epochs=run_config.scenario_train.epochs,
    )
