"""Runner for the compared model-construction strategies (Sec. V-A2).

* **Basic** — profile-only model, trained per scenario (Fig. 10 / Table VII).
* **SinH** (Single-Heavy) — pre-defined heavy model trained per scenario.
* **MeH** (Meta-Heavy) — heavy model pre-trained on the initial scenarios,
  fine-tuned per scenario with feedback into the agnostic model.
* **MeL** (Meta-Light) — as MeH, plus a pre-defined light model distilled from
  the fine-tuned heavy model; the light model is evaluated.
* **Ours** — as MeL, but the light architecture is found by the
  budget-limited NAS under the light model's FLOPs budget.

The meta-based strategies share one agnostic pre-training and one fine-tune
per scenario so the comparison is apples-to-apples (and affordable on CPU).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.synthetic import ScenarioCollection, ScenarioData
from repro.exceptions import ConfigurationError
from repro.meta.agnostic import MetaLearner
from repro.meta.distillation import distill
from repro.metrics.efficiency import measure_inference_time
from repro.models.factory import build_basic_model, build_model, build_nas_model
from repro.nas.search import BudgetLimitedNAS
from repro.nn.data import ArrayDataset, train_test_split
from repro.nn.module import Module
from repro.strategies.config import STRATEGY_NAMES, StrategyRunConfig, derive_model_config
from repro.strategies.results import ComparisonResult, StrategyResult
from repro.training.trainer import evaluate_auc, train_supervised
from repro.utils.rng import child_rng, new_rng

__all__ = ["StrategyRunner"]

_META_STRATEGIES = {"meh", "mel", "ours"}


class StrategyRunner:
    """Run any subset of the Sec. V strategies on one scenario collection."""

    def __init__(self, collection: ScenarioCollection, config: Optional[StrategyRunConfig] = None,
                 dataset_name: str = "dataset") -> None:
        self.collection = collection
        self.config = config or StrategyRunConfig()
        self.dataset_name = dataset_name
        self._rng = new_rng(self.config.seed)
        if self.config.initial_ids is not None:
            self.initial_ids = sorted(int(i) for i in self.config.initial_ids)
        else:
            self.initial_ids = collection.select_initial(self.config.n_initial,
                                                         rng=child_rng(self._rng, "initial"))
        self.heavy_config = derive_model_config(collection, self.config, self.config.heavy_layers)
        self.light_config = derive_model_config(collection, self.config, self.config.light_layers)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def scenario_order(self, scenario_ids: Optional[Sequence[int]] = None) -> List[int]:
        """Initial scenarios first, then the subsequently arriving ones by id."""
        ids = list(scenario_ids) if scenario_ids is not None else self.collection.ids()
        initial = [i for i in ids if i in self.initial_ids]
        subsequent = [i for i in ids if i not in self.initial_ids]
        return initial + subsequent

    def run(self, strategies: Iterable[str] = ("sinh", "meh", "mel", "ours"),
            scenario_ids: Optional[Sequence[int]] = None,
            measure_efficiency: bool = False) -> ComparisonResult:
        """Run the requested strategies and collect per-scenario AUC (and efficiency)."""
        requested = [s.lower() for s in strategies]
        unknown = [s for s in requested if s not in STRATEGY_NAMES]
        if unknown:
            raise ConfigurationError(f"unknown strategies {unknown}; valid: {STRATEGY_NAMES}")
        order = self.scenario_order(scenario_ids)
        comparison = ComparisonResult(dataset=self.dataset_name, encoder_type=self.config.encoder_type)

        if "basic" in requested:
            comparison.add(self._run_per_scenario(order, kind="basic",
                                                  measure_efficiency=measure_efficiency))
        if "sinh" in requested:
            comparison.add(self._run_per_scenario(order, kind="sinh",
                                                  measure_efficiency=measure_efficiency))
        meta_requested = [s for s in requested if s in _META_STRATEGIES]
        if meta_requested:
            for result in self._run_meta_family(order, meta_requested, measure_efficiency):
                comparison.add(result)
        return comparison

    # ------------------------------------------------------------------ #
    # Per-scenario strategies (Basic, SinH)
    # ------------------------------------------------------------------ #
    def _run_per_scenario(self, order: Sequence[int], kind: str,
                          measure_efficiency: bool) -> StrategyResult:
        result = StrategyResult(strategy=kind, encoder_type=self.config.encoder_type)
        for scenario_id in order:
            scenario = self.collection.get(scenario_id)
            rng = child_rng(self._rng, f"{kind}-{scenario_id}")
            if kind == "basic":
                model: Module = build_basic_model(self.heavy_config, rng=rng)
            else:
                model = build_model(self.heavy_config, rng=rng)
            train_supervised(model, scenario.train, self.config.scenario_train, rng=rng)
            self._record(result, scenario, model, measure_efficiency)
        return result

    # ------------------------------------------------------------------ #
    # Meta-based strategies (MeH, MeL, Ours) sharing the agnostic model
    # ------------------------------------------------------------------ #
    def _run_meta_family(self, order: Sequence[int], strategies: Sequence[str],
                         measure_efficiency: bool) -> List[StrategyResult]:
        results = {name: StrategyResult(strategy=name, encoder_type=self.config.encoder_type)
                   for name in strategies}
        agnostic = self.pretrain_agnostic()
        learner = MetaLearner(agnostic, fine_tune_config=self.config.fine_tune,
                              meta_config=self.config.meta, rng=child_rng(self._rng, "meta"))
        light_budget = self._light_flops_budget()

        for scenario_id in order:
            scenario = self.collection.get(scenario_id)
            heavy_model, query = learner.adapt(scenario.train)
            learner.feedback([(heavy_model, query)])
            if "meh" in results:
                self._record(results["meh"], scenario, heavy_model, measure_efficiency)
            if "mel" in results:
                light = self._distilled_predefined_light(scenario, heavy_model)
                self._record(results["mel"], scenario, light, measure_efficiency)
            if "ours" in results:
                searched = self._searched_light(scenario, heavy_model, light_budget)
                self._record(results["ours"], scenario, searched, measure_efficiency)
        return list(results.values())

    def pretrain_agnostic(self) -> Module:
        """Train the heavy model on the pooled data of the initial scenarios."""
        pooled = self.collection.pooled_train(self.initial_ids)
        model = build_model(self.heavy_config, rng=child_rng(self._rng, "agnostic"))
        train_supervised(model, pooled, self.config.pretrain, rng=child_rng(self._rng, "pretrain"))
        return model

    def _light_flops_budget(self) -> float:
        reference = build_model(self.light_config, rng=child_rng(self._rng, "light-ref"))
        return float(reference.behavior_encoder.flops(self.light_config.max_seq_len))

    def _distilled_predefined_light(self, scenario: ScenarioData, teacher: Module) -> Module:
        light = build_model(self.light_config, rng=child_rng(self._rng, f"mel-{scenario.scenario_id}"))
        distill(teacher, light, scenario.train, config=self.config.distillation,
                rng=child_rng(self._rng, f"mel-distill-{scenario.scenario_id}"))
        return light

    def _searched_light(self, scenario: ScenarioData, teacher: Module, flops_budget: float) -> Module:
        nas_model_config = self.light_config.with_overrides(encoder_type="nas")
        searcher = BudgetLimitedNAS(nas_model_config, nas_config=self.config.nas,
                                    rng=child_rng(self._rng, f"nas-{scenario.scenario_id}"))
        nas_train, nas_val = train_test_split(scenario.train, test_fraction=0.3,
                                              rng=child_rng(self._rng, f"nas-split-{scenario.scenario_id}"))
        nas_result = searcher.search(nas_train, nas_val, teacher=teacher, flops_budget=flops_budget)
        student = build_nas_model(nas_model_config, nas_result.genotype,
                                  rng=child_rng(self._rng, f"ours-{scenario.scenario_id}"))
        distill(teacher, student, scenario.train, config=self.config.distillation,
                rng=child_rng(self._rng, f"ours-distill-{scenario.scenario_id}"))
        return student

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _record(self, result: StrategyResult, scenario: ScenarioData, model: Module,
                measure_efficiency: bool) -> None:
        scenario_id = scenario.scenario_id
        result.per_scenario_auc[scenario_id] = evaluate_auc(model, scenario.test)
        seq_len = self.heavy_config.max_seq_len
        flops_fn = getattr(model, "flops", None)
        if callable(flops_fn):
            result.per_scenario_flops[scenario_id] = float(flops_fn(seq_len))
        if measure_efficiency and len(scenario.test) > 0:
            batch = scenario.test.batch(np.arange(min(64, len(scenario.test))))
            latency = measure_inference_time(model.predict_proba, batch, repeats=3, warmup=1)
            result.per_scenario_latency_ms[scenario_id] = latency
