"""Result containers for the Sec. V strategy comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["StrategyResult", "ComparisonResult"]


@dataclass
class StrategyResult:
    """Per-scenario and aggregate outcome of one strategy on one dataset.

    Attributes:
        strategy: strategy name ("basic", "sinh", "meh", "mel", "ours").
        encoder_type: "lstm" or "bert".
        per_scenario_auc: test AUC per scenario id.
        per_scenario_flops: per-sample serving FLOPs per scenario id.
        per_scenario_latency_ms: measured per-batch inference latency per scenario id.
    """

    strategy: str
    encoder_type: str
    per_scenario_auc: Dict[int, float] = field(default_factory=dict)
    per_scenario_flops: Dict[int, float] = field(default_factory=dict)
    per_scenario_latency_ms: Dict[int, float] = field(default_factory=dict)

    @property
    def average_auc(self) -> float:
        values = list(self.per_scenario_auc.values())
        return float(np.mean(values)) if values else float("nan")

    @property
    def average_flops(self) -> float:
        values = list(self.per_scenario_flops.values())
        return float(np.mean(values)) if values else float("nan")

    @property
    def average_latency_ms(self) -> float:
        values = list(self.per_scenario_latency_ms.values())
        return float(np.mean(values)) if values else float("nan")

    def auc(self, scenario_id: int) -> float:
        return self.per_scenario_auc[scenario_id]


@dataclass
class ComparisonResult:
    """All strategies' results for one dataset and one encoder family."""

    dataset: str
    encoder_type: str
    results: Dict[str, StrategyResult] = field(default_factory=dict)

    def add(self, result: StrategyResult) -> None:
        self.results[result.strategy] = result

    def strategies(self) -> List[str]:
        return list(self.results.keys())

    def scenario_ids(self) -> List[int]:
        ids = set()
        for result in self.results.values():
            ids.update(result.per_scenario_auc.keys())
        return sorted(ids)

    def best_strategy_per_scenario(self) -> Dict[int, str]:
        """Which strategy wins each scenario (the bold entries of Tables III/IV)."""
        winners: Dict[int, str] = {}
        for scenario_id in self.scenario_ids():
            best_name, best_value = None, -np.inf
            for name, result in self.results.items():
                value = result.per_scenario_auc.get(scenario_id)
                if value is not None and value > best_value:
                    best_name, best_value = name, value
            winners[scenario_id] = best_name
        return winners

    def average_row(self) -> Dict[str, float]:
        return {name: result.average_auc for name, result in self.results.items()}
