"""The Sec. V evaluation strategies: Basic, SinH, MeH, MeL and Ours."""

from repro.strategies.config import STRATEGY_NAMES, StrategyRunConfig, derive_model_config
from repro.strategies.results import ComparisonResult, StrategyResult
from repro.strategies.runner import StrategyRunner

__all__ = [
    "STRATEGY_NAMES",
    "StrategyRunConfig",
    "derive_model_config",
    "StrategyResult",
    "ComparisonResult",
    "StrategyRunner",
]
