"""Scenario specific heavy model construction (Eq. 1, Fig. 5).

When a scenario arrives, the scenario agnostic heavy model is copied and
fine-tuned on the scenario's support set.  The resulting *scenario specific
heavy model* later serves as the distillation teacher for the light model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module, clone_module
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.utils.rng import new_rng

__all__ = ["FineTuneConfig", "fine_tune"]


@dataclass(frozen=True)
class FineTuneConfig:
    """Inner-loop fine-tuning hyper-parameters.

    Attributes:
        inner_lr: the learning rate gamma of Eq. 1.
        epochs: passes over the support set.
        batch_size: mini-batch size.
        optimizer: "sgd" (plain Eq. 1 steps) or "adam".
        grad_clip: max gradient norm (0 disables).
    """

    inner_lr: float = 0.01
    epochs: int = 2
    batch_size: int = 256
    optimizer: str = "adam"
    grad_clip: float = 5.0

    def __post_init__(self) -> None:
        if self.optimizer not in ("sgd", "adam"):
            raise ConfigurationError(f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}")
        if self.inner_lr <= 0:
            raise ConfigurationError("inner_lr must be positive")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")


def fine_tune(agnostic_model: Module, support: ArrayDataset, config: FineTuneConfig,
              rng: Optional[np.random.Generator] = None) -> Module:
    """Copy the agnostic model and fine-tune the copy on the support set (Eq. 1).

    The original model is left untouched; the returned copy is the scenario
    specific heavy model f_u with parameters theta_u.
    """
    if len(support) == 0:
        raise ValueError("support set must not be empty")
    rng = new_rng(rng if rng is not None else 0)
    adapted = clone_module(agnostic_model)
    adapted.train()
    params = adapted.parameters()
    if config.optimizer == "sgd":
        optimizer = SGD(params, lr=config.inner_lr)
    else:
        optimizer = Adam(params, lr=config.inner_lr)
    loader = DataLoader(support, batch_size=config.batch_size, shuffle=True, rng=rng)
    for _ in range(config.epochs):
        for batch in loader:
            optimizer.zero_grad()
            loss = binary_cross_entropy_with_logits(adapted(batch), batch.labels)
            loss.backward()
            if config.grad_clip > 0:
                clip_grad_norm(params, config.grad_clip)
            optimizer.step()
    adapted.eval()
    return adapted
