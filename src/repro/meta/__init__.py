"""Meta-learning components: scenario agnostic/specific heavy models and distillation."""

from repro.meta.agnostic import (
    MetaLearner,
    MetaUpdateConfig,
    outer_update_fomaml,
    outer_update_reptile,
    query_gradients,
)
from repro.meta.distillation import DistillationConfig, distill
from repro.meta.finetune import FineTuneConfig, fine_tune

__all__ = [
    "FineTuneConfig",
    "fine_tune",
    "MetaUpdateConfig",
    "MetaLearner",
    "query_gradients",
    "outer_update_fomaml",
    "outer_update_reptile",
    "DistillationConfig",
    "distill",
]
