"""Knowledge distillation from the scenario specific heavy model (Eq. 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.data import ArrayDataset
from repro.nn.module import Module
from repro.training.trainer import TrainingConfig, TrainingHistory, train_supervised

__all__ = ["DistillationConfig", "distill"]


@dataclass(frozen=True)
class DistillationConfig:
    """Hyper-parameters of the student (light model) distillation run.

    Attributes:
        delta: weight of the soft-label cross entropy in Eq. 5.
        epochs: training epochs for the student.
        learning_rate: Adam learning rate.
        batch_size: mini-batch size.
    """

    delta: float = 1.0
    epochs: int = 3
    learning_rate: float = 0.005
    batch_size: int = 256


def distill(teacher: Module, student: Module, dataset: ArrayDataset,
            config: Optional[DistillationConfig] = None,
            rng: Optional[np.random.Generator] = None) -> TrainingHistory:
    """Train ``student`` on ``dataset`` with hard labels and the teacher's soft labels.

    Returns the student's training history.  The teacher is only queried in
    inference mode and receives no gradient updates.
    """
    config = config or DistillationConfig()
    training = TrainingConfig(
        epochs=config.epochs,
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        distill_delta=config.delta,
    )
    return train_supervised(student, dataset, training, rng=rng, teacher=teacher)
