"""Scenario agnostic heavy model maintenance (Eq. 2-3, Sec. III-B/C).

The scenario agnostic heavy model f0 pools the knowledge of all scenarios.
After a scenario specific heavy model is fine-tuned, its loss on the
scenario's query set is used to update f0.  Exact second-order MAML would
differentiate through the inner fine-tuning; as is standard practice (and
documented in DESIGN.md) we support the first-order approximation (FOMAML)
and Reptile, both of which only require gradients of the adapted models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.meta.finetune import FineTuneConfig, fine_tune
from repro.nn.data import ArrayDataset, support_query_split
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.utils.rng import new_rng

__all__ = ["MetaUpdateConfig", "query_gradients", "outer_update_fomaml",
           "outer_update_reptile", "MetaLearner"]


@dataclass(frozen=True)
class MetaUpdateConfig:
    """Outer-loop (agnostic model) update hyper-parameters.

    Attributes:
        outer_lr: the conservative learning rate eta of Eq. 2/3.
        method: "fomaml" (gradient-based feedback) or "reptile" (parameter interpolation).
        support_fraction: fraction of scenario data used as the support set.
    """

    outer_lr: float = 0.05
    method: str = "fomaml"
    support_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.method not in ("fomaml", "reptile"):
            raise ConfigurationError(f"method must be 'fomaml' or 'reptile', got {self.method!r}")
        if self.outer_lr <= 0:
            raise ConfigurationError("outer_lr must be positive")
        if not 0.0 < self.support_fraction < 1.0:
            raise ConfigurationError("support_fraction must be in (0, 1)")


def query_gradients(adapted_model: Module, query: ArrayDataset) -> Dict[str, np.ndarray]:
    """Gradients of the query-set loss w.r.t. the adapted model's parameters.

    Under the first-order approximation these gradients stand in for
    ``grad_theta0 L(D_q, theta_u)`` in Eq. 2.
    """
    if len(query) == 0:
        raise ValueError("query set must not be empty")
    adapted_model.zero_grad()
    adapted_model.train()
    loss = binary_cross_entropy_with_logits(adapted_model(query.as_batch()), query.labels)
    loss.backward()
    gradients = {
        name: (param.grad.copy() if param.grad is not None else np.zeros_like(param.data))
        for name, param in adapted_model.named_parameters()
    }
    adapted_model.zero_grad()
    adapted_model.eval()
    return gradients


def outer_update_fomaml(agnostic_model: Module,
                        per_scenario_gradients: Sequence[Dict[str, np.ndarray]],
                        outer_lr: float) -> None:
    """Apply the aggregated first-order meta update of Eq. 3 in place."""
    if not per_scenario_gradients:
        return
    parameters = dict(agnostic_model.named_parameters())
    for name, param in parameters.items():
        total = np.zeros_like(param.data)
        for gradients in per_scenario_gradients:
            if name in gradients:
                total += gradients[name]
        param.data = param.data - outer_lr * total


def outer_update_reptile(agnostic_model: Module, adapted_models: Sequence[Module],
                         outer_lr: float) -> None:
    """Reptile update: move theta0 toward the average of the adapted parameters."""
    if not adapted_models:
        return
    parameters = dict(agnostic_model.named_parameters())
    adapted_states = [dict(m.named_parameters()) for m in adapted_models]
    for name, param in parameters.items():
        displacement = np.zeros_like(param.data)
        for state in adapted_states:
            displacement += state[name].data - param.data
        displacement /= len(adapted_states)
        param.data = param.data + outer_lr * displacement


class MetaLearner:
    """Owns the scenario agnostic heavy model and runs the Fig. 5 loop.

    Typical usage::

        learner = MetaLearner(agnostic_model)
        specific, query = learner.adapt(scenario_data)       # Eq. 1
        learner.feedback([(specific, query)])                # Eq. 2/3
    """

    def __init__(self, agnostic_model: Module,
                 fine_tune_config: Optional[FineTuneConfig] = None,
                 meta_config: Optional[MetaUpdateConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.agnostic_model = agnostic_model
        self.fine_tune_config = fine_tune_config or FineTuneConfig()
        self.meta_config = meta_config or MetaUpdateConfig()
        self._rng = new_rng(rng if rng is not None else 0)
        self.num_adaptations = 0
        self.num_feedback_updates = 0

    # ------------------------------------------------------------------ #
    # Inner loop
    # ------------------------------------------------------------------ #
    def split(self, scenario_data: ArrayDataset) -> Tuple[ArrayDataset, ArrayDataset]:
        """Randomly split a scenario's samples into support and query sets."""
        return support_query_split(scenario_data,
                                   support_fraction=self.meta_config.support_fraction,
                                   rng=self._rng)

    def adapt(self, scenario_data: ArrayDataset) -> Tuple[Module, ArrayDataset]:
        """Produce the scenario specific heavy model and the held-out query set."""
        support, query = self.split(scenario_data)
        adapted = fine_tune(self.agnostic_model, support, self.fine_tune_config, rng=self._rng)
        self.num_adaptations += 1
        return adapted, query

    # ------------------------------------------------------------------ #
    # Outer loop
    # ------------------------------------------------------------------ #
    def feedback(self, adapted_and_queries: Sequence[Tuple[Module, ArrayDataset]]) -> None:
        """Update the agnostic model from one or many simultaneously handled scenarios (Eq. 3)."""
        if not adapted_and_queries:
            return
        if self.meta_config.method == "reptile":
            outer_update_reptile(self.agnostic_model,
                                 [model for model, _ in adapted_and_queries],
                                 self.meta_config.outer_lr)
        else:
            gradients = [query_gradients(model, query) for model, query in adapted_and_queries]
            outer_update_fomaml(self.agnostic_model, gradients, self.meta_config.outer_lr)
        self.num_feedback_updates += 1
