"""repro — reproduction of "ALT: An Automatic System for Long Tail Scenario Modeling".

The package is organised bottom-up:

* :mod:`repro.nn` — numpy autograd + layers/optimisers (the DL substrate),
* :mod:`repro.models` — the Fig. 2 model family (profile/behaviour encoders),
* :mod:`repro.meta` — scenario agnostic/specific heavy models (Eq. 1-3) and distillation,
* :mod:`repro.automl` — AntTune-style hyper-parameter optimisation,
* :mod:`repro.nas` — the budget-limited neural architecture search (Sec. III-D),
* :mod:`repro.system` — feature factory, data preparation, serving, orchestrator (Fig. 7),
* :mod:`repro.data` — synthetic replicas of datasets A/B and the online task,
* :mod:`repro.strategies` — the SinH / MeH / MeL / Ours evaluation pipelines (Sec. V).
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
