"""Scenario Specific Module (Sec. IV-D).

For every arriving scenario this module:

1. copies the scenario agnostic heavy model and fine-tunes it on the
   scenario's support set (the *scenario specific heavy model*, Eq. 1),
2. sends the query-set feedback back to the agnostic model (Eq. 2/3),
3. runs the budget-limited NAS with the heavy model as distillation teacher
   and trains the resulting *scenario specific light model* (Eq. 4/5).

Multiple scenarios can be processed in one call; their feedback is aggregated
into a single conservative update of the agnostic model, mirroring the
asynchronous multi-scenario support described in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.meta.agnostic import MetaLearner
from repro.meta.distillation import DistillationConfig, distill
from repro.models.config import ModelConfig, light_config
from repro.models.factory import build_model, build_nas_model
from repro.nas.genotype import Genotype
from repro.nas.search import BudgetLimitedNAS, NASConfig
from repro.nn.data import ArrayDataset, train_test_split
from repro.nn.module import Module
from repro.training.trainer import evaluate_auc
from repro.utils.rng import child_rng, new_rng

__all__ = ["SpecificBuildConfig", "ScenarioArtifacts", "ScenarioSpecificModule"]


@dataclass(frozen=True)
class SpecificBuildConfig:
    """Configuration of the per-scenario pipeline.

    Attributes:
        nas: budget-limited NAS settings.
        distillation: student training settings (Eq. 5).
        flops_budget: hard FLOPs cap for the searched behaviour encoder; when
            None it defaults to the FLOPs of the pre-defined light behaviour
            encoder (paper: "the upper bound ... is set to be the same as the
            light models").
        nas_validation_fraction: fraction of the scenario train data used as the
            NAS validation split.
    """

    nas: NASConfig = field(default_factory=NASConfig)
    distillation: DistillationConfig = field(default_factory=DistillationConfig)
    flops_budget: Optional[float] = None
    nas_validation_fraction: float = 0.3


@dataclass
class ScenarioArtifacts:
    """Everything the pipeline produced for one scenario."""

    scenario_id: int
    heavy_model: Module
    light_model: Module
    genotype: Genotype
    heavy_flops: int
    light_flops: int
    flops_budget: float
    heavy_auc: Optional[float] = None
    light_auc: Optional[float] = None
    pipeline_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)


class ScenarioSpecificModule:
    """Runs the Eq. 1-5 pipeline for arriving scenarios."""

    def __init__(self, meta_learner: MetaLearner, model_config: ModelConfig,
                 build_config: Optional[SpecificBuildConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.meta_learner = meta_learner
        self.model_config = model_config
        self.build_config = build_config or SpecificBuildConfig()
        self._rng = new_rng(rng if rng is not None else 0)

    # ------------------------------------------------------------------ #
    # Budget helper
    # ------------------------------------------------------------------ #
    def default_flops_budget(self) -> float:
        """FLOPs of the pre-defined light behaviour encoder (the paper's budget)."""
        if self.build_config.flops_budget is not None:
            return float(self.build_config.flops_budget)
        # The paper sets the budget to the pre-defined light model: half the heavy
        # encoder depth (6 -> 3 layers), never less than one layer.
        light_layers = max(1, self.model_config.num_encoder_layers // 2)
        light = light_config(
            profile_dim=self.model_config.profile_dim,
            vocab_size=self.model_config.vocab_size,
            max_seq_len=self.model_config.max_seq_len,
            encoder_type="lstm" if self.model_config.encoder_type == "nas" else self.model_config.encoder_type,
            embed_dim=self.model_config.embed_dim,
            num_encoder_layers=light_layers,
        )
        reference = build_model(light, rng=child_rng(self._rng, "budget"))
        return float(reference.behavior_encoder.flops(self.model_config.max_seq_len))

    # ------------------------------------------------------------------ #
    # Single scenario
    # ------------------------------------------------------------------ #
    def build(self, scenario_id: int, scenario_train: ArrayDataset,
              scenario_test: Optional[ArrayDataset] = None,
              send_feedback: bool = True) -> ScenarioArtifacts:
        """Run the full heavy -> light pipeline for one scenario."""
        start = time.perf_counter()
        stages: Dict[str, float] = {}

        stage_start = time.perf_counter()
        heavy_model, query = self.meta_learner.adapt(scenario_train)
        stages["fine_tune_heavy"] = time.perf_counter() - stage_start

        if send_feedback:
            stage_start = time.perf_counter()
            self.meta_learner.feedback([(heavy_model, query)])
            stages["agnostic_feedback"] = time.perf_counter() - stage_start

        artifacts = self._build_light(scenario_id, heavy_model, scenario_train, scenario_test, stages)
        artifacts.pipeline_seconds = time.perf_counter() - start
        return artifacts

    # ------------------------------------------------------------------ #
    # Multiple simultaneous scenarios (aggregated feedback, Eq. 3)
    # ------------------------------------------------------------------ #
    def build_many(self, scenarios: Sequence[Tuple[int, ArrayDataset, Optional[ArrayDataset]]]
                   ) -> List[ScenarioArtifacts]:
        """Process several scenarios 'in parallel': one aggregated agnostic update."""
        adapted: List[Tuple[Module, ArrayDataset]] = []
        heavy_models: Dict[int, Module] = {}
        for scenario_id, train, _ in scenarios:
            heavy, query = self.meta_learner.adapt(train)
            adapted.append((heavy, query))
            heavy_models[scenario_id] = heavy
        self.meta_learner.feedback(adapted)
        results = []
        for scenario_id, train, test in scenarios:
            stages: Dict[str, float] = {}
            start = time.perf_counter()
            artifacts = self._build_light(scenario_id, heavy_models[scenario_id], train, test, stages)
            artifacts.pipeline_seconds = time.perf_counter() - start
            results.append(artifacts)
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_light(self, scenario_id: int, heavy_model: Module, scenario_train: ArrayDataset,
                     scenario_test: Optional[ArrayDataset], stages: Dict[str, float]) -> ScenarioArtifacts:
        cfg = self.build_config
        budget = self.default_flops_budget()

        stage_start = time.perf_counter()
        nas_train, nas_val = train_test_split(scenario_train,
                                              test_fraction=cfg.nas_validation_fraction,
                                              rng=child_rng(self._rng, f"nas-split-{scenario_id}"))
        searcher = BudgetLimitedNAS(self.model_config.with_overrides(encoder_type="nas"),
                                    nas_config=cfg.nas,
                                    rng=child_rng(self._rng, f"nas-{scenario_id}"))
        nas_result = searcher.search(nas_train, nas_val, teacher=heavy_model, flops_budget=budget)
        stages["budget_nas"] = time.perf_counter() - stage_start

        stage_start = time.perf_counter()
        light_model = build_nas_model(self.model_config.with_overrides(encoder_type="nas"),
                                      nas_result.genotype,
                                      rng=child_rng(self._rng, f"light-{scenario_id}"))
        distill(heavy_model, light_model, scenario_train, config=cfg.distillation,
                rng=child_rng(self._rng, f"distill-{scenario_id}"))
        stages["distillation"] = time.perf_counter() - stage_start

        heavy_auc = light_auc = None
        if scenario_test is not None and len(scenario_test) > 0:
            heavy_auc = evaluate_auc(heavy_model, scenario_test)
            light_auc = evaluate_auc(light_model, scenario_test)

        seq_len = self.model_config.max_seq_len
        return ScenarioArtifacts(
            scenario_id=scenario_id,
            heavy_model=heavy_model,
            light_model=light_model,
            genotype=nas_result.genotype,
            heavy_flops=int(heavy_model.flops(seq_len)),
            light_flops=int(light_model.flops(seq_len)),
            flops_budget=budget,
            heavy_auc=heavy_auc,
            light_auc=light_auc,
            stage_seconds=stages,
        )
