"""Model Serving module (Sec. IV-E).

Scenario specific light models are deployed (optionally persisted to disk) and
served per scenario.  Latency is tracked per scenario so the Table V style
inference-time reporting can be produced from the serving layer itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ModelNotDeployedError
from repro.nn.data import Batch
from repro.nn.module import Module
from repro.utils.serialization import save_state
from repro.utils.timer import Timer

__all__ = ["Deployment", "ModelServer"]


@dataclass
class Deployment:
    """One deployed model version for a scenario."""

    scenario_id: int
    model: Module
    version: int
    flops: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)


class ModelServer:
    """Holds the latest deployed model per scenario and serves predictions."""

    def __init__(self, storage_dir: Optional[str] = None) -> None:
        self._deployments: Dict[int, Deployment] = {}
        self._versions: Dict[int, int] = {}
        self._history: List[Deployment] = []
        self.timer = Timer()
        self.storage_dir = Path(storage_dir) if storage_dir else None

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def deploy(self, scenario_id: int, model: Module, flops: Optional[float] = None,
               metadata: Optional[Dict[str, object]] = None) -> Deployment:
        """Deploy a new model version for a scenario (replacing the previous one)."""
        version = self._versions.get(scenario_id, 0) + 1
        self._versions[scenario_id] = version
        deployment = Deployment(scenario_id=scenario_id, model=model, version=version,
                                flops=flops, metadata=dict(metadata or {}))
        self._deployments[scenario_id] = deployment
        self._history.append(deployment)
        if self.storage_dir is not None:
            path = self.storage_dir / f"scenario_{scenario_id}_v{version}"
            save_state(path, model.state_dict(), metadata={
                "scenario_id": scenario_id,
                "version": version,
                "flops": flops,
                **{k: v for k, v in (metadata or {}).items() if isinstance(v, (str, int, float, bool))},
            })
        return deployment

    def is_deployed(self, scenario_id: int) -> bool:
        return scenario_id in self._deployments

    def deployment(self, scenario_id: int) -> Deployment:
        if scenario_id not in self._deployments:
            raise ModelNotDeployedError(f"no model deployed for scenario {scenario_id}")
        return self._deployments[scenario_id]

    def deployments(self) -> List[Deployment]:
        return [self._deployments[sid] for sid in sorted(self._deployments)]

    def history(self) -> List[Deployment]:
        return list(self._history)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def predict(self, scenario_id: int, batch: Batch) -> np.ndarray:
        """Score a batch with the scenario's deployed model, tracking latency."""
        deployment = self.deployment(scenario_id)
        with self.timer.measure(f"scenario_{scenario_id}"):
            scores = deployment.model.predict_proba(batch)
        return scores

    def mean_latency_ms(self, scenario_id: int) -> float:
        return self.timer.mean_ms(f"scenario_{scenario_id}")

    def latency_report(self) -> Dict[int, float]:
        """Mean serving latency (ms) per scenario that has received traffic."""
        report: Dict[int, float] = {}
        for scenario_id in self._deployments:
            name = f"scenario_{scenario_id}"
            if self.timer.count(name):
                report[scenario_id] = self.timer.mean_ms(name)
        return report
