"""Feature Factory (Sec. IV-B).

The paper stores features in MaxCompute with group-specific refresh
frequencies: stable profile features are refreshed daily/monthly while the
behaviour sequences are refreshed hourly or faster.  This module reproduces
the same behaviour with an in-memory store and a simulated clock: features are
registered with an update frequency, user values are ingested per feature
group, and a scheduler reports/performs the refreshes that are due.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import FeatureNotFoundError

__all__ = ["FeatureGroup", "FeatureSpec", "FeatureFactory"]


class FeatureGroup:
    """Feature groups with their canonical refresh cadence (hours)."""

    PROFILE = "profile"
    BEHAVIOR = "behavior"

    DEFAULT_FREQUENCY = {PROFILE: 24.0, BEHAVIOR: 1.0}


@dataclass(frozen=True)
class FeatureSpec:
    """Metadata of one registered feature.

    Attributes:
        name: unique feature name.
        group: "profile" (stable) or "behavior" (frequently refreshed).
        dimension: vector width for profile features; max sequence length for
            behaviour features.
        update_frequency_hours: how often the feature must be refreshed.
    """

    name: str
    group: str
    dimension: int
    update_frequency_hours: float

    def __post_init__(self) -> None:
        if self.group not in (FeatureGroup.PROFILE, FeatureGroup.BEHAVIOR):
            raise ValueError(f"unknown feature group {self.group!r}")
        if self.dimension < 1:
            raise ValueError("dimension must be >= 1")
        if self.update_frequency_hours <= 0:
            raise ValueError("update_frequency_hours must be positive")


@dataclass
class _FeatureTable:
    spec: FeatureSpec
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    last_update_hour: float = 0.0


class FeatureFactory:
    """In-memory feature store with per-group refresh scheduling."""

    def __init__(self, start_hour: float = 0.0) -> None:
        self._tables: Dict[str, _FeatureTable] = {}
        self._clock_hours = float(start_hour)
        self.refresh_log: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------ #
    # Registration and ingestion
    # ------------------------------------------------------------------ #
    def register(self, name: str, group: str, dimension: int,
                 update_frequency_hours: Optional[float] = None) -> FeatureSpec:
        """Register a feature; the refresh cadence defaults to the group cadence."""
        if update_frequency_hours is None:
            update_frequency_hours = FeatureGroup.DEFAULT_FREQUENCY[group]
        spec = FeatureSpec(name=name, group=group, dimension=dimension,
                           update_frequency_hours=update_frequency_hours)
        self._tables[name] = _FeatureTable(spec=spec, last_update_hour=self._clock_hours)
        return spec

    def ingest(self, name: str, user_values: Dict[str, np.ndarray]) -> None:
        """Store (or overwrite) feature values for a batch of users."""
        table = self._get(name)
        for user_id, value in user_values.items():
            array = np.asarray(value)
            if table.spec.group == FeatureGroup.PROFILE and array.shape != (table.spec.dimension,):
                raise ValueError(
                    f"profile feature {name!r} expects shape ({table.spec.dimension},), got {array.shape}"
                )
            table.values[str(user_id)] = array
        table.last_update_hour = self._clock_hours

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def features(self) -> List[FeatureSpec]:
        return [t.spec for t in self._tables.values()]

    def has_user(self, name: str, user_id: str) -> bool:
        return str(user_id) in self._get(name).values

    def lookup(self, name: str, user_ids: Sequence[str]) -> np.ndarray:
        """Fetch fixed-width feature values for users as a stacked matrix."""
        return np.stack(self.lookup_list(name, user_ids))

    def lookup_list(self, name: str, user_ids: Sequence[str]) -> List[np.ndarray]:
        """Fetch feature values for users as a list (supports ragged behaviour sequences)."""
        table = self._get(name)
        missing = [u for u in user_ids if str(u) not in table.values]
        if missing:
            raise FeatureNotFoundError(
                f"feature {name!r}: no values for users {missing[:5]}{'...' if len(missing) > 5 else ''}"
            )
        return [table.values[str(u)] for u in user_ids]

    # ------------------------------------------------------------------ #
    # Refresh scheduling (simulated clock)
    # ------------------------------------------------------------------ #
    @property
    def clock_hours(self) -> float:
        return self._clock_hours

    def advance_clock(self, hours: float) -> None:
        if hours < 0:
            raise ValueError("cannot move the clock backwards")
        self._clock_hours += hours

    def due_for_refresh(self) -> List[str]:
        """Names of features whose refresh interval has elapsed."""
        due = []
        for name, table in self._tables.items():
            if self._clock_hours - table.last_update_hour >= table.spec.update_frequency_hours:
                due.append(name)
        return due

    def run_scheduled_refresh(self, refreshers: Dict[str, Callable[[], Dict[str, np.ndarray]]]) -> List[str]:
        """Refresh all due features using the provided per-feature refresh callbacks.

        Features that are due but have no refresher simply update their
        timestamp (mirroring a no-op scheduled job).  Returns the refreshed
        feature names.
        """
        refreshed = []
        for name in self.due_for_refresh():
            table = self._get(name)
            refresher = refreshers.get(name)
            if refresher is not None:
                self.ingest(name, refresher())
            table.last_update_hour = self._clock_hours
            self.refresh_log.append((self._clock_hours, name))
            refreshed.append(name)
        return refreshed

    def _get(self, name: str) -> _FeatureTable:
        if name not in self._tables:
            raise FeatureNotFoundError(f"feature {name!r} is not registered")
        return self._tables[name]
