"""Scenario Agnostic Module (Sec. IV-C, Fig. 4).

Initialises and maintains the scenario agnostic heavy model.  Two candidate
pipelines are supported, exactly as in Fig. 4:

1. **Pre-designed architecture + hyper-parameter optimisation** — the Fig. 3
   search space is tuned with the AntTune study (RACOS by default).
2. **Automatic architecture search** — an evolutionary search over the
   sequence search space.

Both candidates are evaluated on a leave-out validation split of the pooled
initial data and the better one becomes the initial agnostic model.  Either
pipeline can also be disabled (the engineers "can choose one of them").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.automl.algorithms.base import SearchAlgorithm
from repro.automl.algorithms.racos import RACOS
from repro.automl.presets import apply_params_to_config, pre_designed_model_space
from repro.automl.study import Study, StudyConfig
from repro.automl.trial import Trial
from repro.exceptions import ConfigurationError
from repro.meta.agnostic import MetaLearner, MetaUpdateConfig
from repro.meta.finetune import FineTuneConfig
from repro.models.config import ModelConfig
from repro.models.factory import build_model, build_nas_model
from repro.nas.evolutionary import EvolutionConfig, EvolutionaryNAS
from repro.nas.search_space import SequenceSearchSpace
from repro.nn.data import ArrayDataset, train_test_split
from repro.nn.module import Module
from repro.training.trainer import TrainingConfig, evaluate_auc, train_supervised
from repro.utils.rng import child_rng, new_rng

__all__ = ["AgnosticInitConfig", "InitializationReport", "ScenarioAgnosticModule"]


@dataclass(frozen=True)
class AgnosticInitConfig:
    """Configuration of the agnostic-model initialisation (Fig. 4).

    Attributes:
        strategy: "predesigned" (train the base config as-is), "hpo" (tune the
            pre-designed architecture), "nas" (evolutionary architecture
            search), or "both" (run hpo and nas, keep the better candidate).
        hpo_trials: number of AntTune trials for the pre-designed pipeline.
        nas_population / nas_generations: evolutionary search budget.
        nas_layers: searched encoder depth for the NAS candidate.
        candidate_epochs: training epochs used when scoring a candidate.
        final_epochs: training epochs for the winning candidate on the full pool.
        validation_fraction: leave-out fraction of the pooled initial data.
        batch_size: training batch size.
    """

    strategy: str = "predesigned"
    hpo_trials: int = 4
    nas_population: int = 4
    nas_generations: int = 1
    nas_layers: int = 3
    candidate_epochs: int = 1
    final_epochs: int = 2
    validation_fraction: float = 0.2
    batch_size: int = 128

    def __post_init__(self) -> None:
        if self.strategy not in ("predesigned", "hpo", "nas", "both"):
            raise ConfigurationError(
                f"strategy must be one of predesigned/hpo/nas/both, got {self.strategy!r}"
            )


@dataclass
class InitializationReport:
    """What happened during initialisation (which candidate won and why)."""

    chosen: str
    candidate_auc: Dict[str, float] = field(default_factory=dict)
    best_hpo_params: Optional[Dict[str, object]] = None
    nas_genotype_json: Optional[str] = None


class ScenarioAgnosticModule:
    """Builds and owns the scenario agnostic heavy model plus its meta-learner."""

    def __init__(self, base_config: ModelConfig,
                 init_config: Optional[AgnosticInitConfig] = None,
                 fine_tune_config: Optional[FineTuneConfig] = None,
                 meta_config: Optional[MetaUpdateConfig] = None,
                 hpo_algorithm: Optional[SearchAlgorithm] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.base_config = base_config
        self.init_config = init_config or AgnosticInitConfig()
        self.fine_tune_config = fine_tune_config or FineTuneConfig()
        self.meta_config = meta_config or MetaUpdateConfig()
        self._rng = new_rng(rng if rng is not None else 0)
        self._hpo_algorithm = hpo_algorithm
        self.model: Optional[Module] = None
        self.meta_learner: Optional[MetaLearner] = None
        self.report: Optional[InitializationReport] = None

    # ------------------------------------------------------------------ #
    # Candidate pipelines
    # ------------------------------------------------------------------ #
    def _train_candidate(self, config: ModelConfig, train: ArrayDataset, val: ArrayDataset,
                         epochs: int, rng: np.random.Generator) -> Tuple[Module, float]:
        model = build_model(config, rng=rng)
        training = TrainingConfig(epochs=epochs, learning_rate=config.learning_rate,
                                  batch_size=self.init_config.batch_size)
        train_supervised(model, train, training, rng=rng)
        return model, evaluate_auc(model, val)

    def _hpo_candidate(self, train: ArrayDataset, val: ArrayDataset,
                       report: InitializationReport) -> Tuple[Module, float]:
        space = pre_designed_model_space(max_encoder_layers=self.base_config.num_encoder_layers)
        algorithm = self._hpo_algorithm or RACOS(rng=child_rng(self._rng, "racos"))
        study = Study(space, algorithm=algorithm,
                      config=StudyConfig(maximize=True, n_trials=self.init_config.hpo_trials),
                      rng=child_rng(self._rng, "hpo"))

        def objective(trial: Trial) -> float:
            config = apply_params_to_config(self.base_config, trial.params)
            _, auc = self._train_candidate(config, train, val, self.init_config.candidate_epochs,
                                           child_rng(self._rng, f"hpo-{trial.trial_id}"))
            return auc

        best = study.optimize(objective)
        report.best_hpo_params = dict(best.params)
        tuned_config = apply_params_to_config(self.base_config, best.params)
        return self._train_candidate(tuned_config, train, val, self.init_config.final_epochs,
                                     child_rng(self._rng, "hpo-final"))

    def _nas_candidate(self, train: ArrayDataset, val: ArrayDataset,
                       report: InitializationReport) -> Tuple[Module, float]:
        space = SequenceSearchSpace(num_layers=self.init_config.nas_layers)
        nas_config = self.base_config.with_overrides(encoder_type="nas")

        def fitness(genotype) -> float:
            model = build_nas_model(nas_config, genotype, rng=child_rng(self._rng, "nas-fit"))
            training = TrainingConfig(epochs=self.init_config.candidate_epochs,
                                      learning_rate=nas_config.learning_rate,
                                      batch_size=self.init_config.batch_size)
            train_supervised(model, train, training, rng=child_rng(self._rng, "nas-train"))
            return evaluate_auc(model, val)

        evolution = EvolutionaryNAS(
            space, fitness,
            config=EvolutionConfig(population_size=self.init_config.nas_population,
                                   generations=self.init_config.nas_generations,
                                   seq_len=self.base_config.max_seq_len,
                                   channels=self.base_config.embed_dim),
            rng=child_rng(self._rng, "nas-evo"),
        )
        result = evolution.search()
        report.nas_genotype_json = result.best_genotype.to_json()
        model = build_nas_model(nas_config, result.best_genotype, rng=child_rng(self._rng, "nas-final"))
        training = TrainingConfig(epochs=self.init_config.final_epochs,
                                  learning_rate=nas_config.learning_rate,
                                  batch_size=self.init_config.batch_size)
        train_supervised(model, train, training, rng=child_rng(self._rng, "nas-final-train"))
        return model, evaluate_auc(model, val)

    # ------------------------------------------------------------------ #
    # Initialisation (Fig. 4)
    # ------------------------------------------------------------------ #
    def initialize(self, pooled_train: ArrayDataset) -> Module:
        """Build the initial agnostic heavy model from the pooled initial scenarios."""
        cfg = self.init_config
        train, val = train_test_split(pooled_train, test_fraction=cfg.validation_fraction,
                                      rng=child_rng(self._rng, "split"))
        report = InitializationReport(chosen="predesigned")
        candidates: Dict[str, Tuple[Module, float]] = {}

        if cfg.strategy == "predesigned":
            candidates["predesigned"] = self._train_candidate(
                self.base_config, train, val, cfg.final_epochs, child_rng(self._rng, "pre"))
        if cfg.strategy in ("hpo", "both"):
            candidates["hpo"] = self._hpo_candidate(train, val, report)
        if cfg.strategy in ("nas", "both"):
            candidates["nas"] = self._nas_candidate(train, val, report)
        if not candidates:
            candidates["predesigned"] = self._train_candidate(
                self.base_config, train, val, cfg.final_epochs, child_rng(self._rng, "pre"))

        report.candidate_auc = {name: auc for name, (_, auc) in candidates.items()}
        chosen_name, (model, _) = max(candidates.items(), key=lambda item: item[1][1])
        report.chosen = chosen_name
        self.report = report
        self.model = model
        self.meta_learner = MetaLearner(model, fine_tune_config=self.fine_tune_config,
                                        meta_config=self.meta_config,
                                        rng=child_rng(self._rng, "meta"))
        return model

    def require_meta_learner(self) -> MetaLearner:
        if self.meta_learner is None:
            raise ConfigurationError("the agnostic module has not been initialised yet")
        return self.meta_learner
