"""The ALT system orchestrator (Fig. 7).

Ties together the registry, the scenario agnostic module, the scenario
specific module and the model server: initialise once from the pooled initial
scenarios, then call :meth:`ALTSystem.add_scenario` whenever a new scenario
arrives — the whole heavy → light → deploy pipeline runs automatically, which
is exactly the "automatic system" promise of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.synthetic import ScenarioCollection, ScenarioData
from repro.exceptions import ConfigurationError
from repro.meta.agnostic import MetaUpdateConfig
from repro.meta.finetune import FineTuneConfig
from repro.models.config import ModelConfig
from repro.nn.data import ArrayDataset, Batch
from repro.system.agnostic_module import AgnosticInitConfig, ScenarioAgnosticModule
from repro.system.scenario import ScenarioRegistry, ScenarioStatus
from repro.system.serving import ModelServer
from repro.system.specific_module import ScenarioArtifacts, ScenarioSpecificModule, SpecificBuildConfig
from repro.utils.rng import child_rng, new_rng

__all__ = ["ALTSystemConfig", "ALTSystem"]


@dataclass(frozen=True)
class ALTSystemConfig:
    """Top-level configuration of one ALT deployment.

    Attributes:
        model: base model configuration (heavy architecture dimensions).
        init: agnostic model initialisation settings (Fig. 4).
        fine_tune: inner-loop settings (Eq. 1).
        meta: outer-loop settings (Eq. 2/3).
        specific: per-scenario light-model pipeline settings (Eq. 4/5).
        storage_dir: optional directory where deployed models are persisted.
    """

    model: ModelConfig
    init: AgnosticInitConfig = field(default_factory=AgnosticInitConfig)
    fine_tune: FineTuneConfig = field(default_factory=FineTuneConfig)
    meta: MetaUpdateConfig = field(default_factory=MetaUpdateConfig)
    specific: SpecificBuildConfig = field(default_factory=SpecificBuildConfig)
    storage_dir: Optional[str] = None


class ALTSystem:
    """End-to-end automatic long-tail scenario modelling system."""

    def __init__(self, config: ALTSystemConfig, rng: Optional[np.random.Generator] = None) -> None:
        self.config = config
        self._rng = new_rng(rng if rng is not None else 0)
        self.registry = ScenarioRegistry()
        self.server = ModelServer(storage_dir=config.storage_dir)
        self.agnostic = ScenarioAgnosticModule(
            base_config=config.model,
            init_config=config.init,
            fine_tune_config=config.fine_tune,
            meta_config=config.meta,
            rng=child_rng(self._rng, "agnostic"),
        )
        self.specific: Optional[ScenarioSpecificModule] = None
        self.artifacts: Dict[int, ScenarioArtifacts] = {}
        self.initial_scenario_ids: List[int] = []

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #
    def initialize(self, collection: ScenarioCollection, initial_ids: Optional[Sequence[int]] = None,
                   n_initial: int = 8) -> List[int]:
        """Initialise the agnostic heavy model from the initial scenarios' pooled data."""
        if initial_ids is None:
            initial_ids = collection.select_initial(n_initial, rng=child_rng(self._rng, "init-select"))
        initial_ids = sorted(int(i) for i in initial_ids)
        for scenario in collection:
            if scenario.scenario_id in initial_ids:
                record = self.registry.register(scenario.scenario_id, scenario.name, is_initial=True)
                record.log("selected as initial scenario")
        pooled = collection.pooled_train(initial_ids)
        self.agnostic.initialize(pooled)
        self.specific = ScenarioSpecificModule(
            meta_learner=self.agnostic.require_meta_learner(),
            model_config=self.config.model,
            build_config=self.config.specific,
            rng=child_rng(self._rng, "specific"),
        )
        self.initial_scenario_ids = list(initial_ids)
        return self.initial_scenario_ids

    def _require_specific(self) -> ScenarioSpecificModule:
        if self.specific is None:
            raise ConfigurationError("ALTSystem.initialize must be called before adding scenarios")
        return self.specific

    # ------------------------------------------------------------------ #
    # Scenario arrival
    # ------------------------------------------------------------------ #
    def add_scenario(self, scenario: ScenarioData, evaluate: bool = True) -> ScenarioArtifacts:
        """Run the automatic pipeline for one (new or initial) scenario and deploy it."""
        specific = self._require_specific()
        record = self.registry.register(scenario.scenario_id, scenario.name,
                                        is_initial=scenario.scenario_id in self.initial_scenario_ids)
        self.registry.set_status(scenario.scenario_id, ScenarioStatus.TRAINING, "pipeline started")
        try:
            artifacts = specific.build(
                scenario.scenario_id,
                scenario.train,
                scenario.test if evaluate else None,
            )
        except Exception:
            self.registry.set_status(scenario.scenario_id, ScenarioStatus.FAILED, "pipeline failed")
            raise
        self.artifacts[scenario.scenario_id] = artifacts
        self.server.deploy(scenario.scenario_id, artifacts.light_model, flops=artifacts.light_flops,
                           metadata={"genotype": artifacts.genotype.to_dict()})
        self.registry.set_status(scenario.scenario_id, ScenarioStatus.SERVING, "light model deployed")
        if artifacts.light_auc is not None:
            self.registry.record_metric(scenario.scenario_id, "light_auc", artifacts.light_auc)
        if artifacts.heavy_auc is not None:
            self.registry.record_metric(scenario.scenario_id, "heavy_auc", artifacts.heavy_auc)
        self.registry.record_metric(scenario.scenario_id, "light_flops", artifacts.light_flops)
        record.log(f"pipeline finished in {artifacts.pipeline_seconds:.2f}s")
        return artifacts

    def add_scenarios(self, scenarios: Sequence[ScenarioData], evaluate: bool = True
                      ) -> List[ScenarioArtifacts]:
        """Handle several simultaneously arriving scenarios (aggregated feedback)."""
        specific = self._require_specific()
        payload = []
        for scenario in scenarios:
            self.registry.register(scenario.scenario_id, scenario.name)
            self.registry.set_status(scenario.scenario_id, ScenarioStatus.TRAINING, "batch pipeline started")
            payload.append((scenario.scenario_id, scenario.train,
                            scenario.test if evaluate else None))
        results = specific.build_many(payload)
        for scenario, artifacts in zip(scenarios, results):
            self.artifacts[scenario.scenario_id] = artifacts
            self.server.deploy(scenario.scenario_id, artifacts.light_model,
                               flops=artifacts.light_flops)
            self.registry.set_status(scenario.scenario_id, ScenarioStatus.SERVING,
                                     "light model deployed")
        return results

    # ------------------------------------------------------------------ #
    # Serving / reporting
    # ------------------------------------------------------------------ #
    def predict(self, scenario_id: int, batch: Batch) -> np.ndarray:
        """Online prediction through the model server."""
        return self.server.predict(scenario_id, batch)

    def summary(self) -> Dict[str, object]:
        """High-level view: scenarios, statuses, and pipeline costs."""
        serving = self.registry.with_status(ScenarioStatus.SERVING)
        pipeline_times = [a.pipeline_seconds for a in self.artifacts.values()]
        return {
            "num_scenarios": len(self.registry),
            "num_serving": len(serving),
            "initial_scenarios": list(self.initial_scenario_ids),
            "mean_pipeline_seconds": float(np.mean(pipeline_times)) if pipeline_times else 0.0,
            "agnostic_initialization": (
                self.agnostic.report.candidate_auc if self.agnostic.report else {}
            ),
        }
