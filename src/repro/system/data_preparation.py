"""Data Preparation module (Sec. IV-B).

The paper's pipeline performs feature joining, feature processing
(normalisation / discretisation), sample shuffling and sample partitioning
before model construction.  Each step is a small reusable component so the
pipeline can be configured per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.data import ArrayDataset, train_test_split
from repro.system.feature_factory import FeatureFactory
from repro.utils.rng import new_rng

__all__ = ["StandardNormalizer", "EqualWidthDiscretizer", "DataPreparation", "PreparedData"]


class StandardNormalizer:
    """Z-score normalisation fit on the training profiles and reused at serving time."""

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = eps
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, profiles: np.ndarray) -> "StandardNormalizer":
        profiles = np.asarray(profiles, dtype=np.float64)
        self.mean_ = profiles.mean(axis=0)
        self.std_ = profiles.std(axis=0)
        return self

    def transform(self, profiles: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("normalizer must be fit before transform")
        return (np.asarray(profiles, dtype=np.float64) - self.mean_) / (self.std_ + self.eps)

    def fit_transform(self, profiles: np.ndarray) -> np.ndarray:
        return self.fit(profiles).transform(profiles)


class EqualWidthDiscretizer:
    """Optional equal-width binning of selected profile columns."""

    def __init__(self, n_bins: int = 8) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.edges_: Dict[int, np.ndarray] = {}

    def fit(self, profiles: np.ndarray, columns: Sequence[int]) -> "EqualWidthDiscretizer":
        profiles = np.asarray(profiles, dtype=np.float64)
        for column in columns:
            low, high = profiles[:, column].min(), profiles[:, column].max()
            if high <= low:
                high = low + 1.0
            self.edges_[column] = np.linspace(low, high, self.n_bins + 1)[1:-1]
        return self

    def transform(self, profiles: np.ndarray) -> np.ndarray:
        result = np.asarray(profiles, dtype=np.float64).copy()
        for column, edges in self.edges_.items():
            result[:, column] = np.digitize(result[:, column], edges).astype(np.float64)
        return result


@dataclass
class PreparedData:
    """Output of the preparation pipeline for one scenario."""

    train: ArrayDataset
    test: ArrayDataset
    normalizer: StandardNormalizer


class DataPreparation:
    """Join, process, shuffle and partition the samples of one scenario."""

    def __init__(self, test_fraction: float = 0.2, discretize_columns: Optional[Sequence[int]] = None,
                 n_bins: int = 8, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        self.test_fraction = test_fraction
        self.discretize_columns = list(discretize_columns) if discretize_columns else []
        self.n_bins = n_bins
        self._rng = new_rng(rng if rng is not None else 0)

    # ------------------------------------------------------------------ #
    # Feature joining
    # ------------------------------------------------------------------ #
    def join(self, factory: FeatureFactory, profile_feature: str, behavior_feature: str,
             user_ids: Sequence[str], labels: Sequence[float],
             max_seq_len: int) -> ArrayDataset:
        """Link users with their features from the factory and attach labels."""
        if len(user_ids) != len(labels):
            raise ValueError("user_ids and labels must align")
        profiles = factory.lookup(profile_feature, user_ids)
        raw_sequences = factory.lookup_list(behavior_feature, user_ids)
        sequences = np.zeros((len(user_ids), max_seq_len), dtype=np.int64)
        mask = np.zeros((len(user_ids), max_seq_len), dtype=np.float64)
        for i, row in enumerate(raw_sequences):
            events = np.asarray(row, dtype=np.int64).reshape(-1)[:max_seq_len]
            sequences[i, :len(events)] = events
            mask[i, :len(events)] = 1.0
        return ArrayDataset(profiles, sequences, mask, np.asarray(labels, dtype=np.float64))

    # ------------------------------------------------------------------ #
    # Processing + partitioning
    # ------------------------------------------------------------------ #
    def prepare(self, dataset: ArrayDataset, shuffle: bool = True) -> PreparedData:
        """Normalise (and optionally discretise) profiles, shuffle and split."""
        profiles = dataset.profiles
        discretizer = None
        if self.discretize_columns:
            discretizer = EqualWidthDiscretizer(self.n_bins).fit(profiles, self.discretize_columns)
            profiles = discretizer.transform(profiles)
        normalizer = StandardNormalizer().fit(profiles)
        profiles = normalizer.transform(profiles)
        processed = ArrayDataset(profiles, dataset.sequences, dataset.mask, dataset.labels)
        if shuffle:
            order = self._rng.permutation(len(processed))
            processed = processed.subset(order)
        train, test = train_test_split(processed, test_fraction=self.test_fraction, rng=self._rng)
        return PreparedData(train=train, test=test, normalizer=normalizer)

    def transform_for_serving(self, prepared: PreparedData, dataset: ArrayDataset) -> ArrayDataset:
        """Apply the stored normalisation to freshly joined serving-time samples."""
        profiles = prepared.normalizer.transform(dataset.profiles)
        return ArrayDataset(profiles, dataset.sequences, dataset.mask, dataset.labels)
