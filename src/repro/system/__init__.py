"""System-level modules of ALT (Fig. 7): feature factory, data preparation,
scenario registry, agnostic/specific modules, model serving and orchestration."""

from repro.system.agnostic_module import AgnosticInitConfig, InitializationReport, ScenarioAgnosticModule
from repro.system.data_preparation import (
    DataPreparation,
    EqualWidthDiscretizer,
    PreparedData,
    StandardNormalizer,
)
from repro.system.feature_factory import FeatureFactory, FeatureGroup, FeatureSpec
from repro.system.orchestrator import ALTSystem, ALTSystemConfig
from repro.system.scenario import ScenarioRecord, ScenarioRegistry, ScenarioStatus
from repro.system.serving import Deployment, ModelServer
from repro.system.specific_module import ScenarioArtifacts, ScenarioSpecificModule, SpecificBuildConfig

__all__ = [
    "FeatureFactory",
    "FeatureGroup",
    "FeatureSpec",
    "DataPreparation",
    "StandardNormalizer",
    "EqualWidthDiscretizer",
    "PreparedData",
    "ScenarioRegistry",
    "ScenarioRecord",
    "ScenarioStatus",
    "ScenarioAgnosticModule",
    "AgnosticInitConfig",
    "InitializationReport",
    "ScenarioSpecificModule",
    "SpecificBuildConfig",
    "ScenarioArtifacts",
    "ModelServer",
    "Deployment",
    "ALTSystem",
    "ALTSystemConfig",
]
