"""Scenario registry: lifecycle tracking of every long tail scenario."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ScenarioNotFoundError

__all__ = ["ScenarioStatus", "ScenarioRecord", "ScenarioRegistry"]


class ScenarioStatus(enum.Enum):
    """Lifecycle of one scenario inside the ALT system."""

    REGISTERED = "registered"
    PREPARING = "preparing"
    TRAINING = "training"
    SERVING = "serving"
    FAILED = "failed"


@dataclass
class ScenarioRecord:
    """Bookkeeping entry for one scenario.

    Attributes:
        scenario_id: unique identifier.
        name: human-readable name (bank / advertiser / surface).
        status: lifecycle state.
        is_initial: whether the scenario was part of the initial pool.
        metrics: arbitrary metrics recorded by the pipeline (AUC, FLOPs, ...).
        events: append-only log of (clock, message) pipeline events.
    """

    scenario_id: int
    name: str
    status: ScenarioStatus = ScenarioStatus.REGISTERED
    is_initial: bool = False
    metrics: Dict[str, float] = field(default_factory=dict)
    events: List[str] = field(default_factory=list)

    def log(self, message: str) -> None:
        self.events.append(message)


class ScenarioRegistry:
    """Registry of every scenario known to the system."""

    def __init__(self) -> None:
        self._records: Dict[int, ScenarioRecord] = {}

    def register(self, scenario_id: int, name: str, is_initial: bool = False) -> ScenarioRecord:
        if scenario_id in self._records:
            return self._records[scenario_id]
        record = ScenarioRecord(scenario_id=scenario_id, name=name, is_initial=is_initial)
        self._records[scenario_id] = record
        return record

    def get(self, scenario_id: int) -> ScenarioRecord:
        if scenario_id not in self._records:
            raise ScenarioNotFoundError(f"scenario {scenario_id} is not registered")
        return self._records[scenario_id]

    def __contains__(self, scenario_id: int) -> bool:
        return scenario_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def ids(self) -> List[int]:
        return sorted(self._records)

    def with_status(self, status: ScenarioStatus) -> List[ScenarioRecord]:
        return [r for r in self._records.values() if r.status == status]

    def set_status(self, scenario_id: int, status: ScenarioStatus, message: Optional[str] = None) -> None:
        record = self.get(scenario_id)
        record.status = status
        if message:
            record.log(message)

    def record_metric(self, scenario_id: int, name: str, value: float) -> None:
        self.get(scenario_id).metrics[name] = float(value)
