"""Evaluation metrics: AUC/logloss for effectiveness, FLOPs/latency for efficiency."""

from repro.metrics.classification import accuracy, auc_score, log_loss
from repro.metrics.efficiency import EfficiencyReport, measure_inference_time

__all__ = [
    "auc_score",
    "accuracy",
    "log_loss",
    "EfficiencyReport",
    "measure_inference_time",
]
